//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build container has no crates.io access, so the workspace
//! vendors a deterministic, dependency-free implementation with the same
//! module paths: [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! [`seq::IteratorRandom`] and [`distributions::Distribution`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! upstream ChaCha12, so seeded streams differ from crates.io `rand`, but
//! every property the workspace relies on (determinism under a seed,
//! uniformity, cheap forking) holds.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::uniform::SampleRange;

/// Minimal core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value in `range` (`Range` or `RangeInclusive`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, U>(&mut self, range: U) -> T
    where
        U: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        distributions::u01(self) < p
    }

    /// Draw one value from a distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding entry point; only the `seed_from_u64` constructor is needed
/// here.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one word.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.1)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn choose_multiple_draws_without_replacement() {
        use super::seq::IteratorRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut picks = (0..10).choose_multiple(&mut rng, 4);
        picks.sort_unstable();
        picks.dedup();
        assert_eq!(picks.len(), 4);
        assert!(picks.iter().all(|p| (0..10).contains(p)));
        // Requesting more than available yields everything.
        let all = (0..3).choose_multiple(&mut rng, 10);
        assert_eq!(all.len(), 3);
    }
}
