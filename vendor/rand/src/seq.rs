//! Sequence sampling helpers.

use crate::{Rng, RngCore};

/// Random sampling from iterators.
pub trait IteratorRandom: Iterator + Sized {
    /// Draw up to `amount` distinct elements by reservoir sampling.
    /// Returns fewer when the iterator is shorter than `amount`; order is
    /// unspecified.
    fn choose_multiple<R: RngCore + ?Sized>(
        mut self,
        rng: &mut R,
        amount: usize,
    ) -> Vec<Self::Item> {
        let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
        for _ in 0..amount {
            match self.next() {
                Some(item) => reservoir.push(item),
                None => return reservoir,
            }
        }
        if amount == 0 {
            return reservoir;
        }
        for (seen, item) in (amount + 1..).zip(self) {
            let j = rng.gen_range(0..seen);
            if j < amount {
                reservoir[j] = item;
            }
        }
        reservoir
    }

    /// Draw one element uniformly, or `None` on an empty iterator.
    fn choose<R: RngCore + ?Sized>(self, rng: &mut R) -> Option<Self::Item> {
        self.choose_multiple(rng, 1).pop()
    }
}

impl<I: Iterator> IteratorRandom for I {}
