//! Distribution trait and uniform-range sampling.

use crate::RngCore;

/// A probability distribution over `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// A uniform draw from `[0, 1)` with 53 bits of precision.
pub fn u01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 2^-53; the top 53 bits of the word are uniform.
    (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Uniform range sampling (`rng.gen_range(lo..hi)`).
pub mod uniform {
    use super::u01;
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range usable with [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draw one uniform value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Unbiased-enough uniform draw from `[0, span)` via the widening
    /// multiply trick (Lemire without the rejection step; bias is
    /// `< span / 2^64`, irrelevant at simulation scales).
    fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + below(rng, span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + below(rng, span + 1) as $t
                }
            }
        )*};
    }

    int_range!(u8, u16, u32, u64, usize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + u01(rng) * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            lo + u01(rng) * (hi - lo)
        }
    }
}
