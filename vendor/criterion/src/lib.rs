//! Offline stand-in for the subset of `criterion` this workspace uses:
//! groups, `bench_function` / `bench_with_input`, `sample_size` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Mirrors upstream's execution model for `harness = false` targets:
//! under `cargo bench` (which passes `--bench`) each benchmark is
//! warmed up and measured over `sample_size` samples, reporting mean /
//! min / max time per iteration; under `cargo test` each benchmark
//! body runs once as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as upstream renders it.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Mean/min/max nanoseconds per iteration, filled in by [`Bencher::iter`].
    result: Option<(f64, f64, f64)>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// One pass per benchmark (`cargo test` smoke mode).
    Test,
    /// Warm up, then measure (`cargo bench`).
    Measure,
}

impl Bencher {
    /// Run `routine` repeatedly and record its time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.mode == Mode::Test {
            black_box(routine());
            return;
        }
        // Warm up and size one sample to ~5ms.
        let warmup = Duration::from_millis(300);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample = ((0.005 / per_iter) as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        self.result = Some((mean * 1e9, min * 1e9, max * 1e9));
    }
}

/// Render nanoseconds with an adaptive unit, upstream-style.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let full = format!("{}/{}", self.name, id.id);
        match bencher.result {
            Some((mean, min, max)) => println!(
                "{full:<50} time: [{} {} {}]",
                fmt_ns(min),
                fmt_ns(mean),
                fmt_ns(max)
            ),
            None if self.criterion.mode == Mode::Test => println!("{full:<50} ok (test mode)"),
            None => println!("{full:<50} skipped (no iter call)"),
        }
    }

    /// End the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes harness = false targets with `--bench`;
        // `cargo test` does not. Mirror upstream's mode detection.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Test },
        }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            criterion: self,
        }
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut c = Criterion { mode: Mode::Test };
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            mode: Mode::Measure,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        let mut bencher = Bencher {
            mode: Mode::Measure,
            sample_size: 5,
            result: None,
        };
        bencher.iter(|| black_box(2u64).pow(10));
        let (mean, min, max) = bencher.result.expect("measured");
        assert!(min <= mean && mean <= max);
        g.finish();
    }

    #[test]
    fn benchmark_id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("uniform_cap4", 6).id, "uniform_cap4/6");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn nanosecond_formatting_picks_units() {
        assert_eq!(fmt_ns(12.5), "12.50 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
    }
}
