//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Strategies here are plain deterministic samplers (seeded per test
//! and per case from the test's module path), with none of upstream's
//! shrinking machinery: a failing case panics with its case number so
//! it can be replayed, but is not minimized. The `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` and `prop_oneof!` macros accept
//! the same grammar the test suites in this repository use.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case generator. Seeded from the test's full path
/// and the case index, so every test is reproducible run-to-run while
/// distinct tests see distinct streams.
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for case number `case` of the named test.
    pub fn for_case(test: &str, case: u64) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a property failed; produced by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion with the given explanation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this repository's suites are heavy
        // (whole simulations per case), so default lower.
        ProptestConfig { cases: 32 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            map,
        }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap {
            strategy: self,
            map,
        }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.map)(self.strategy.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// The canonical strategy for `Self`.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Fair coin strategy backing `any::<bool>()`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Full-range unsigned-integer strategy backing `any::<uN>()`.
pub struct AnyUint<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyUint<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for AnyUint<T> {}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyUint<$t> {
            type Value = $t;
            // Truncation is the point: each width sees its full range.
            #[allow(clippy::cast_possible_truncation)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyUint<$t>;
            fn arbitrary() -> AnyUint<$t> {
                AnyUint(std::marker::PhantomData)
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Allowed lengths for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                lo: len,
                hi_exclusive: len + 1,
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Value-sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Rng, Strategy, TestRng};

    /// See [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from a fixed non-empty list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// The standard glob import for test files.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fail the current property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current property unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        left,
                        right
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        left,
                        right
                    )));
                }
            }
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests. Each function's arguments are drawn from the
/// given strategies for every case; `prop_assert*` failures panic with
/// the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg_pat = $crate::Strategy::sample(&($arg_strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(u64),
        Drop(usize),
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            n in 3u64..=9,
            f in 0.25f64..0.75,
            len in prop::collection::vec(0u16..4, 2..6),
        ) {
            prop_assert!((3..=9).contains(&n));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(len.len() >= 2 && len.len() < 6);
            prop_assert!(len.iter().all(|&v| v < 4));
        }

        #[test]
        fn combinators_compose(
            ops in prop::collection::vec(
                prop_oneof![
                    (1u64..5).prop_map(Op::Add),
                    (0usize..3).prop_map(Op::Drop),
                ],
                1..10,
            ),
            picked in prop::sample::select(vec![2u32, 4, 8]),
            flag in any::<bool>(),
            byte in any::<u8>(),
            fixed in Just(7i32),
        ) {
            prop_assert!(!ops.is_empty());
            prop_assert!([2, 4, 8].contains(&picked));
            prop_assert!(u8::from(flag) <= 1);
            prop_assert!(u16::from(byte) <= 255);
            prop_assert_eq!(fixed, 7);
        }

        #[test]
        fn flat_map_feeds_dependent_strategy(
            (len, v) in (1usize..5).prop_flat_map(|len| {
                (Just(len), prop::collection::vec(0u64..10, len..len + 1))
            }),
        ) {
            prop_assert_eq!(v.len(), len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_cases_are_respected(x in 0u64..100) {
            // The case counter below tops out at the configured 7.
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let s = (0u64..1000, prop::collection::vec(0.0f64..1.0, 3..8));
        let a = s.sample(&mut crate::TestRng::for_case("t", 5));
        let b = s.sample(&mut crate::TestRng::for_case("t", 5));
        let c = s.sample(&mut crate::TestRng::for_case("t", 6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        // Hand-expanded single property that always fails.
        let run = || -> Result<(), TestCaseError> {
            prop_assert!(1 == 2, "impossible");
            Ok(())
        };
        if let Err(err) = run() {
            panic!("property `x` failed at case 1/1: {err}");
        }
    }
}
