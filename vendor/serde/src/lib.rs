//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Instead of upstream's visitor-based `Serializer`/`Deserializer`
//! pair, everything funnels through a single in-memory [`Value`] tree:
//! [`Serialize`] renders into it and [`Deserialize`] reads back out of
//! it. The companion `serde_json` crate handles the text encoding. The
//! derive macros come from the sibling `serde_derive` crate and target
//! exactly this trait shape.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed data tree, the interchange format between
/// [`Serialize`], [`Deserialize`] and the JSON encoder.
///
/// Objects keep insertion order (a `Vec` of pairs, not a map) so
/// serialized output follows field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short tag for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Look up a field of an object by name.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Numeric view as `u64`, accepting any integer representation.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::UInt(n) => Ok(n),
            Value::Int(n) if n >= 0 => Ok(n as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Ok(f as u64),
            ref other => Err(Error::custom(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Numeric view as `i64`, accepting any integer representation.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::Int(n) => Ok(n),
            Value::UInt(n) if n <= i64::MAX as u64 => Ok(n as i64),
            Value::Float(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Ok(f as i64)
            }
            ref other => Err(Error::custom(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    /// Numeric view as `f64`. `Null` reads as NaN so that NaN survives a
    /// round-trip (JSON has no NaN literal; serialization emits null).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::Float(f) => Ok(f),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type renderable into a [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a data tree.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from a [`Value`] tree.
///
/// The lifetime parameter exists only for signature compatibility with
/// upstream bounds like `for<'de> Deserialize<'de>`; nothing borrows
/// from the input.
pub trait Deserialize<'de>: Sized {
    /// Rebuild `Self` from a data tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64()?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64()?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                // JSON has no NaN/Inf literal; mirror upstream serde_json
                // by emitting null.
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                Ok(value.as_f64()? as $t)
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<[T]> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array()?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(Error::custom(format!(
                        "expected tuple of length {want}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as arrays of `[key, value]` pairs; keys in this
/// workspace are newtype ids, not strings, so a JSON object keyed by
/// string is not representable.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_array()?.iter().map(<(K, V)>::from_value).collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<'de, K: Deserialize<'de> + Eq + std::hash::Hash, V: Deserialize<'de>> Deserialize<'de>
    for HashMap<K, V>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_array()?.iter().map(<(K, V)>::from_value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<'de, T>(input: &T) -> T
    where
        T: Serialize + Deserialize<'de>,
    {
        T::from_value(&input.to_value()).expect("round trip")
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(round_trip(&42u64), 42);
        assert_eq!(round_trip(&-7i64), -7);
        assert_eq!(round_trip(&1.5f64), 1.5);
        assert!(round_trip(&true));
        assert_eq!(round_trip(&String::from("pm-3")), "pm-3");
        assert!(round_trip(&f64::NAN).is_nan());
    }

    #[test]
    fn containers_round_trip() {
        assert_eq!(round_trip(&vec![1u16, 2, 3]), vec![1, 2, 3]);
        assert_eq!(round_trip(&[0.5f64; 6]), [0.5; 6]);
        assert_eq!(round_trip(&Some(9usize)), Some(9));
        assert_eq!(round_trip(&None::<u32>), None);
        let map: BTreeMap<u64, (u32, bool)> = [(4, (1, true)), (7, (0, false))].into();
        assert_eq!(round_trip(&map), map);
    }

    #[test]
    fn out_of_range_is_rejected() {
        assert!(u16::from_value(&Value::UInt(70_000)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(<[f64; 2]>::from_value(&Value::Array(vec![Value::Float(1.0)])).is_err());
        assert!(bool::from_value(&Value::Str("yes".into())).is_err());
    }

    #[test]
    fn field_lookup_reports_missing() {
        let obj = Value::Object(vec![("scan".into(), Value::UInt(3))]);
        assert_eq!(obj.field("scan").unwrap(), &Value::UInt(3));
        let err = obj.field("energy_wh").unwrap_err();
        assert!(err.to_string().contains("energy_wh"));
    }
}
