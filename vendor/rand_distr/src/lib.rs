//! Offline stand-in for the subset of `rand_distr` 0.4 this workspace
//! uses: [`StandardNormal`], [`LogNormal`] and [`Gamma`]. Samplers are
//! textbook (Box–Muller, Marsaglia–Tsang) rather than the ziggurat
//! implementations upstream, but match the same distributions.

use rand::distributions::u01;
use rand::RngCore;
use std::fmt;

pub use rand::distributions::Distribution;

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; the cosine branch only (stateless sampler).
        let u1 = u01(rng).max(f64::MIN_POSITIVE);
        let u2 = u01(rng);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// The log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the mean and standard deviation of the underlying
    /// normal.
    ///
    /// # Errors
    ///
    /// Fails when `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(Error("LogNormal requires finite mu and sigma >= 0"));
        }
        Ok(Self { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * StandardNormal.sample(rng)).exp()
    }
}

/// The gamma distribution with shape `k` and scale `theta`.
#[derive(Debug, Clone, Copy)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Create from shape and scale.
    ///
    /// # Errors
    ///
    /// Fails unless both parameters are finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, Error> {
        if !(shape > 0.0 && shape.is_finite() && scale > 0.0 && scale.is_finite()) {
            return Err(Error("Gamma requires finite shape > 0 and scale > 0"));
        }
        Ok(Self { shape, scale })
    }

    /// Marsaglia–Tsang for shape >= 1.
    fn sample_shape_ge1<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = StandardNormal.sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = u01(rng).max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit = if self.shape >= 1.0 {
            Self::sample_shape_ge1(self.shape, rng)
        } else {
            // Boost: Gamma(k) = Gamma(k + 1) * U^(1/k) for k < 1.
            let boost = u01(rng).max(f64::MIN_POSITIVE).powf(1.0 / self.shape);
            Self::sample_shape_ge1(self.shape + 1.0, rng) * boost
        };
        unit * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(dist: &impl Distribution<f64>, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn standard_normal_is_centered() {
        let m = mean_of(&StandardNormal, 20_000);
        assert!(m.abs() < 0.05, "{m}");
    }

    #[test]
    fn gamma_mean_is_shape_times_scale() {
        let g = Gamma::new(2.0, 0.05).unwrap();
        let m = mean_of(&g, 20_000);
        assert!((m - 0.10).abs() < 0.01, "{m}");
        // Sub-one shapes use the boost path.
        let g = Gamma::new(0.5, 2.0).unwrap();
        let m = mean_of(&g, 20_000);
        assert!((m - 1.0).abs() < 0.1, "{m}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let d = LogNormal::new(-1.2, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<f64> = (0..9_999).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(f64::total_cmp);
        let median = v[v.len() / 2];
        assert!((median - (-1.2f64).exp()).abs() < 0.03, "{median}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
    }
}
