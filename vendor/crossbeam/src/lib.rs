//! Offline stand-in for the slice of `crossbeam` this workspace uses:
//! `crossbeam::channel::{unbounded, Sender, Receiver}`. Backed by
//! `std::sync::mpsc`, whose `Sender` has been `Clone` since 1.0 —
//! enough for the testbed's fan-out/fan-in pattern, minus crossbeam's
//! `select!` and MPMC receivers, which nothing here needs.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_from_cloned_senders() {
        let (tx, rx) = channel::unbounded::<usize>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<_> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
