//! Offline stand-in for the subset of `serde_json` this workspace
//! uses: encode any [`serde::Serialize`] to JSON text (compact or
//! pretty) and parse JSON text back into any [`serde::Deserialize`],
//! going through the shared [`serde::Value`] tree.

use std::fmt;

pub use serde::Value;

/// JSON encoding/decoding error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error(err.to_string())
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` as compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize `value` as pretty JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserialize an instance of `T` from a JSON string.
pub fn from_str<'de, T: serde::Deserialize<'de>>(input: &'de str) -> Result<T, Error> {
    let value = parse_value(input)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserialize an instance of `T` from JSON bytes.
pub fn from_slice<'de, T: serde::Deserialize<'de>>(input: &'de [u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document into a [`Value`].
fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a whole UTF-8 scalar, not a byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid number"))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let value = Value::Object(vec![
            ("scan".into(), Value::UInt(12)),
            ("util".into(), Value::Float(0.75)),
            ("name".into(), Value::Str("pm \"big\"\n".into())),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let value = Value::Object(vec![(
            "samples".into(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
        )]);
        let text = to_string_pretty(&value).unwrap();
        assert!(text.contains("\n  \"samples\": [\n    1,\n    2\n  ]"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn numbers_parse_into_matching_variants() {
        assert_eq!(from_str::<Value>("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str::<Value>("-3").unwrap(), Value::Int(-3));
        assert_eq!(from_str::<Value>("2.5e2").unwrap(), Value::Float(250.0));
        assert_eq!(from_str::<u32>("17").unwrap(), 17);
        assert_eq!(from_str::<f64>("1").unwrap(), 1.0);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("true false").is_err());
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let s = String::from("μ-утилизация\t50%");
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
    }
}
