//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the sibling offline `serde` crate — no `syn`/`quote`, just direct
//! token-stream walking. Supports exactly the shapes this workspace
//! derives on: structs with named fields, tuple structs (a single
//! field acts as a transparent newtype, which also covers
//! `#[serde(transparent)]`), and enums with unit variants only.
//! Generic types are rejected with a compile-time panic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shapes we know how to derive for.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Consume leading attributes (`#[...]`) from the front of `tokens`.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(_)) => {}
            other => panic!("malformed attribute: expected [...] after #, found {other:?}"),
        }
    }
}

/// Consume an optional `pub` / `pub(...)` visibility prefix.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Split a delimited group body on top-level commas, tracking angle
/// bracket depth so `BTreeMap<K, V>` stays one chunk.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("non-empty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Field name of a named-struct field chunk: the first ident after
/// attributes and visibility.
fn field_name(chunk: Vec<TokenTree>) -> String {
    let mut tokens = chunk.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    match tokens.next() {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => panic!("expected field name, found {other:?}"),
    }
}

/// Variant name of a unit-enum variant chunk; panics on data variants.
fn variant_name(chunk: Vec<TokenTree>) -> String {
    let mut tokens = chunk.into_iter().peekable();
    skip_attrs(&mut tokens);
    let name = match tokens.next() {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => panic!("expected enum variant, found {other:?}"),
    };
    if let Some(extra) = tokens.next() {
        panic!("derive supports unit enum variants only; `{name}` carries {extra:?}");
    }
    name
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(kw)) => kw.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive does not support generic type `{name}`");
    }
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                let fields = split_top_level(body.stream())
                    .into_iter()
                    .map(field_name)
                    .collect();
                Item::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level(body.stream()).len();
                assert!(arity > 0, "cannot derive for empty tuple struct `{name}`");
                Item::TupleStruct { name, arity }
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                let variants = split_top_level(body.stream())
                    .into_iter()
                    .map(variant_name)
                    .collect();
                Item::UnitEnum { name, variants }
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive for `{other} {name}`"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: String = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(String::from(match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?,"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let fields: String = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Array(items) if items.len() == {arity} =>\n\
                                 Ok({name}({fields})),\n\
                             _ => Err(::serde::Error::custom(\n\
                                 \"expected array of length {arity} for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::Error::custom(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             _ => Err(::serde::Error::custom(\"expected string for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("generated Deserialize impl parses")
}
