//! Offline stand-in for the slice of `signal-hook` this workspace uses:
//! `flag::register`, which arms an `AtomicBool` when a signal arrives.
//!
//! The real crate installs a handler through `sigaction`; this stand-in
//! uses libc's `signal(2)` directly. The handler body is async-signal-
//! safe — it only stores into a static `AtomicBool`. One static flag per
//! supported signal keeps the handler allocation-free; `register`
//! returns that shared flag, so registering the same signal twice yields
//! the same flag (sufficient for a daemon's shutdown latch).
//!
//! On non-Unix targets `register` returns an error instead of arming
//! anything, mirroring the real crate's platform gating.

/// Signal numbers re-exported under the real crate's consts path.
pub mod consts {
    /// Termination request (the number is POSIX-standard on Linux).
    pub const SIGTERM: i32 = 15;
    /// Interactive interrupt.
    pub const SIGINT: i32 = 2;
    /// User-defined signal 1.
    pub const SIGUSR1: i32 = 10;
}

/// Flag-style handlers: a signal sets an atomic the caller polls.
pub mod flag {
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM_FLAG: AtomicBool = AtomicBool::new(false);
    static INT_FLAG: AtomicBool = AtomicBool::new(false);
    static USR1_FLAG: AtomicBool = AtomicBool::new(false);

    fn slot(signal: i32) -> Option<&'static AtomicBool> {
        match signal {
            super::consts::SIGTERM => Some(&TERM_FLAG),
            super::consts::SIGINT => Some(&INT_FLAG),
            super::consts::SIGUSR1 => Some(&USR1_FLAG),
            _ => None,
        }
    }

    #[cfg(unix)]
    mod imp {
        // `signal(2)` from libc. `usize` stands in for the handler
        // function pointer / SIG_ERR sentinel, avoiding a libc dep.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }

        const SIG_ERR: usize = usize::MAX;

        extern "C" fn on_term() {
            super::TERM_FLAG.store(true, super::Ordering::SeqCst);
        }
        extern "C" fn on_int() {
            super::INT_FLAG.store(true, super::Ordering::SeqCst);
        }
        extern "C" fn on_usr1() {
            super::USR1_FLAG.store(true, super::Ordering::SeqCst);
        }

        pub fn install(signum: i32) -> std::io::Result<()> {
            let handler = match signum {
                super::super::consts::SIGTERM => on_term as extern "C" fn() as usize,
                super::super::consts::SIGINT => on_int as extern "C" fn() as usize,
                super::super::consts::SIGUSR1 => on_usr1 as extern "C" fn() as usize,
                _ => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("unsupported signal {signum}"),
                    ))
                }
            };
            // SAFETY-equivalent contract: the handler only stores into a
            // static AtomicBool, which is async-signal-safe.
            let prev = unsafe { signal(signum, handler) };
            if prev == SIG_ERR {
                Err(std::io::Error::last_os_error())
            } else {
                Ok(())
            }
        }
    }

    #[cfg(not(unix))]
    mod imp {
        pub fn install(_signum: i32) -> std::io::Result<()> {
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "signal registration requires a unix target",
            ))
        }
    }

    /// Arm `flag`-style handling for `signal`: when it arrives, the
    /// returned static flag becomes `true`. The same signal always maps
    /// to the same flag. Supported: SIGTERM, SIGINT, SIGUSR1.
    pub fn register(signal: i32) -> io::Result<&'static AtomicBool> {
        let flag = slot(signal).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unsupported signal {signal}"),
            )
        })?;
        imp::install(signal)?;
        Ok(flag)
    }

    /// Reset a signal's flag to `false` (test/server-restart helper;
    /// not part of the real crate's API, but harmless and handy).
    pub fn clear(signal: i32) {
        if let Some(flag) = slot(signal) {
            flag.store(false, Ordering::SeqCst);
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::{consts, flag};
    use std::sync::atomic::Ordering;

    extern "C" {
        fn getpid() -> i32;
        fn kill(pid: i32, sig: i32) -> i32;
    }

    #[test]
    fn sigusr1_sets_the_flag() {
        let armed = flag::register(consts::SIGUSR1).expect("register");
        flag::clear(consts::SIGUSR1);
        assert!(!armed.load(Ordering::SeqCst));
        let rc = unsafe { kill(getpid(), consts::SIGUSR1) };
        assert_eq!(rc, 0, "self-signal must succeed");
        // Delivery is synchronous for a self-directed signal on Linux,
        // but poll briefly to stay robust.
        for _ in 0..100 {
            if armed.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("flag never set after self-signal");
    }

    #[test]
    fn unknown_signal_is_an_error() {
        assert!(flag::register(9999).is_err());
    }
}
