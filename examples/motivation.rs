//! The paper's §III-B motivation, §V-A quality example, and the VM-set
//! sensitivity — on the exact abstract setting the paper uses: a PM of
//! capacity [4,4,4,4] and the VM set {[1,1], [1,1,1,1]}.
//!
//! ```sh
//! cargo run --release --example motivation
//! ```

use pagerankvm::{GraphLimits, PageRankConfig, ProfileSpace, ProfileVm, ScoreTable};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let space = ProfileSpace::uniform(4, 4);
    let vms = vec![
        ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
        ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
    ];
    // The motivation reasons over arbitrary profiles (e.g. [4,3,3,3] has an
    // odd total, unreachable from empty), so use the full-space table.
    let table = ScoreTable::build_full(
        space,
        vms,
        &PageRankConfig::default(),
        GraphLimits::default(),
    )?;
    let space = table.space();

    let inspect = |raw: [u64; 4]| {
        let p = space.canonicalize(&[&raw]);
        let score = table.score(&p).expect("full table covers all profiles");
        let util: u64 = raw.iter().sum();
        println!(
            "  {raw:?}: pagerank score {:>9.6}, utilization {util:>2}/16, variance {:>7.5}",
            score * 1000.0,
            space.variance(&p)
        );
        score
    };

    println!("== SIII-B: utilization & variance mislead ==");
    println!("Suppose two PM options become these profiles after hosting a VM:");
    let a = inspect([4, 3, 3, 3]);
    let b = inspect([3, 3, 2, 2]);
    println!(
        "[4,3,3,3] has HIGHER utilization and LOWER variance, yet it can never\n\
         reach the best profile [4,4,4,4] with this VM set, while [3,3,2,2] can\n\
         (one [1,1,1,1] + one [1,1]; or three [1,1]s). PageRankVM agrees: \n\
         score([3,3,2,2]) {} score([4,3,3,3]).\n",
        if b > a { ">" } else { "<= (!)" }
    );

    println!("== SV-A / Fig. 2: profile quality ==");
    let c = inspect([3, 3, 3, 3]);
    let d = inspect([4, 4, 2, 2]);
    println!(
        "[3,3,3,3] has two ways to the best profile, [4,4,2,2] only one:\n\
         score([3,3,3,3]) {} score([4,4,2,2]).\n",
        if c > d { ">" } else { "<= (!)" }
    );

    println!("== Ranking is relative to the VM set ==");
    let table2 = ScoreTable::build_full(
        ProfileSpace::uniform(4, 4),
        vec![
            ProfileVm::from_demands("[1]", vec![vec![1]]),
            ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
        ],
        &PageRankConfig::default(),
        GraphLimits::default(),
    )?;
    let score2 = |raw: [u64; 4]| {
        table2
            .score(&table2.space().canonicalize(&[&raw]))
            .expect("covered")
            * 1000.0
    };
    println!(
        "with VM set {{[1],[1,1]}} both profiles reach the best profile:\n\
         score([3,3,3,3]) = {:.6}, score([4,4,2,2]) = {:.6} (gap {:.6},\n\
         was {:.6} under the original set)",
        score2([3, 3, 3, 3]),
        score2([4, 4, 2, 2]),
        (score2([3, 3, 3, 3]) - score2([4, 4, 2, 2])).abs(),
        (c - d).abs() * 1000.0,
    );
    Ok(())
}
