//! The GENI testbed emulation: a centralized controller and ten node
//! agents exchanging messages over channels, comparing PageRankVM with
//! first fit on the paper's job shapes.
//!
//! ```sh
//! cargo run --release --example geni_testbed
//! ```

use pagerankvm::{PageRankEviction, PageRankVmPlacer};
use prvm_baselines::{FirstFit, MinimumMigrationTime};
use prvm_testbed::{run_testbed, TestbedConfig};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let cfg = TestbedConfig {
        duration_s: 1800, // half an hour of virtual time for the demo
        ..TestbedConfig::default()
    };
    println!(
        "emulated GENI testbed: {} nodes x {} cores, {} s scans, {} scans total",
        cfg.nodes,
        cfg.cores_per_node,
        cfg.scan_interval_s,
        cfg.scans()
    );

    let book = Arc::new(cfg.score_book()?);
    println!(
        "score table: {} profiles for the node type\n",
        book.table(&cfg.pm_spec()).expect("built").len()
    );

    println!(
        "{:<12} {:>6} {:>11} {:>11} {:>12} {:>8}",
        "algorithm", "jobs", "nodes used", "ever used", "migrations", "SLO %"
    );
    for jobs in [100usize, 200, 300] {
        // PageRankVM with its own eviction rule.
        let mut placer = PageRankVmPlacer::new(book.clone());
        let mut evictor = PageRankEviction::new(book.clone());
        let o = run_testbed(&cfg, jobs, &mut placer, &mut evictor, 42);
        println!(
            "{:<12} {:>6} {:>11} {:>11} {:>12} {:>8.2}",
            "PageRankVM", jobs, o.pms_used_initial, o.pms_used, o.migrations, o.slo_violation_pct
        );

        // First fit with CloudSim's MMT eviction.
        let mut ff = FirstFit::new();
        let mut mmt = MinimumMigrationTime::new();
        let o = run_testbed(&cfg, jobs, &mut ff, &mut mmt, 42);
        println!(
            "{:<12} {:>6} {:>11} {:>11} {:>12} {:>8.2}",
            "FF", jobs, o.pms_used_initial, o.pms_used, o.migrations, o.slo_violation_pct
        );
    }
    Ok(())
}
