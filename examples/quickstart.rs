//! Quickstart: build a Profile–PageRank score table for the EC2 catalog
//! and place a batch of VMs with Algorithm 2.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pagerankvm::{GraphLimits, PageRankConfig, PageRankVmPlacer, ScoreBook};
use prvm_model::{catalog, place_batch, Cluster, Quantizer};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Preprocess: one profile graph + PageRank table per PM type.
    //    This is the step the paper amortises ("the graph and table are
    //    relatively stable during a certain period of time").
    println!("building Profile-PageRank score tables for the EC2 catalog…");
    let book = Arc::new(ScoreBook::build(
        Quantizer::default(),
        &catalog::ec2_pm_types(),
        &catalog::ec2_vm_types(),
        &PageRankConfig::default(),
        GraphLimits::default(),
    )?);
    for pm in catalog::ec2_pm_types() {
        let table = book.table(&pm).expect("table built for catalog PM");
        println!(
            "  {}: {} profiles, {} edges, converged in {} iterations",
            pm.name,
            table.graph().node_count(),
            table.graph().edge_count(),
            table.pagerank().iterations
        );
    }

    // 2. Place a mixed batch of 60 VMs on a 40-PM datacenter.
    let mut cluster = Cluster::from_specs((0..40).map(|i| {
        if i % 3 == 2 {
            catalog::pm_c3()
        } else {
            catalog::pm_m3()
        }
    }));
    let types = catalog::ec2_vm_types();
    let requests: Vec<_> = (0..60).map(|i| types[i % types.len()].clone()).collect();

    let mut placer = PageRankVmPlacer::new(book);
    let ids = place_batch(&mut placer, &mut cluster, requests)?;

    println!(
        "\nplaced {} VMs on {} PMs:",
        ids.len(),
        cluster.active_pm_count()
    );
    for pm_id in cluster.used_pms() {
        let pm = cluster.pm(pm_id);
        println!(
            "  PM {:>2} ({}): {:>2} VMs, cpu {:>5.1}%, mem {:>5.1}%, disk {:>5.1}%",
            pm_id.0,
            pm.spec().name,
            pm.vm_count(),
            pm.cpu_utilization() * 100.0,
            pm.mem_utilization() * 100.0,
            pm.disk_utilization() * 100.0,
        );
    }

    // 3. Anti-collocation in action: inspect where one VM's vCPUs landed.
    let pm_id = cluster.locate(ids[2]).expect("vm placed");
    let (spec, assignment) = cluster.pm(pm_id).vm(ids[2]).expect("resident");
    println!(
        "\nVM {:?} ({}) on PM {}: vCPUs on distinct cores {:?}, disks on distinct disks {:?}",
        ids[2], spec.name, pm_id.0, assignment.cores, assignment.disks
    );
    Ok(())
}
