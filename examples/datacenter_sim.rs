//! A full trace-driven datacenter simulation: the paper's §VI loop at a
//! demo scale, comparing all four algorithms on one seeded workload.
//!
//! ```sh
//! cargo run --release --example datacenter_sim
//! ```

use prvm_sim::{
    build_cluster, ec2_score_book, simulate, Algorithm, SimConfig, Workload, WorkloadConfig,
};
use prvm_traces::TraceKind;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let sim = SimConfig::default(); // 24 h, 300 s scans, 90 % threshold
    let wl = WorkloadConfig::sized_for(400, TraceKind::PlanetLab);
    let workload = Workload::generate(&wl, sim.scans(), 7);

    println!("building score tables…");
    let book = ec2_score_book()?;

    println!(
        "simulating 24 h: {} VMs on a pool of {} M3 + {} C3 PMs, PlanetLab-like traces\n",
        wl.n_vms, wl.m3_pms, wl.c3_pms
    );
    println!(
        "{:<12} {:>9} {:>10} {:>12} {:>12} {:>8}",
        "algorithm", "PMs used", "ever used", "energy kWh", "migrations", "SLO %"
    );
    for algo in Algorithm::PAPER_SET {
        let (mut placer, mut evictor) = algo.build(&book, 7);
        let o = simulate(
            &sim,
            build_cluster(&wl),
            &workload,
            placer.as_mut(),
            evictor.as_mut(),
        );
        println!(
            "{:<12} {:>9} {:>10} {:>12.1} {:>12} {:>8.2}",
            algo.name(),
            o.pms_used_initial,
            o.pms_used,
            o.energy_kwh,
            o.migrations,
            o.slo_violation_pct
        );
    }
    println!("\n(expected shape: PageRankVM needs the fewest PMs and migrates least)");
    Ok(())
}
