//! Anti-collocation constraints end to end: how permutable demands are
//! enumerated, validated, and scored — and how the exact solver certifies
//! that the heuristic's PM count is optimal on a small instance.
//!
//! ```sh
//! cargo run --release --example anti_collocation
//! ```

use pagerankvm::{GraphLimits, PageRankConfig, PageRankVmPlacer, ScoreBook};
use prvm_model::{catalog, Assignment, Cluster, Pm, PmId, Quantizer};
use prvm_solver::{solve_min_pms, SolverConfig};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // --- 1. Permutability --------------------------------------------------
    let mut pm = Pm::new(catalog::pm_m3());
    let vm = catalog::vm_m3_xlarge(); // 4 vCPUs + 2 disks, all anti-collocated
    println!(
        "an empty M3 has exactly {} DISTINCT ways to host an m3.xlarge",
        pm.distinct_feasible(&vm).len()
    );

    // Load two cores and a disk; the distinct permutations multiply.
    let seed = catalog::vm_c3_large();
    let a = pm.first_feasible(&seed).expect("fits");
    pm.place(prvm_model::VmId(0), seed, a)?;
    let options = pm.distinct_feasible(&vm);
    println!(
        "after one c3.large, there are {} distinct permutations:",
        options.len()
    );
    for (i, opt) in options.iter().enumerate().take(5) {
        println!(
            "  option {i}: vCPUs -> cores {:?}, disks -> {:?}",
            opt.cores, opt.disks
        );
    }

    // --- 2. Violations are rejected -----------------------------------------
    let bad = Assignment::new(vec![0, 0, 1, 2], vec![0, 1]);
    println!(
        "\nplacing two vCPUs on the same core: {}",
        pm.validate(&vm, &bad)
            .expect_err("collocated assignment must be rejected")
    );
    let bad = Assignment::new(vec![0, 1, 2, 3], vec![1, 1]);
    println!(
        "placing two virtual disks on the same disk: {}",
        pm.validate(&vm, &bad)
            .expect_err("collocated assignment must be rejected")
    );

    // --- 3. PageRankVM picks the best permutation ---------------------------
    let book = Arc::new(ScoreBook::build(
        Quantizer::default(),
        &[catalog::pm_m3()],
        &catalog::ec2_vm_types(),
        &PageRankConfig::default(),
        GraphLimits::default(),
    )?);
    let placer = PageRankVmPlacer::new(book);
    let (score, best) = placer.best_option(&pm, &vm).expect("fits");
    println!(
        "\nPageRankVM picks cores {:?} / disks {:?} (score {:.3e})",
        best.cores, best.disks, score
    );

    // --- 4. Certify optimality on a small instance --------------------------
    let pms = vec![catalog::pm_m3(); 4];
    let vms = vec![
        catalog::vm_m3_2xlarge(),
        catalog::vm_m3_xlarge(),
        catalog::vm_c3_xlarge(),
        catalog::vm_m3_large(),
        catalog::vm_c3_large(),
        catalog::vm_m3_medium(),
    ];
    let optimal =
        solve_min_pms(&pms, &vms, &SolverConfig::default()).expect("instance is feasible");
    let mut cluster = Cluster::from_specs(pms);
    let mut placer = PageRankVmPlacer::new(placer_book(&cluster));
    let placed = prvm_model::place_batch(&mut placer, &mut cluster, vms)?;
    println!(
        "\n6 mixed VMs: exact optimum = {} PM(s) (proven: {}), PageRankVM used {} \
         ({} VMs placed)",
        optimal.pm_count,
        optimal.optimal,
        cluster.active_pm_count(),
        placed.len()
    );
    let _ = cluster.pm(PmId(0));
    Ok(())
}

fn placer_book(cluster: &Cluster) -> Arc<ScoreBook> {
    let specs: Vec<_> = cluster.pms().iter().map(|p| p.spec().clone()).collect();
    Arc::new(
        ScoreBook::build(
            Quantizer::default(),
            &specs,
            &catalog::ec2_vm_types(),
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .expect("catalog graph builds"),
    )
}
