//! Machine-level collocation/anti-collocation rules plus the per-scan
//! time series recorder — the library features beyond the paper's core
//! algorithm.
//!
//! ```sh
//! cargo run --release --example affinity_and_timeseries
//! ```

use pagerankvm::{GraphLimits, PageRankConfig, PageRankVmPlacer, ScoreBook};
use prvm_model::{catalog, place_batch_with_rules, AffinityRules, Cluster, Quantizer};
use prvm_sim::{build_cluster, simulate_traced, Algorithm, SimConfig, Workload, WorkloadConfig};
use prvm_traces::TraceKind;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // --- 1. A three-tier deployment with affinity rules --------------------
    // web x2 (replicas, must NOT share a PM), app + cache (must share a PM
    // for latency), db (no rule).
    let vms = vec![
        catalog::vm_c3_large(),  // 0: web-a
        catalog::vm_c3_large(),  // 1: web-b
        catalog::vm_m3_large(),  // 2: app
        catalog::vm_m3_medium(), // 3: cache
        catalog::vm_m3_xlarge(), // 4: db
    ];
    let rules = AffinityRules::new()
        .separate(vec![0, 1])
        .collocate(vec![2, 3]);

    let book = Arc::new(ScoreBook::build(
        Quantizer::default(),
        &catalog::ec2_pm_types(),
        &catalog::ec2_vm_types(),
        &PageRankConfig::default(),
        GraphLimits::default(),
    )?);
    let mut placer = PageRankVmPlacer::new(book);
    let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 6);
    let ids = place_batch_with_rules(&mut placer, &mut cluster, &vms, &rules)?;

    println!("three-tier deployment placed under affinity rules:");
    for (i, (id, vm)) in ids.iter().zip(&vms).enumerate() {
        let pm = cluster.locate(*id).expect("placed");
        println!("  request {i} ({:<10}) -> PM {}", vm.name, pm.0);
    }
    assert_ne!(cluster.locate(ids[0]), cluster.locate(ids[1]), "web split");
    assert_eq!(cluster.locate(ids[2]), cluster.locate(ids[3]), "app+cache");

    // --- 2. Time series of a simulated day ---------------------------------
    let sim = SimConfig {
        horizon_s: 6 * 3600,
        ..SimConfig::default()
    };
    let wl = WorkloadConfig::sized_for(150, TraceKind::GoogleCluster);
    let workload = Workload::generate(&wl, sim.scans(), 3);
    let sim_book = prvm_sim::ec2_score_book()?;
    let (mut p, mut e) = Algorithm::PageRankVm.build(&sim_book, 3);
    let (outcome, ts) =
        simulate_traced(&sim, build_cluster(&wl), &workload, p.as_mut(), e.as_mut());

    println!(
        "\n6 h simulation: {} scans recorded, {} migrations, peak mean utilization at scan {:?}",
        ts.len(),
        outcome.migrations,
        ts.peak_scan()
    );
    // A terminal sparkline of mean utilization.
    let glyphs = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let line: String = ts
        .samples()
        .iter()
        .map(|s| glyphs[((s.mean_utilization * 8.0).round() as usize).min(8)])
        .collect();
    println!("mean active-PM utilization: |{line}|");

    let csv = std::env::temp_dir().join("pagerankvm_timeseries.csv");
    ts.write_csv(&mut std::fs::File::create(&csv)?)?;
    println!("full per-scan series written to {}", csv.display());
    Ok(())
}
