//! Property-based tests over the core invariants of the reproduction,
//! spanning crates (the per-crate `tests/prop.rs` suites go deeper into
//! each module).

use pagerankvm::{pagerank, GraphLimits, Orientation, PageRankConfig, ProfileGraph};
use pagerankvm::{ProfileSpace, ProfileVm};
use proptest::prelude::*;
use prvm_model::combin::{distinct_placements, first_feasible};
use prvm_traces::stats::Percentiles;

/// Random small placement instances: dimensions with usage <= cap, plus a
/// demand multiset.
fn placement_instance() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<u64>)> {
    (1usize..6, 0usize..5).prop_flat_map(|(dims, demands)| {
        (
            prop::collection::vec(0u64..5, dims),
            prop::collection::vec(1u64..5, demands.min(dims)),
        )
            .prop_map(|(used, mut demands)| {
                let caps: Vec<u64> = used.iter().map(|&u| u + 4).collect();
                demands.sort_unstable_by(|a, b| b.cmp(a));
                (used, caps, demands)
            })
    })
}

proptest! {
    #[test]
    fn distinct_placements_respect_anti_collocation_and_capacity(
        (used, caps, demands) in placement_instance()
    ) {
        for assignment in distinct_placements(&used, &caps, &demands) {
            // Parallel to demands.
            prop_assert_eq!(assignment.len(), demands.len());
            // Distinct dimensions.
            let mut dims = assignment.clone();
            dims.sort_unstable();
            dims.dedup();
            prop_assert_eq!(dims.len(), assignment.len());
            // Capacity respected.
            for (j, &dim) in assignment.iter().enumerate() {
                prop_assert!(used[dim] + demands[j] <= caps[dim]);
            }
        }
    }

    #[test]
    fn distinct_placements_yield_distinct_outcomes(
        (used, caps, demands) in placement_instance()
    ) {
        let placements = distinct_placements(&used, &caps, &demands);
        let mut outcomes: Vec<Vec<u64>> = placements
            .iter()
            .map(|a| {
                let mut v = used.clone();
                for (j, &dim) in a.iter().enumerate() {
                    v[dim] += demands[j];
                }
                v.sort_unstable();
                v
            })
            .collect();
        let n = outcomes.len();
        outcomes.sort();
        outcomes.dedup();
        prop_assert_eq!(outcomes.len(), n, "duplicate canonical outcomes");
    }

    #[test]
    fn first_feasible_agrees_with_enumeration(
        (used, caps, demands) in placement_instance()
    ) {
        let greedy = first_feasible(&used, &caps, &demands);
        let all = distinct_placements(&used, &caps, &demands);
        prop_assert_eq!(greedy.is_some(), !all.is_empty());
    }

    #[test]
    fn profile_place_is_complete_and_canonical(
        usage in prop::collection::vec(0u16..5, 2..6),
        demand_count in 1usize..4,
    ) {
        let dims = usage.len();
        let space = ProfileSpace::uniform(dims, 4);
        let usage64: Vec<u64> = usage.iter().map(|&u| u64::from(u.min(4))).collect();
        let profile = space.canonicalize(&[&usage64]);
        let vm = ProfileVm::from_demands(
            "p",
            vec![vec![1; demand_count.min(dims)]],
        );
        for out in space.place(&profile, &vm) {
            // Canonical: sorted ascending within the single kind.
            let vals = out.values();
            prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
            // Total increased by exactly the demand total.
            let before: u64 = profile.values().iter().map(|&v| u64::from(v)).sum();
            let after: u64 = vals.iter().map(|&v| u64::from(v)).sum();
            prop_assert_eq!(after, before + demand_count.min(dims) as u64);
            // Capacity respected.
            prop_assert!(vals.iter().all(|&v| v <= 4));
        }
    }

    #[test]
    fn pagerank_is_a_distribution_on_random_graphs(
        dims in 2usize..5,
        cap in 2u16..5,
        seed_shape in 1u64..4,
        orientation in prop::sample::select(vec![
            Orientation::TowardEmptier,
            Orientation::TowardFuller,
        ]),
    ) {
        let space = ProfileSpace::uniform(dims, cap);
        let vms = vec![
            ProfileVm::from_demands("a", vec![vec![seed_shape.min(u64::from(cap))]]),
            ProfileVm::from_demands("b", vec![vec![1, 1][..dims.min(2)].to_vec()]),
        ];
        let graph = ProfileGraph::build(space, vms, GraphLimits::default()).expect("small graph builds");
        let r = pagerank(
            &graph,
            &PageRankConfig { orientation, ..PageRankConfig::default() },
        );
        let sum: f64 = r.scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        prop_assert!(r.scores.iter().all(|&s| s > 0.0 && s <= 1.0));
        prop_assert!(r.converged);
    }

    #[test]
    fn percentiles_are_ordered_and_within_range(
        values in prop::collection::vec(-1e6f64..1e6, 1..200)
    ) {
        let p = Percentiles::of(&values);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p.p1 <= p.median && p.median <= p.p99);
        prop_assert!(p.p1 >= min && p.p99 <= max);
    }
}
