//! Cross-crate integration tests: the full pipeline from score-table
//! construction through placement, simulation, testbed emulation and the
//! exact solver.

use pagerankvm::{GraphLimits, PageRankConfig, PageRankEviction, PageRankVmPlacer, ScoreBook};
use prvm_baselines::{CompVm, FfdSum, FirstFit, MinimumMigrationTime};
use prvm_model::{catalog, place_batch, Cluster, PlacementAlgorithm, Quantizer};
use prvm_sim::{build_cluster, simulate, Algorithm, SimConfig, Workload, WorkloadConfig};
use prvm_solver::{solve_min_pms, SolverConfig};
use prvm_testbed::{run_testbed, TestbedConfig};
use prvm_traces::TraceKind;
use std::sync::Arc;

fn coarse_book() -> Arc<ScoreBook> {
    Arc::new(
        ScoreBook::build(
            Quantizer {
                core_slots: 2,
                mem_levels: 8,
                disk_levels: 2,
            },
            &catalog::ec2_pm_types(),
            &catalog::ec2_vm_types(),
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .expect("catalog graph builds"),
    )
}

#[test]
fn full_pipeline_places_simulates_and_reports() {
    let book = coarse_book();
    let sim = SimConfig {
        horizon_s: 2 * 3600,
        ..SimConfig::default()
    };
    let wl = WorkloadConfig {
        n_vms: 80,
        trace_kind: TraceKind::PlanetLab,
        m3_pms: 80,
        c3_pms: 40,
    };
    let workload = Workload::generate(&wl, sim.scans(), 1);
    let mut placer = PageRankVmPlacer::new(book.clone());
    let mut evictor = PageRankEviction::new(book);
    let o = simulate(
        &sim,
        build_cluster(&wl),
        &workload,
        &mut placer,
        &mut evictor,
    );
    assert_eq!(o.rejected_vms, 0);
    assert!(o.pms_used_initial > 0);
    assert!(o.pms_used >= o.pms_used_initial);
    assert!(o.pms_used_max_active >= o.pms_used_initial);
    assert!(o.energy_kwh > 0.0);
    assert!((0.0..=100.0).contains(&o.slo_violation_pct));
}

#[test]
fn all_algorithms_place_the_same_workload_without_rejection() {
    let book = coarse_book();
    let types = catalog::ec2_vm_types();
    let vms: Vec<_> = (0..48).map(|i| types[i % types.len()].clone()).collect();
    for algo in [
        Algorithm::PageRankVm,
        Algorithm::TwoChoice,
        Algorithm::FirstFit,
        Algorithm::FfdSum,
        Algorithm::CompVm,
        Algorithm::BestFit,
        Algorithm::WorstFit,
    ] {
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 48);
        let (mut placer, _) = algo.build(&book, 3);
        let ids = place_batch(placer.as_mut(), &mut cluster, vms.clone())
            .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
        assert_eq!(ids.len(), 48, "{}", algo.name());
        // Every placement satisfies anti-collocation by construction;
        // verify via the model's own validator on a replay.
        for id in ids {
            let pm = cluster.locate(id).expect("placed");
            let (_spec, assignment) = cluster.pm(pm).vm(id).expect("resident");
            assert!(assignment.is_anti_collocated());
        }
    }
}

#[test]
fn pagerankvm_initial_allocation_is_competitive() {
    // The paper's headline, at test scale: PageRankVM should use no more
    // PMs than FF/FFDSum for a mixed workload.
    let book = coarse_book();
    let types = catalog::ec2_vm_types();
    let vms: Vec<_> = (0..90)
        .map(|i| types[(i * 7) % types.len()].clone())
        .collect();

    let count = |mut algo: Box<dyn PlacementAlgorithm>| -> usize {
        let mut cluster = Cluster::from_specs((0..90).map(|i| {
            if i % 3 == 2 {
                catalog::pm_c3()
            } else {
                catalog::pm_m3()
            }
        }));
        place_batch(algo.as_mut(), &mut cluster, vms.clone()).expect("pool big enough");
        cluster.active_pm_count()
    };

    let pr = count(Box::new(PageRankVmPlacer::new(book)));
    let ff = count(Box::new(FirstFit::new()));
    let ffd = count(Box::new(FfdSum::new(catalog::pm_m3())));
    let comp = count(Box::new(CompVm::new()));
    assert!(
        pr <= ff && pr <= ffd,
        "PageRankVM {pr} vs FF {ff}, FFDSum {ffd}, CompVM {comp}"
    );
}

#[test]
fn heuristics_never_beat_the_exact_optimum() {
    let pms = vec![catalog::pm_m3(); 5];
    let vm_sets: Vec<Vec<prvm_model::VmSpec>> = vec![
        vec![catalog::vm_m3_large(); 5],
        vec![
            catalog::vm_m3_2xlarge(),
            catalog::vm_m3_xlarge(),
            catalog::vm_c3_large(),
            catalog::vm_m3_medium(),
        ],
        vec![catalog::vm_c3_xlarge(); 4],
    ];
    let book = coarse_book();
    for vms in vm_sets {
        let exact = solve_min_pms(&pms, &vms, &SolverConfig::default()).expect("feasible instance");
        assert!(exact.optimal, "solver budget should suffice at this size");

        for algo in [
            Algorithm::PageRankVm,
            Algorithm::FirstFit,
            Algorithm::CompVm,
        ] {
            let mut cluster = Cluster::from_specs(pms.clone());
            let (mut placer, _) = algo.build(&book, 1);
            place_batch(placer.as_mut(), &mut cluster, vms.clone()).expect("fits");
            assert!(
                cluster.active_pm_count() >= exact.pm_count,
                "{} used fewer PMs than the proven optimum",
                algo.name()
            );
        }
    }
}

#[test]
fn testbed_and_placer_agree_on_anti_collocation_shapes() {
    let cfg = TestbedConfig {
        duration_s: 300,
        ..TestbedConfig::default()
    };
    let book = Arc::new(cfg.score_book().expect("testbed graph builds"));
    let mut placer = PageRankVmPlacer::new(book.clone());
    let mut evictor = PageRankEviction::new(book);
    let pr = run_testbed(&cfg, 120, &mut placer, &mut evictor, 9);

    let mut ff = FirstFit::new();
    let mut mmt = MinimumMigrationTime::new();
    let ffo = run_testbed(&cfg, 120, &mut ff, &mut mmt, 9);

    assert_eq!(pr.rejected_jobs, 0);
    assert_eq!(ffo.rejected_jobs, 0);
    assert!(pr.pms_used_initial <= ffo.pms_used_initial + 2);
}

#[test]
fn deterministic_experiments_reproduce_bit_for_bit() {
    let book = coarse_book();
    let sim = SimConfig {
        horizon_s: 1800,
        ..SimConfig::default()
    };
    let wl = WorkloadConfig {
        n_vms: 40,
        trace_kind: TraceKind::GoogleCluster,
        m3_pms: 40,
        c3_pms: 20,
    };
    let run = || {
        let workload = Workload::generate(&wl, sim.scans(), 5);
        let (mut placer, mut evictor) = Algorithm::PageRankVm.build(&book, 5);
        simulate(
            &sim,
            build_cluster(&wl),
            &workload,
            placer.as_mut(),
            evictor.as_mut(),
        )
    };
    assert_eq!(run(), run());
}
