//! Umbrella crate for the PageRankVM reproduction.
//!
//! Re-exports every workspace crate under one roof so the repository-level
//! `examples/` and `tests/` can exercise the whole system. Downstream users
//! should depend on the individual crates (`pagerankvm`, `prvm-sim`, …)
//! instead.

#![warn(missing_docs)]

pub use pagerankvm;
pub use prvm_baselines as baselines;
pub use prvm_faults as faults;
pub use prvm_model as model;
pub use prvm_sim as sim;
pub use prvm_solver as solver;
pub use prvm_testbed as testbed;
pub use prvm_traces as traces;
