//! End-to-end daemon tests over real TCP sockets: place/evict/stats
//! through the [`Client`], kill-and-restart recovery from the journaled
//! store, graceful drain, typed shedding, and protocol-error handling
//! for garbage bytes.

use prvm_model::Quantizer;
use prvm_serve::wire::ErrorCode;
use prvm_serve::{CatalogSpec, Client, ClientError, Response, Server, ServerConfig, Store};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

/// Coarse profile resolution: daemon behaviour under test is
/// resolution-independent and the coarse score book builds fast in
/// debug mode.
fn catalog() -> CatalogSpec {
    CatalogSpec::ec2(6).with_quantizer(Quantizer {
        core_slots: 2,
        mem_levels: 4,
        disk_levels: 2,
    })
}

/// A fresh per-test store directory under the target tmpdir.
fn fresh_store(test: &str) -> (PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!("prvm-serve-test-{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let store = Store::open(&dir).expect("store");
    (dir, store)
}

fn start(store: Store, config: ServerConfig) -> prvm_serve::ServerHandle {
    Server::start(&catalog(), store, config, "127.0.0.1:0").expect("server start")
}

#[test]
fn place_evict_stats_roundtrip_over_tcp() {
    let (_dir, store) = fresh_store("roundtrip");
    let handle = start(store, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let a = client.place("m3.medium").expect("place a");
    let b = client.place("m3.large").expect("place b");
    assert_ne!(a.vm, b.vm, "distinct ids");

    let evicted = client.evict(a.vm).expect("evict");
    assert_eq!(evicted.vm, a.vm);

    let err = client.evict(a.vm).expect_err("already gone");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownVm),
        other => panic!("expected typed server error, got {other:?}"),
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.state.vms, 1);
    assert_eq!(stats.state.next_vm_id, 2);
    assert_eq!(stats.process.placed, 2);
    assert_eq!(stats.process.evicted, 1);
    assert_eq!(stats.process.journal_appends, 3);

    let final_stats = handle.shutdown();
    assert_eq!(final_stats.placed, 2);
}

#[test]
fn restart_recovers_identical_state() {
    let (dir, store) = fresh_store("restart");
    let pre;
    {
        let handle = start(store, ServerConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");
        for ty in ["m3.medium", "m3.large", "c3.large", "m3.xlarge"] {
            client.place(ty).expect(ty);
        }
        let placed = client.place("m3.medium").expect("one more");
        client.evict(placed.vm).expect("evict");
        client.migrate(0).expect("migrate vm 0");
        pre = client.stats().expect("stats").state;
        let _ = handle.shutdown();
    }

    // Cold start from the same store: the recovered state must be
    // byte-identical — same digest, same allocator watermark.
    let store = Store::open(&dir).expect("reopen");
    let handle = start(store, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    let post = client.stats().expect("stats").state;
    assert_eq!(post, pre, "recovered state identical to pre-kill state");

    // And the daemon still serves: new ids never reuse retired ones.
    let next = client.place("m3.medium").expect("place after recovery");
    assert!(next.vm >= pre.next_vm_id, "no id reuse after recovery");
    let _ = handle.shutdown();
}

#[test]
fn snapshot_compacts_and_still_recovers() {
    let (dir, store) = fresh_store("snapshot");
    let pre;
    {
        let handle = start(store, ServerConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");
        for _ in 0..4 {
            client.place("m3.medium").expect("place");
        }
        let version = client.snapshot().expect("snapshot");
        assert!(version >= 1, "snapshot version advances");
        // Post-compaction mutations land in the fresh journal tail.
        client.place("c3.large").expect("tail write");
        pre = client.stats().expect("stats").state;
        let _ = handle.shutdown();
    }

    let store = Store::open(&dir).expect("reopen");
    let handle = start(store, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    assert_eq!(client.stats().expect("stats").state, pre);
    let _ = handle.shutdown();
}

#[test]
fn drain_rejects_new_work_with_typed_reply() {
    let (_dir, store) = fresh_store("drain");
    let handle = start(store, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.place("m3.medium").expect("place");
    client.drain().expect("drain acknowledged");

    // Requests after the drain ack get a typed Draining error (or the
    // socket closes if the reader already exited — both are clean).
    match client.place("m3.medium") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Draining),
        Err(ClientError::Io(_)) => {}
        other => panic!("expected Draining or closed socket, got {other:?}"),
    }
    let stats = handle.join();
    assert_eq!(stats.placed, 1);
}

#[test]
fn zero_capacity_queue_sheds_with_backoff_guidance() {
    let (_dir, store) = fresh_store("shed");
    let handle = start(
        store,
        ServerConfig {
            // Capacity clamps to 1, so fill the single slot with the
            // worker parked behind it to force a deterministic shed.
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(handle.addr()).expect("connect");
    // Shed responses carry capped-doubling backoff guidance. Stuffing
    // requests faster than the worker drains them is inherently racy,
    // so accept either outcome but verify the typed shape when it sheds.
    let mut sheds = 0u64;
    for _ in 0..64 {
        match client.stats() {
            Ok(_) => {}
            Err(ClientError::Shed { retry_after_ms, .. }) => {
                assert!(retry_after_ms >= 50, "backoff floor");
                assert!(retry_after_ms <= 3200, "backoff cap");
                sheds += 1;
            }
            Err(other) => panic!("unexpected failure: {other:?}"),
        }
    }
    let stats = handle.shutdown();
    assert_eq!(stats.shed, sheds, "server counted the same sheds");
}

#[test]
fn garbage_bytes_get_a_typed_protocol_reply_then_close() {
    let (_dir, store) = fresh_store("garbage");
    let handle = start(store, ServerConfig::default());
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("write garbage");

    // The server answers with a framed Protocol error, then closes.
    let mut bytes = Vec::new();
    raw.read_to_end(&mut bytes).expect("read until close");
    let mut decoder = prvm_serve::FrameDecoder::new();
    decoder.feed(&bytes);
    let frame = decoder
        .next_frame()
        .expect("valid frame")
        .expect("one reply before close");
    match Response::decode(&frame).expect("typed reply") {
        Response::Error(err) => {
            assert_eq!(err.code, ErrorCode::Protocol);
            assert_eq!(err.id, 0, "connection-scoped error carries id 0");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    let _ = handle.shutdown();
}
