//! Property-based tests of the wire protocol's totality: any byte
//! stream either parses to valid frames or returns a typed
//! [`ProtocolError`] — the decoder never panics, never over-reads past a
//! frame boundary, and never accepts a corrupted payload.

use proptest::prelude::*;
use prvm_serve::wire::{
    encode_frame, kind, DrainReq, ErrorCode, ErrorResp, EvictReq, MigrateReq, PlaceReq, PlacedResp,
    ShedResp, SnapshotReq, StatsReq, TimeoutResp, HEADER_LEN,
};
use prvm_serve::{FrameDecoder, Request, Response, MAX_PAYLOAD};

/// `[a-z0-9.]{lo,hi}` by hand — the vendored proptest has no regex
/// strategies.
fn arb_name(lo: usize, hi: usize) -> impl Strategy<Value = String> {
    const ALPHABET: &[u8; 37] = b"abcdefghijklmnopqrstuvwxyz0123456789.";
    prop::collection::vec(0usize..ALPHABET.len(), lo..hi + 1)
        .prop_map(|picks| picks.into_iter().map(|i| ALPHABET[i] as char).collect())
}

fn arb_request() -> impl Strategy<Value = Request> {
    let id = any::<u64>();
    let deadline = 0u64..10_000;
    prop_oneof![
        (id, deadline.clone(), arb_name(1, 16)).prop_map(|(id, deadline_ms, vm_type)| {
            Request::Place(PlaceReq {
                id,
                deadline_ms,
                vm_type,
            })
        }),
        (id, deadline.clone(), any::<u64>()).prop_map(|(id, deadline_ms, vm)| {
            Request::Evict(EvictReq {
                id,
                deadline_ms,
                vm,
            })
        }),
        (id, deadline.clone(), any::<u64>()).prop_map(|(id, deadline_ms, vm)| {
            Request::Migrate(MigrateReq {
                id,
                deadline_ms,
                vm,
            })
        }),
        (id, deadline.clone())
            .prop_map(|(id, deadline_ms)| { Request::Stats(StatsReq { id, deadline_ms }) }),
        (id, deadline.clone())
            .prop_map(|(id, deadline_ms)| { Request::Snapshot(SnapshotReq { id, deadline_ms }) }),
        (id, deadline).prop_map(|(id, deadline_ms)| Request::Drain(DrainReq { id, deadline_ms })),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    let id = any::<u64>();
    prop_oneof![
        (id, any::<u64>(), 0usize..4096)
            .prop_map(|(id, vm, pm)| { Response::Placed(PlacedResp { id, vm, pm }) }),
        (id, 0usize..4096, 0u64..5_000).prop_map(|(id, queue_depth, retry_after_ms)| {
            Response::Shed(ShedResp {
                id,
                queue_depth,
                retry_after_ms,
            })
        }),
        (id, 1u64..60_000)
            .prop_map(|(id, deadline_ms)| { Response::Timeout(TimeoutResp { id, deadline_ms }) }),
        (id, arb_name(0, 64), 0u64..5_000).prop_map(|(id, detail, retry_after_ms)| {
            Response::Error(ErrorResp {
                id,
                code: ErrorCode::NoCapacity,
                detail,
                retry_after_ms,
            })
        }),
    ]
}

proptest! {
    /// Every request round-trips bit-exactly through encode → decode.
    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let bytes = req.encode().expect("encode");
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        let frame = d.next_frame().expect("valid").expect("complete");
        prop_assert_eq!(Request::decode(&frame).expect("decode"), req);
        prop_assert_eq!(d.buffered(), 0, "nothing left over");
    }

    /// Every response round-trips bit-exactly through encode → decode.
    #[test]
    fn responses_roundtrip(resp in arb_response()) {
        let bytes = resp.encode().expect("encode");
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        let frame = d.next_frame().expect("valid").expect("complete");
        prop_assert_eq!(Response::decode(&frame).expect("decode"), resp);
    }

    /// Round-trips survive arbitrary chunking: a frame delivered one
    /// random slice at a time decodes identically, and the decoder
    /// never claims completion early.
    #[test]
    fn roundtrip_survives_arbitrary_chunking(
        req in arb_request(),
        cuts in prop::collection::vec(1usize..16, 0..8),
    ) {
        let bytes = req.encode().expect("encode");
        let mut d = FrameDecoder::new();
        let mut fed = 0usize;
        for cut in cuts {
            let next = (fed + cut).min(bytes.len().saturating_sub(1));
            d.feed(&bytes[fed..next]);
            fed = next;
            // With a strict prefix fed, the decoder must wait, not err.
            prop_assert_eq!(d.next_frame().expect("prefix is never an error"), None);
        }
        d.feed(&bytes[fed..]);
        let frame = d.next_frame().expect("valid").expect("complete");
        prop_assert_eq!(Request::decode(&frame).expect("decode"), req);
    }

    /// Adversarial totality: ANY byte soup either yields frames or a
    /// typed error — never a panic, and each pulled frame consumes at
    /// most the bytes fed.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        let mut consumed_frames = 0usize;
        loop {
            match d.next_frame() {
                Ok(Some(frame)) => {
                    // Decoding the frame as either direction must also be
                    // total (typed error or success, no panic).
                    let _ = Request::decode(&frame);
                    let _ = Response::decode(&frame);
                    consumed_frames += 1;
                    prop_assert!(consumed_frames <= bytes.len() / HEADER_LEN + 1);
                }
                Ok(None) => break,      // needs more bytes: fine
                Err(_typed) => break,   // typed rejection: fine
            }
        }
    }

    /// A flipped bit anywhere in an encoded frame is rejected with a
    /// typed error (or, if the flip lands in the length prefix, the
    /// decoder legitimately waits for more bytes) — it is never decoded
    /// as a *different valid message*, except for the one u64-id case
    /// where the flip stays inside JSON digits and the CRC catches it
    /// anyway.
    #[test]
    fn single_bitflips_never_yield_a_different_message(
        req in arb_request(),
        flip_byte in 0usize..64,
        flip_bit in 0u32..8,
    ) {
        let mut bytes = req.encode().expect("encode");
        let at = flip_byte % bytes.len();
        bytes[at] ^= 1u8 << flip_bit;
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        match d.next_frame() {
            Ok(Some(frame)) => {
                // Only reachable if the flip kept header AND crc valid —
                // impossible for a single bit flip: header flips change
                // magic/version/kind/len/crc, payload flips break crc.
                let decoded = Request::decode(&frame);
                prop_assert!(decoded != Ok(req), "flip must not round-trip silently");
            }
            Ok(None) => {
                // Flip grew the length prefix: decoder waits for bytes
                // that never come. Bounded by MAX_PAYLOAD, so no
                // unbounded buffering either.
                prop_assert!(bytes.len() >= HEADER_LEN);
            }
            Err(_typed) => {} // the expected outcome
        }
    }

    /// Oversized length prefixes are rejected from the 12-byte header
    /// alone — a hostile peer cannot make the decoder buffer a payload
    /// it already knows is too big.
    #[test]
    fn oversized_frames_reject_from_the_header(extra in 1u32..1000) {
        let mut header = Vec::new();
        header.extend_from_slice(&0x5056u16.to_le_bytes());
        header.push(1); // version
        header.push(kind::PLACE);
        header.extend_from_slice(&(MAX_PAYLOAD + extra).to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.feed(&header);
        prop_assert!(d.next_frame().is_err(), "rejected before any payload");
    }

    /// The encoder refuses oversized payloads instead of emitting a
    /// frame no decoder would accept.
    #[test]
    fn encoder_rejects_oversized_payloads(extra in 1usize..64) {
        let big = vec![b'x'; MAX_PAYLOAD as usize + extra];
        prop_assert!(encode_frame(kind::PLACE, &big).is_err());
    }
}
