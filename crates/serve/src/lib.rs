//! `prvm-serve`: the crash-safe placement daemon.
//!
//! A dependency-free framed-TCP server that owns a live
//! [`prvm_model::Cluster`] + [`pagerankvm::ScoreBook`] and answers
//! `place` / `evict` / `migrate` / `stats` / `snapshot` requests from
//! concurrent clients, engineered failure-first:
//!
//! - **Durability** ([`journal`]): every mutation is appended to a
//!   checksummed write-ahead journal (sync before apply, apply before
//!   reply) with periodic compaction into a versioned snapshot keyed by
//!   the catalog hash. Cold start replays to byte-identical state —
//!   proven through the I/O fault family in `prvm-faults`.
//! - **Availability** ([`server`]): per-request deadlines with typed
//!   timeout replies, a bounded admission queue that sheds load with
//!   typed responses (never dropped connections) and deterministic
//!   capped backoff guidance, and graceful drain on SIGTERM.
//! - **Total parsing** ([`wire`]): any byte stream either decodes to
//!   valid frames or a typed protocol error; the decoder never panics
//!   and never over-reads.
//!
//! The [`chaos`] module runs the whole stack under the seeded I/O fault
//! matrix; the `pagerankvm chaos --target serve` subcommand drives it.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod crc;
pub mod journal;
pub mod server;
pub mod state;
pub mod wire;

pub use chaos::{run_io_chaos, ChaosError, IoChaosOutcome};
pub use client::{Client, ClientError};
pub use journal::{Journal, JournalError, Op, OpKind, Replay, Snapshot, Store};
pub use server::{retry_backoff_ms, Server, ServerConfig, ServerHandle};
pub use state::{CatalogSpec, ServeState, StateError};
pub use wire::{
    ErrorCode, Frame, FrameDecoder, ProtocolError, Request, Response, MAX_PAYLOAD, VERSION,
};
