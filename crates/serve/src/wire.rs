//! The daemon's framed wire protocol.
//!
//! Every message is one frame:
//!
//! ```text
//! [magic u16 LE = 0x5056] [version u8] [kind u8] [len u32 LE] [crc32 u32 LE] [payload: len bytes]
//! ```
//!
//! The payload is the JSON encoding of the per-kind DTO struct below.
//! The kind byte — not a serde enum tag — discriminates message types,
//! so the DTOs stay plain structs (the vendored serde derive supports
//! structs and unit enums only) and a decoder can reject unknown kinds
//! before touching the payload.
//!
//! Parsing is total: any byte stream either yields valid frames or a
//! typed [`ProtocolError`]; the decoder never panics and never consumes
//! more than one frame's bytes per frame ([`FrameDecoder::next_frame`]
//! leaves everything after the frame in the buffer). Oversized length
//! prefixes are rejected from the header alone, so a hostile peer cannot
//! make the decoder buffer unbounded payloads.

use crate::crc::crc32;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Frame magic: `"PV"` little-endian.
pub const MAGIC: u16 = 0x5056;
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Upper bound on one frame's payload. Placement requests are tiny;
/// stats responses are bounded by cluster size. 1 MiB is generous.
pub const MAX_PAYLOAD: u32 = 1 << 20;
/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 12;

/// Message kind bytes. Requests are `1..=6`, responses `65..=82`.
pub mod kind {
    /// Place a VM of a named catalog type.
    pub const PLACE: u8 = 1;
    /// Evict (remove) a resident VM.
    pub const EVICT: u8 = 2;
    /// Migrate a resident VM to a new PM chosen by the placer.
    pub const MIGRATE: u8 = 3;
    /// Read cluster + process statistics.
    pub const STATS: u8 = 4;
    /// Force a compaction (journal → snapshot).
    pub const SNAPSHOT: u8 = 5;
    /// Ask the daemon to drain and exit.
    pub const DRAIN: u8 = 6;

    /// Successful placement.
    pub const PLACED: u8 = 65;
    /// Successful eviction.
    pub const EVICTED: u8 = 66;
    /// Successful migration.
    pub const MIGRATED: u8 = 67;
    /// Statistics reply.
    pub const STATS_REPLY: u8 = 68;
    /// Compaction done.
    pub const SNAPSHOTTED: u8 = 69;
    /// Drain acknowledged; the daemon is shutting down.
    pub const DRAINING: u8 = 70;
    /// Load shed: the admission queue was full. Retryable.
    pub const SHED: u8 = 80;
    /// Deadline exceeded before the worker reached the request.
    pub const TIMEOUT: u8 = 81;
    /// Typed request failure (see [`super::ErrorCode`]).
    pub const ERROR: u8 = 82;

    /// True for kind bytes this protocol version defines.
    #[must_use]
    pub fn is_known(k: u8) -> bool {
        matches!(k, PLACE..=DRAIN | PLACED..=DRAINING | SHED..=ERROR)
    }
}

/// A typed wire-protocol failure. Every malformed input maps to exactly
/// one of these; none of them panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic(u16),
    /// The version byte was not [`VERSION`].
    BadVersion(u8),
    /// The kind byte names no message this version defines.
    UnknownKind(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload checksum did not match the header's.
    CrcMismatch {
        /// CRC the header claimed.
        want: u32,
        /// CRC of the received payload.
        got: u32,
    },
    /// The payload was not the JSON document the kind byte promised.
    BadPayload(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic(m) => write!(f, "bad frame magic 0x{m:04x}"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            Self::Oversized(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            Self::CrcMismatch { want, got } => {
                write!(
                    f,
                    "payload crc mismatch: header 0x{want:08x}, body 0x{got:08x}"
                )
            }
            Self::BadPayload(detail) => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// One decoded frame: a known kind byte plus its checksum-verified
/// payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind (see [`kind`]).
    pub kind: u8,
    /// Raw payload (JSON of the kind's DTO).
    pub payload: Vec<u8>,
}

/// Encode one frame.
///
/// # Errors
///
/// [`ProtocolError::Oversized`] when the payload exceeds [`MAX_PAYLOAD`],
/// [`ProtocolError::UnknownKind`] for a kind this version does not define.
pub fn encode_frame(kind_byte: u8, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    if !kind::is_known(kind_byte) {
        return Err(ProtocolError::UnknownKind(kind_byte));
    }
    let len = u32::try_from(payload.len()).map_err(|_| ProtocolError::Oversized(u32::MAX))?;
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized(len));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind_byte);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Read `N` bytes at `at` as a fixed array, if present.
fn fixed<const N: usize>(buf: &[u8], at: usize) -> Option<[u8; N]> {
    buf.get(at..at.checked_add(N)?)?.try_into().ok()
}

/// Incremental frame decoder: feed bytes as they arrive, pull frames as
/// they complete. A returned error poisons nothing — but the server
/// closes the connection on any protocol error, because frame
/// boundaries are unrecoverable once a header is bad.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (complete frames not yet pulled plus any
    /// partial tail).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The next complete frame, `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Any structural violation of the protocol, typed. The offending
    /// bytes stay in the buffer; callers should drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtocolError> {
        let Some(magic) = fixed::<2>(&self.buf, 0).map(u16::from_le_bytes) else {
            return Ok(None);
        };
        if magic != MAGIC {
            return Err(ProtocolError::BadMagic(magic));
        }
        let Some([version, kind_byte]) = fixed::<2>(&self.buf, 2) else {
            return Ok(None);
        };
        if version != VERSION {
            return Err(ProtocolError::BadVersion(version));
        }
        if !kind::is_known(kind_byte) {
            return Err(ProtocolError::UnknownKind(kind_byte));
        }
        let Some(len) = fixed::<4>(&self.buf, 4).map(u32::from_le_bytes) else {
            return Ok(None);
        };
        if len > MAX_PAYLOAD {
            return Err(ProtocolError::Oversized(len));
        }
        let Some(want_crc) = fixed::<4>(&self.buf, 8).map(u32::from_le_bytes) else {
            return Ok(None);
        };
        let total = HEADER_LEN + len as usize;
        let Some(payload) = self.buf.get(HEADER_LEN..total) else {
            return Ok(None);
        };
        let got_crc = crc32(payload);
        if got_crc != want_crc {
            return Err(ProtocolError::CrcMismatch {
                want: want_crc,
                got: got_crc,
            });
        }
        let payload = payload.to_vec();
        self.buf.drain(..total);
        Ok(Some(Frame {
            kind: kind_byte,
            payload,
        }))
    }
}

// ---------------------------------------------------------------------
// Request DTOs. Every request carries a client-chosen correlation `id`
// (echoed in the reply) and a `deadline_ms` budget measured from the
// moment the daemon receives the frame (0 = use the server default).
// ---------------------------------------------------------------------

/// Place one VM of the named catalog type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaceReq {
    /// Correlation id, echoed in the reply.
    pub id: u64,
    /// Deadline budget in milliseconds (0 = server default).
    pub deadline_ms: u64,
    /// Catalog VM type name, e.g. `"m3.large"`.
    pub vm_type: String,
}

/// Evict (remove) a resident VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictReq {
    /// Correlation id.
    pub id: u64,
    /// Deadline budget in milliseconds (0 = server default).
    pub deadline_ms: u64,
    /// The VM to evict.
    pub vm: u64,
}

/// Migrate a resident VM to a placer-chosen destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrateReq {
    /// Correlation id.
    pub id: u64,
    /// Deadline budget in milliseconds (0 = server default).
    pub deadline_ms: u64,
    /// The VM to migrate.
    pub vm: u64,
}

/// Read statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsReq {
    /// Correlation id.
    pub id: u64,
    /// Deadline budget in milliseconds (0 = server default).
    pub deadline_ms: u64,
}

/// Force a compaction now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotReq {
    /// Correlation id.
    pub id: u64,
    /// Deadline budget in milliseconds (0 = server default).
    pub deadline_ms: u64,
}

/// Ask the daemon to drain and exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainReq {
    /// Correlation id.
    pub id: u64,
    /// Deadline budget in milliseconds (0 = server default).
    pub deadline_ms: u64,
}

/// A parsed request (plain enum; the wire discriminant is the kind byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// See [`PlaceReq`].
    Place(PlaceReq),
    /// See [`EvictReq`].
    Evict(EvictReq),
    /// See [`MigrateReq`].
    Migrate(MigrateReq),
    /// See [`StatsReq`].
    Stats(StatsReq),
    /// See [`SnapshotReq`].
    Snapshot(SnapshotReq),
    /// See [`DrainReq`].
    Drain(DrainReq),
}

fn payload<T: Serialize>(value: &T) -> Result<Vec<u8>, ProtocolError> {
    serde_json::to_vec(value).map_err(|e| ProtocolError::BadPayload(e.to_string()))
}

fn parse<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, ProtocolError> {
    serde_json::from_slice(bytes).map_err(|e| ProtocolError::BadPayload(e.to_string()))
}

impl Request {
    /// The correlation id the reply must echo.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Self::Place(r) => r.id,
            Self::Evict(r) => r.id,
            Self::Migrate(r) => r.id,
            Self::Stats(r) => r.id,
            Self::Snapshot(r) => r.id,
            Self::Drain(r) => r.id,
        }
    }

    /// The request's deadline budget (0 = server default).
    #[must_use]
    pub fn deadline_ms(&self) -> u64 {
        match self {
            Self::Place(r) => r.deadline_ms,
            Self::Evict(r) => r.deadline_ms,
            Self::Migrate(r) => r.deadline_ms,
            Self::Stats(r) => r.deadline_ms,
            Self::Snapshot(r) => r.deadline_ms,
            Self::Drain(r) => r.deadline_ms,
        }
    }

    /// Encode to one wire frame.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] from encoding (oversized payloads).
    pub fn encode(&self) -> Result<Vec<u8>, ProtocolError> {
        let (k, body) = match self {
            Self::Place(r) => (kind::PLACE, payload(r)?),
            Self::Evict(r) => (kind::EVICT, payload(r)?),
            Self::Migrate(r) => (kind::MIGRATE, payload(r)?),
            Self::Stats(r) => (kind::STATS, payload(r)?),
            Self::Snapshot(r) => (kind::SNAPSHOT, payload(r)?),
            Self::Drain(r) => (kind::DRAIN, payload(r)?),
        };
        encode_frame(k, &body)
    }

    /// Decode from one frame.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownKind`] for response kinds,
    /// [`ProtocolError::BadPayload`] for JSON that does not match the DTO.
    pub fn decode(frame: &Frame) -> Result<Self, ProtocolError> {
        match frame.kind {
            kind::PLACE => Ok(Self::Place(parse(&frame.payload)?)),
            kind::EVICT => Ok(Self::Evict(parse(&frame.payload)?)),
            kind::MIGRATE => Ok(Self::Migrate(parse(&frame.payload)?)),
            kind::STATS => Ok(Self::Stats(parse(&frame.payload)?)),
            kind::SNAPSHOT => Ok(Self::Snapshot(parse(&frame.payload)?)),
            kind::DRAIN => Ok(Self::Drain(parse(&frame.payload)?)),
            other => Err(ProtocolError::UnknownKind(other)),
        }
    }
}

// ---------------------------------------------------------------------
// Response DTOs.
// ---------------------------------------------------------------------

/// Typed failure codes carried by [`ErrorResp`]. A unit enum — the
/// vendored serde derive round-trips those — so clients match on the
/// code, not on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// No PM can host the requested VM type right now.
    NoCapacity,
    /// The named VM id is not resident.
    UnknownVm,
    /// The named VM type is not in the daemon's catalog.
    UnknownVmType,
    /// The request was structurally valid but semantically impossible.
    InvalidRequest,
    /// The journal append failed; the operation was NOT applied.
    Journal,
    /// The daemon is draining and accepts no more mutations.
    Draining,
    /// The peer's bytes violated the wire protocol (the connection is
    /// closed after this reply; its correlation id is 0).
    Protocol,
}

/// Successful placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedResp {
    /// Echoed correlation id.
    pub id: u64,
    /// The new VM's id.
    pub vm: u64,
    /// The PM hosting it.
    pub pm: usize,
}

/// Successful eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedResp {
    /// Echoed correlation id.
    pub id: u64,
    /// The evicted VM.
    pub vm: u64,
    /// The PM it left.
    pub pm: usize,
}

/// Successful migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigratedResp {
    /// Echoed correlation id.
    pub id: u64,
    /// The migrated VM.
    pub vm: u64,
    /// Source PM.
    pub from: usize,
    /// Destination PM.
    pub to: usize,
}

/// The recoverable (journal-backed) half of the statistics reply. After
/// a kill and restart this struct must compare equal field-for-field —
/// the CI smoke job asserts exactly that.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateStats {
    /// Resident VM count.
    pub vms: usize,
    /// PMs currently hosting at least one VM.
    pub active_pms: usize,
    /// PMs that ever hosted a VM.
    pub ever_used_pms: usize,
    /// The id the next placement will allocate.
    pub next_vm_id: u64,
    /// FNV-1a digest (hex) over the sorted placement map + allocator
    /// watermark: byte-identical state ⇔ equal digests.
    pub digest: String,
}

/// Process-local counters (reset on restart; excluded from the recovery
/// comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ProcessStats {
    /// Requests admitted to the worker.
    pub requests: u64,
    /// Successful placements this process lifetime.
    pub placed: u64,
    /// Successful evictions this process lifetime.
    pub evicted: u64,
    /// Successful migrations this process lifetime.
    pub migrated: u64,
    /// Typed error replies this process lifetime.
    pub errors: u64,
    /// Records appended to the journal this process lifetime.
    pub journal_appends: u64,
    /// Compactions performed this process lifetime.
    pub compactions: u64,
    /// Requests shed by the bounded admission queue.
    pub shed: u64,
    /// Requests that missed their deadline before the worker reached
    /// them.
    pub timeouts: u64,
    /// Snapshot version currently on disk.
    pub snapshot_version: u64,
    /// Valid records in the journal right now.
    pub journal_records: u64,
}

/// Statistics reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsResp {
    /// Echoed correlation id.
    pub id: u64,
    /// Journal-backed state (identical across kill/restart).
    pub state: StateStats,
    /// Process-lifetime counters (reset on restart).
    pub process: ProcessStats,
}

/// Compaction done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotResp {
    /// Echoed correlation id.
    pub id: u64,
    /// Snapshot version now on disk.
    pub version: u64,
}

/// Drain acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainResp {
    /// Echoed correlation id.
    pub id: u64,
}

/// Load shed: the admission queue was full when this request arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedResp {
    /// Echoed correlation id.
    pub id: u64,
    /// Queue depth observed at rejection.
    pub queue_depth: usize,
    /// Deterministic capped-doubling backoff guidance: wait at least
    /// this long before retrying.
    pub retry_after_ms: u64,
}

/// Deadline exceeded before the worker reached the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeoutResp {
    /// Echoed correlation id.
    pub id: u64,
    /// The deadline that expired, in milliseconds.
    pub deadline_ms: u64,
}

/// Typed request failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResp {
    /// Echoed correlation id.
    pub id: u64,
    /// Machine-matchable failure code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
    /// Backoff guidance for retryable codes; 0 = do not retry.
    pub retry_after_ms: u64,
}

/// A parsed response (plain enum; the wire discriminant is the kind
/// byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// See [`PlacedResp`].
    Placed(PlacedResp),
    /// See [`EvictedResp`].
    Evicted(EvictedResp),
    /// See [`MigratedResp`].
    Migrated(MigratedResp),
    /// See [`StatsResp`].
    Stats(StatsResp),
    /// See [`SnapshotResp`].
    Snapshotted(SnapshotResp),
    /// See [`DrainResp`].
    Draining(DrainResp),
    /// See [`ShedResp`].
    Shed(ShedResp),
    /// See [`TimeoutResp`].
    Timeout(TimeoutResp),
    /// See [`ErrorResp`].
    Error(ErrorResp),
}

impl Response {
    /// The correlation id this reply echoes.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Self::Placed(r) => r.id,
            Self::Evicted(r) => r.id,
            Self::Migrated(r) => r.id,
            Self::Stats(r) => r.id,
            Self::Snapshotted(r) => r.id,
            Self::Draining(r) => r.id,
            Self::Shed(r) => r.id,
            Self::Timeout(r) => r.id,
            Self::Error(r) => r.id,
        }
    }

    /// Encode to one wire frame.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] from encoding (oversized payloads).
    pub fn encode(&self) -> Result<Vec<u8>, ProtocolError> {
        let (k, body) = match self {
            Self::Placed(r) => (kind::PLACED, payload(r)?),
            Self::Evicted(r) => (kind::EVICTED, payload(r)?),
            Self::Migrated(r) => (kind::MIGRATED, payload(r)?),
            Self::Stats(r) => (kind::STATS_REPLY, payload(r)?),
            Self::Snapshotted(r) => (kind::SNAPSHOTTED, payload(r)?),
            Self::Draining(r) => (kind::DRAINING, payload(r)?),
            Self::Shed(r) => (kind::SHED, payload(r)?),
            Self::Timeout(r) => (kind::TIMEOUT, payload(r)?),
            Self::Error(r) => (kind::ERROR, payload(r)?),
        };
        encode_frame(k, &body)
    }

    /// Decode from one frame.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownKind`] for request kinds,
    /// [`ProtocolError::BadPayload`] for JSON that does not match the DTO.
    pub fn decode(frame: &Frame) -> Result<Self, ProtocolError> {
        match frame.kind {
            kind::PLACED => Ok(Self::Placed(parse(&frame.payload)?)),
            kind::EVICTED => Ok(Self::Evicted(parse(&frame.payload)?)),
            kind::MIGRATED => Ok(Self::Migrated(parse(&frame.payload)?)),
            kind::STATS_REPLY => Ok(Self::Stats(parse(&frame.payload)?)),
            kind::SNAPSHOTTED => Ok(Self::Snapshotted(parse(&frame.payload)?)),
            kind::DRAINING => Ok(Self::Draining(parse(&frame.payload)?)),
            kind::SHED => Ok(Self::Shed(parse(&frame.payload)?)),
            kind::TIMEOUT => Ok(Self::Timeout(parse(&frame.payload)?)),
            kind::ERROR => Ok(Self::Error(parse(&frame.payload)?)),
            other => Err(ProtocolError::UnknownKind(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(id: u64) -> Request {
        Request::Place(PlaceReq {
            id,
            deadline_ms: 500,
            vm_type: "m3.large".to_string(),
        })
    }

    #[test]
    fn request_roundtrips() {
        let reqs = vec![
            place(1),
            Request::Evict(EvictReq {
                id: 2,
                deadline_ms: 0,
                vm: 9,
            }),
            Request::Migrate(MigrateReq {
                id: 3,
                deadline_ms: 10,
                vm: 9,
            }),
            Request::Stats(StatsReq {
                id: 4,
                deadline_ms: 0,
            }),
            Request::Snapshot(SnapshotReq {
                id: 5,
                deadline_ms: 0,
            }),
            Request::Drain(DrainReq {
                id: 6,
                deadline_ms: 0,
            }),
        ];
        let mut decoder = FrameDecoder::new();
        for req in &reqs {
            decoder.feed(&req.encode().expect("encode"));
        }
        for req in &reqs {
            let frame = decoder.next_frame().expect("valid").expect("complete");
            let back = Request::decode(&frame).expect("decode");
            assert_eq!(&back, req);
        }
        assert!(decoder.next_frame().expect("empty is fine").is_none());
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn response_roundtrips() {
        let resps = vec![
            Response::Placed(PlacedResp {
                id: 1,
                vm: 3,
                pm: 0,
            }),
            Response::Shed(ShedResp {
                id: 2,
                queue_depth: 64,
                retry_after_ms: 100,
            }),
            Response::Timeout(TimeoutResp {
                id: 3,
                deadline_ms: 250,
            }),
            Response::Error(ErrorResp {
                id: 4,
                code: ErrorCode::NoCapacity,
                detail: "cluster full".to_string(),
                retry_after_ms: 0,
            }),
        ];
        for resp in &resps {
            let mut d = FrameDecoder::new();
            d.feed(&resp.encode().expect("encode"));
            let frame = d.next_frame().expect("valid").expect("complete");
            assert_eq!(&Response::decode(&frame).expect("decode"), resp);
        }
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let bytes = place(7).encode().expect("encode");
        let mut d = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            if i + 1 < bytes.len() {
                d.feed(&[*b]);
                assert_eq!(d.next_frame().expect("no error"), None, "byte {i}");
            }
        }
        d.feed(&bytes[bytes.len() - 1..]);
        assert!(d.next_frame().expect("valid").is_some());
    }

    #[test]
    fn decoder_consumes_exactly_one_frame() {
        let a = place(1).encode().expect("encode");
        let b = place(2).encode().expect("encode");
        let mut d = FrameDecoder::new();
        d.feed(&a);
        d.feed(&b);
        d.feed(&[0xFF, 0xFF]); // garbage tail
        let f1 = d.next_frame().expect("valid").expect("frame 1");
        assert_eq!(Request::decode(&f1).expect("decode").id(), 1);
        let f2 = d.next_frame().expect("valid").expect("frame 2");
        assert_eq!(Request::decode(&f2).expect("decode").id(), 2);
        // Only now does the garbage surface — as a typed error.
        assert_eq!(d.next_frame(), Err(ProtocolError::BadMagic(0xFFFF)));
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let good = place(1).encode().expect("encode");

        // Bad magic.
        let mut bad = good.clone();
        bad[0] = 0x00;
        let mut d = FrameDecoder::new();
        d.feed(&bad);
        assert!(matches!(d.next_frame(), Err(ProtocolError::BadMagic(_))));

        // Bad version.
        let mut bad = good.clone();
        bad[2] = 99;
        let mut d = FrameDecoder::new();
        d.feed(&bad);
        assert_eq!(d.next_frame(), Err(ProtocolError::BadVersion(99)));

        // Unknown kind.
        let mut bad = good.clone();
        bad[3] = 200;
        let mut d = FrameDecoder::new();
        d.feed(&bad);
        assert_eq!(d.next_frame(), Err(ProtocolError::UnknownKind(200)));

        // Oversized length prefix: rejected from the header, before any
        // payload is buffered.
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut d = FrameDecoder::new();
        d.feed(&bad[..HEADER_LEN]);
        assert_eq!(
            d.next_frame(),
            Err(ProtocolError::Oversized(MAX_PAYLOAD + 1))
        );

        // Flipped payload bit → CRC mismatch.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x10;
        let mut d = FrameDecoder::new();
        d.feed(&bad);
        assert!(matches!(
            d.next_frame(),
            Err(ProtocolError::CrcMismatch { .. })
        ));

        // Valid frame, wrong JSON shape → BadPayload at decode.
        let frame_bytes = encode_frame(kind::PLACE, b"{\"nope\": true}").expect("encode");
        let mut d = FrameDecoder::new();
        d.feed(&frame_bytes);
        let frame = d.next_frame().expect("structurally fine").expect("frame");
        assert!(matches!(
            Request::decode(&frame),
            Err(ProtocolError::BadPayload(_))
        ));
    }

    #[test]
    fn request_decode_rejects_response_kinds_and_vice_versa() {
        let req_frame = Frame {
            kind: kind::PLACED,
            payload: b"{}".to_vec(),
        };
        assert!(matches!(
            Request::decode(&req_frame),
            Err(ProtocolError::UnknownKind(_))
        ));
        let resp_frame = Frame {
            kind: kind::PLACE,
            payload: b"{}".to_vec(),
        };
        assert!(matches!(
            Response::decode(&resp_frame),
            Err(ProtocolError::UnknownKind(_))
        ));
    }
}
