//! The daemon's in-memory state machine: a live [`Cluster`] + shared
//! [`ScoreBook`], with the WAL discipline split into two halves:
//!
//! - [`ServeState::prepare_place`] / [`ServeState::prepare_evict`] /
//!   [`ServeState::prepare_migrate`] *decide* — they validate the
//!   request, run the placer, and produce the journal [`Op`] plus the
//!   success reply, without mutating anything.
//! - [`ServeState::commit`] *applies* an op to the cluster. The server
//!   calls it only after the journal append has durably synced; recovery
//!   calls it for every replayed op. Both paths run the identical code,
//!   which is what makes replay byte-exact.
//!
//! Ops record the placement *decision* (VM id, PM, assignment), not the
//! request, so replay never re-runs the placer — recovered state cannot
//! drift even across placer changes.

use crate::journal::{Op, OpKind, Placement, Snapshot};
use crate::wire::{
    ErrorCode, ErrorResp, EvictReq, EvictedResp, MigrateReq, MigratedResp, PlaceReq, PlacedResp,
    StateStats,
};
use pagerankvm::{GraphError, GraphLimits, PageRankConfig, PageRankVmPlacer, ScoreBook};
use prvm_model::{
    catalog, Cluster, ModelError, PlacementAlgorithm, PmId, PmSpec, Quantizer, VmId, VmSpec,
};
use std::fmt;
use std::sync::Arc;

/// The catalog a daemon instance serves: the PM/VM type universe (which
/// fixes the score book) plus the cluster size.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogSpec {
    /// Distinct PM types (the score book is built per type).
    pub pm_types: Vec<PmSpec>,
    /// VM types clients may request by name.
    pub vm_types: Vec<VmSpec>,
    /// Number of PMs; the cluster cycles through `pm_types`.
    pub pms: usize,
    /// Profile-space resolution the score book is built at. Part of the
    /// catalog hash: scores at different resolutions are different books.
    pub quantizer: Quantizer,
}

impl CatalogSpec {
    /// The paper's EC2 catalog (Tables I/II) at a given cluster size.
    #[must_use]
    pub fn ec2(pms: usize) -> Self {
        Self {
            pm_types: catalog::ec2_pm_types(),
            vm_types: catalog::ec2_vm_types(),
            pms,
            quantizer: Quantizer::default(),
        }
    }

    /// The same catalog at a coarser profile resolution. Tests and the
    /// chaos harness use this: durability and recovery invariants do not
    /// depend on score resolution, and the coarse book builds orders of
    /// magnitude faster in debug builds.
    #[must_use]
    pub fn with_quantizer(mut self, quantizer: Quantizer) -> Self {
        self.quantizer = quantizer;
        self
    }

    /// FNV-1a hash of the full catalog (types + cluster size +
    /// quantizer). Snapshots are keyed by this: state is only meaningful
    /// against its catalog.
    #[must_use]
    pub fn hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(&serde_json::to_vec(&self.pm_types).unwrap_or_default());
        h.write(&serde_json::to_vec(&self.vm_types).unwrap_or_default());
        h.write_u64(self.pms as u64);
        h.write_u64(self.quantizer.core_slots);
        h.write_u64(self.quantizer.mem_levels);
        h.write_u64(self.quantizer.disk_levels);
        h.finish()
    }

    fn build_cluster(&self) -> Cluster {
        let specs = (0..self.pms).filter_map(|i| {
            if self.pm_types.is_empty() {
                None
            } else {
                self.pm_types.get(i % self.pm_types.len()).cloned()
            }
        });
        Cluster::from_specs(specs)
    }
}

/// FNV-1a, 64-bit: the digest primitive for state comparison. Not
/// cryptographic — it detects drift, not adversaries.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Recovery / commit failures.
#[derive(Debug)]
pub enum StateError {
    /// The score book could not be built for this catalog.
    Graph(GraphError),
    /// The snapshot was cut under a different catalog.
    CatalogMismatch {
        /// Running catalog hash.
        want: u64,
        /// Snapshot's catalog hash.
        got: u64,
    },
    /// Applying an op failed — on the replay path this means the journal
    /// and the cluster model disagree (corrupt or cross-version store).
    Model(ModelError),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Graph(e) => write!(f, "score book build failed: {e}"),
            Self::CatalogMismatch { want, got } => write!(
                f,
                "snapshot catalog 0x{got:016x} does not match running catalog 0x{want:016x}"
            ),
            Self::Model(e) => write!(f, "state apply failed: {e}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<GraphError> for StateError {
    fn from(e: GraphError) -> Self {
        Self::Graph(e)
    }
}

impl From<ModelError> for StateError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

fn typed_err(id: u64, code: ErrorCode, detail: impl Into<String>) -> ErrorResp {
    ErrorResp {
        id,
        code,
        detail: detail.into(),
        retry_after_ms: 0,
    }
}

/// The daemon's live placement state.
pub struct ServeState {
    cluster: Cluster,
    book: Arc<ScoreBook>,
    placer: PageRankVmPlacer,
    vm_types: Vec<VmSpec>,
    catalog_hash: u64,
}

impl fmt::Debug for ServeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeState")
            .field("vms", &self.cluster.vm_count())
            .field("catalog_hash", &format_args!("{:#018x}", self.catalog_hash))
            .finish_non_exhaustive()
    }
}

impl ServeState {
    /// Build the score book for a catalog. The expensive step of
    /// construction, split out so repeated recoveries (the chaos
    /// harness's reboot loop, tests) can reuse one book: the book is a
    /// pure function of the catalog, never of the placement history.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the profile-graph build.
    pub fn build_book(catalog_spec: &CatalogSpec) -> Result<Arc<ScoreBook>, StateError> {
        Ok(Arc::new(ScoreBook::build(
            catalog_spec.quantizer,
            &catalog_spec.pm_types,
            &catalog_spec.vm_types,
            &PageRankConfig::default(),
            GraphLimits::default(),
        )?))
    }

    fn from_book(catalog_spec: &CatalogSpec, book: Arc<ScoreBook>) -> Self {
        Self {
            cluster: catalog_spec.build_cluster(),
            placer: PageRankVmPlacer::new(Arc::clone(&book)),
            book,
            vm_types: catalog_spec.vm_types.clone(),
            catalog_hash: catalog_spec.hash(),
        }
    }

    /// Build fresh state for a catalog (empty cluster, new score book).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the score-book build.
    pub fn new(catalog_spec: &CatalogSpec) -> Result<Self, StateError> {
        Ok(Self::from_book(
            catalog_spec,
            Self::build_book(catalog_spec)?,
        ))
    }

    /// Cold-start recovery: fresh state, then the snapshot's placements,
    /// then the journal's ops — in exactly the order they were applied
    /// live.
    ///
    /// # Errors
    ///
    /// [`StateError::CatalogMismatch`] for a foreign snapshot;
    /// [`StateError::Model`] when the store disagrees with the model.
    pub fn recover(
        catalog_spec: &CatalogSpec,
        snapshot: Option<&Snapshot>,
        ops: &[Op],
    ) -> Result<Self, StateError> {
        Self::recover_with_book(catalog_spec, Self::build_book(catalog_spec)?, snapshot, ops)
    }

    /// [`Self::recover`] with a prebuilt score book (the book depends
    /// only on the catalog, so a caller rebooting repeatedly — chaos
    /// harness, tests — can build it once).
    ///
    /// # Errors
    ///
    /// Same as [`Self::recover`].
    pub fn recover_with_book(
        catalog_spec: &CatalogSpec,
        book: Arc<ScoreBook>,
        snapshot: Option<&Snapshot>,
        ops: &[Op],
    ) -> Result<Self, StateError> {
        let mut state = Self::from_book(catalog_spec, book);
        if let Some(snap) = snapshot {
            if snap.catalog_hash != state.catalog_hash {
                return Err(StateError::CatalogMismatch {
                    want: state.catalog_hash,
                    got: snap.catalog_hash,
                });
            }
            for p in &snap.placements {
                state.cluster.place_as(
                    VmId(p.vm),
                    PmId(p.pm),
                    p.spec.clone(),
                    prvm_model::Assignment::new(p.cores.clone(), p.disks.clone()),
                )?;
            }
            state.cluster.reserve_vm_ids(snap.next_vm_id);
        }
        for op in ops {
            state.commit(op)?;
        }
        Ok(state)
    }

    /// The running catalog's hash (snapshots are keyed by it).
    #[must_use]
    pub fn catalog_hash(&self) -> u64 {
        self.catalog_hash
    }

    /// The live cluster (read-only).
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The shared score book.
    #[must_use]
    pub fn book(&self) -> &Arc<ScoreBook> {
        &self.book
    }

    fn vm_spec(&self, name: &str) -> Option<&VmSpec> {
        self.vm_types.iter().find(|t| t.name == name)
    }

    /// Decide a placement. No mutation — returns the journal op and the
    /// reply to send once the op is durable.
    ///
    /// # Errors
    ///
    /// A typed [`ErrorResp`] ready to send: unknown VM type, or no
    /// feasible PM.
    pub fn prepare_place(&mut self, req: &PlaceReq) -> Result<(Op, PlacedResp), ErrorResp> {
        let Some(spec) = self.vm_spec(&req.vm_type).cloned() else {
            return Err(typed_err(
                req.id,
                ErrorCode::UnknownVmType,
                format!("no VM type named {:?} in the catalog", req.vm_type),
            ));
        };
        let Some(decision) = self.placer.choose(&self.cluster, &spec, &|_| false) else {
            return Err(typed_err(
                req.id,
                ErrorCode::NoCapacity,
                format!("no PM can host a {}", spec.name),
            ));
        };
        let vm = self.cluster.next_vm_id();
        let op = Op::place(vm, decision.pm.0, spec, &decision.assignment);
        let reply = PlacedResp {
            id: req.id,
            vm,
            pm: decision.pm.0,
        };
        Ok((op, reply))
    }

    /// Decide an eviction (explicit VM id).
    ///
    /// # Errors
    ///
    /// A typed [`ErrorResp`] when the VM is not resident.
    pub fn prepare_evict(&self, req: &EvictReq) -> Result<(Op, EvictedResp), ErrorResp> {
        let Some(pm) = self.cluster.locate(VmId(req.vm)) else {
            return Err(typed_err(
                req.id,
                ErrorCode::UnknownVm,
                format!("VM {} is not resident", req.vm),
            ));
        };
        let op = Op::remove(req.vm, pm.0);
        let reply = EvictedResp {
            id: req.id,
            vm: req.vm,
            pm: pm.0,
        };
        Ok((op, reply))
    }

    /// Decide a migration: the placer picks a destination excluding the
    /// VM's current host.
    ///
    /// # Errors
    ///
    /// A typed [`ErrorResp`]: unknown VM, or no other PM can host it.
    pub fn prepare_migrate(&mut self, req: &MigrateReq) -> Result<(Op, MigratedResp), ErrorResp> {
        let Some(from) = self.cluster.locate(VmId(req.vm)) else {
            return Err(typed_err(
                req.id,
                ErrorCode::UnknownVm,
                format!("VM {} is not resident", req.vm),
            ));
        };
        let Some((spec, _)) = self.cluster.pm(from).vm(VmId(req.vm)) else {
            return Err(typed_err(
                req.id,
                ErrorCode::InvalidRequest,
                format!("VM {} location is inconsistent", req.vm),
            ));
        };
        let spec = spec.clone();
        let Some(decision) = self.placer.choose(&self.cluster, &spec, &|pm| pm == from) else {
            return Err(typed_err(
                req.id,
                ErrorCode::NoCapacity,
                format!("no other PM can host VM {} ({})", req.vm, spec.name),
            ));
        };
        let op = Op::migrate(req.vm, decision.pm.0, &decision.assignment);
        let reply = MigratedResp {
            id: req.id,
            vm: req.vm,
            from: from.0,
            to: decision.pm.0,
        };
        Ok((op, reply))
    }

    /// Apply one durably journaled op to the cluster. Identical for the
    /// live path and replay.
    ///
    /// # Errors
    ///
    /// [`StateError::Model`] when the op cannot apply — impossible on
    /// the live path (prepare validated against the same state), and a
    /// corrupt-store signal on the replay path.
    pub fn commit(&mut self, op: &Op) -> Result<(), StateError> {
        match op.kind {
            OpKind::Place => {
                let spec = op.spec.clone().ok_or_else(|| {
                    StateError::Model(ModelError::InvalidAssignment {
                        reason: "place op without a VM spec".to_string(),
                    })
                })?;
                self.cluster
                    .place_as(VmId(op.vm), PmId(op.pm), spec, op.assignment())?;
            }
            OpKind::Remove => {
                self.cluster.remove(VmId(op.vm))?;
            }
            OpKind::Migrate => {
                self.cluster
                    .migrate(VmId(op.vm), PmId(op.pm), op.assignment())?;
            }
        }
        Ok(())
    }

    /// Cut a snapshot of the current state at `version`.
    #[must_use]
    pub fn snapshot(&self, version: u64) -> Snapshot {
        let mut vms: Vec<VmId> = self.cluster.vm_ids().collect();
        vms.sort_unstable();
        let placements = vms
            .into_iter()
            .filter_map(|vm| {
                let pm = self.cluster.locate(vm)?;
                let (spec, assignment) = self.cluster.pm(pm).vm(vm)?;
                Some(Placement {
                    vm: vm.0,
                    pm: pm.0,
                    spec: spec.clone(),
                    cores: assignment.cores.clone(),
                    disks: assignment.disks.clone(),
                })
            })
            .collect();
        Snapshot {
            version,
            catalog_hash: self.catalog_hash,
            next_vm_id: self.cluster.next_vm_id(),
            placements,
        }
    }

    /// FNV-1a digest of the full recoverable state: allocator watermark
    /// plus every placement (id, host, spec, assignment) in sorted
    /// order. Two states with equal digests host the same VMs on the
    /// same PMs under the same assignments.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.cluster.next_vm_id());
        let mut vms: Vec<VmId> = self.cluster.vm_ids().collect();
        vms.sort_unstable();
        for vm in vms {
            let Some(pm) = self.cluster.locate(vm) else {
                continue;
            };
            let Some((spec, assignment)) = self.cluster.pm(pm).vm(vm) else {
                continue;
            };
            h.write_u64(vm.0);
            h.write_u64(pm.0 as u64);
            h.write(&serde_json::to_vec(spec).unwrap_or_default());
            for &c in &assignment.cores {
                h.write_u64(c as u64);
            }
            h.write_u64(u64::MAX); // separator
            for &d in &assignment.disks {
                h.write_u64(d as u64);
            }
            h.write_u64(u64::MAX);
        }
        h.finish()
    }

    /// FNV-1a digest of the score book down to f64 bit patterns: proves
    /// a recovered daemon scores placements identically to the one that
    /// died.
    #[must_use]
    pub fn book_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for (spec, table) in self.book.tables() {
            h.write(spec.name.as_bytes());
            h.write_u64(table.len() as u64);
            for (_, score) in table.iter() {
                h.write_u64(score.to_bits());
            }
        }
        h.finish()
    }

    /// The recoverable half of a stats reply.
    #[must_use]
    pub fn state_stats(&self) -> StateStats {
        StateStats {
            vms: self.cluster.vm_count(),
            active_pms: self.cluster.active_pm_count(),
            ever_used_pms: self.cluster.ever_used_count(),
            next_vm_id: self.cluster.next_vm_id(),
            digest: format!("{:016x}", self.digest()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Coarse resolution: the recovery invariants under test are
    // resolution-independent, and the coarse book builds ~100x faster
    // in debug builds.
    fn coarse() -> Quantizer {
        Quantizer {
            core_slots: 2,
            mem_levels: 4,
            disk_levels: 2,
        }
    }

    fn small_catalog() -> CatalogSpec {
        CatalogSpec::ec2(6).with_quantizer(coarse())
    }

    fn place(
        state: &mut ServeState,
        vm_type: &str,
        id: u64,
    ) -> Result<(Op, PlacedResp), ErrorResp> {
        state.prepare_place(&PlaceReq {
            id,
            deadline_ms: 0,
            vm_type: vm_type.to_string(),
        })
    }

    #[test]
    fn place_prepare_does_not_mutate_until_commit() {
        let mut state = ServeState::new(&small_catalog()).expect("build");
        let before = state.digest();
        let (op, reply) = place(&mut state, "m3.large", 1).expect("feasible");
        assert_eq!(state.digest(), before, "prepare must not mutate");
        state.commit(&op).expect("commit");
        assert_ne!(state.digest(), before);
        assert_eq!(state.cluster().vm_count(), 1);
        assert_eq!(reply.vm, 0);
    }

    #[test]
    fn unknown_vm_type_is_typed() {
        let mut state = ServeState::new(&small_catalog()).expect("build");
        let err = place(&mut state, "z9.mega", 1).expect_err("unknown type");
        assert_eq!(err.code, ErrorCode::UnknownVmType);
        assert_eq!(err.id, 1);
    }

    #[test]
    fn evict_and_migrate_roundtrip() {
        let mut state = ServeState::new(&small_catalog()).expect("build");
        let (op, placed) = place(&mut state, "m3.large", 1).expect("place");
        state.commit(&op).expect("commit");

        let (mig_op, mig) = state
            .prepare_migrate(&MigrateReq {
                id: 2,
                deadline_ms: 0,
                vm: placed.vm,
            })
            .expect("migratable");
        assert_ne!(mig.from, mig.to, "destination excludes the source");
        state.commit(&mig_op).expect("commit migrate");

        let (ev_op, ev) = state
            .prepare_evict(&EvictReq {
                id: 3,
                deadline_ms: 0,
                vm: placed.vm,
            })
            .expect("evictable");
        assert_eq!(ev.pm, mig.to);
        state.commit(&ev_op).expect("commit evict");
        assert_eq!(state.cluster().vm_count(), 0);

        let err = state
            .prepare_evict(&EvictReq {
                id: 4,
                deadline_ms: 0,
                vm: placed.vm,
            })
            .expect_err("already gone");
        assert_eq!(err.code, ErrorCode::UnknownVm);
    }

    #[test]
    fn replay_reproduces_digest_and_book() {
        let catalog_spec = small_catalog();
        let mut live = ServeState::new(&catalog_spec).expect("build");
        let mut ops = Vec::new();
        for (i, ty) in ["m3.large", "m3.medium", "c3.large", "m3.xlarge"]
            .iter()
            .enumerate()
        {
            let (op, _) = place(&mut live, ty, i as u64).expect("place");
            live.commit(&op).expect("commit");
            ops.push(op);
        }
        let (ev, _) = live
            .prepare_evict(&EvictReq {
                id: 9,
                deadline_ms: 0,
                vm: 1,
            })
            .expect("evict");
        live.commit(&ev).expect("commit");
        ops.push(ev);

        let recovered = ServeState::recover(&catalog_spec, None, &ops).expect("recover");
        assert_eq!(recovered.digest(), live.digest(), "cluster bit-identical");
        assert_eq!(
            recovered.book_digest(),
            live.book_digest(),
            "book bit-identical"
        );
        assert_eq!(recovered.state_stats(), live.state_stats());
    }

    #[test]
    fn snapshot_plus_tail_equals_full_replay() {
        let catalog_spec = small_catalog();
        let mut live = ServeState::new(&catalog_spec).expect("build");
        let mut all_ops = Vec::new();
        for i in 0..6u64 {
            let (op, _) = place(&mut live, "m3.medium", i).expect("place");
            live.commit(&op).expect("commit");
            all_ops.push(op);
        }
        // Evict the highest id, then snapshot: the watermark must keep
        // id 5 retired even though no placement mentions it.
        let (ev, _) = live
            .prepare_evict(&EvictReq {
                id: 10,
                deadline_ms: 0,
                vm: 5,
            })
            .expect("evict");
        live.commit(&ev).expect("commit");
        let snap = live.snapshot(1);
        assert_eq!(snap.next_vm_id, 6, "watermark survives eviction");

        // Two more ops after the snapshot form the journal tail.
        let mut tail = Vec::new();
        for i in 20..22u64 {
            let (op, reply) = place(&mut live, "c3.large", i).expect("place");
            live.commit(&op).expect("commit");
            assert!(reply.vm >= 6, "no id reuse after recovery watermark");
            tail.push(op);
        }

        let recovered = ServeState::recover(&catalog_spec, Some(&snap), &tail).expect("recover");
        assert_eq!(recovered.digest(), live.digest());
        assert_eq!(recovered.state_stats(), live.state_stats());
    }

    #[test]
    fn foreign_snapshot_is_refused() {
        let catalog_spec = small_catalog();
        let live = ServeState::new(&catalog_spec).expect("build");
        let mut snap = live.snapshot(1);
        snap.catalog_hash ^= 0xFF;
        let err = ServeState::recover(&catalog_spec, Some(&snap), &[]).expect_err("foreign");
        assert!(matches!(err, StateError::CatalogMismatch { .. }), "{err}");
    }

    #[test]
    fn catalog_hash_is_sensitive_to_size_types_and_resolution() {
        let a = CatalogSpec::ec2(6).hash();
        let b = CatalogSpec::ec2(7).hash();
        assert_ne!(a, b, "cluster size is part of the key");
        let mut spec = CatalogSpec::ec2(6);
        spec.vm_types.pop();
        assert_ne!(spec.hash(), a, "vm types are part of the key");
        assert_eq!(CatalogSpec::ec2(6).hash(), a, "hash is deterministic");
        assert_ne!(
            CatalogSpec::ec2(6).with_quantizer(coarse()).hash(),
            a,
            "profile resolution is part of the key"
        );
    }
}
