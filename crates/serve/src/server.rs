//! The daemon: listener + per-connection readers + one state-owning
//! worker, glued by a bounded admission queue.
//!
//! **Threading model.** Readers parse frames and enqueue jobs; exactly
//! one worker owns the [`ServeState`] and the journal, so every
//! mutation is serialized without locks around placement logic. Replies
//! go back through a per-connection `Arc<Mutex<TcpStream>>`; frames are
//! written whole under the lock, so responses never interleave.
//!
//! **Backpressure.** The queue is bounded. When it is full the reader
//! replies immediately with a typed shed response carrying deterministic
//! capped-doubling backoff guidance ([`retry_backoff_ms`]) — a function
//! of the consecutive-shed streak, not of any clock or RNG — and keeps
//! the connection open. Nothing is ever silently dropped.
//!
//! **Deadlines.** Every request carries a deadline budget measured from
//! arrival. If the worker dequeues it too late, the client gets a typed
//! timeout reply instead of a stale mutation.
//!
//! **WAL discipline.** append → sync → apply → reply. A journal append
//! failure produces a typed error reply and the op is NOT applied, so
//! memory never runs ahead of disk.
//!
//! **Drain.** On SIGTERM (see [`ServerHandle::drain_on_signals`]), a
//! `drain` request, or [`ServerHandle::shutdown`]: stop accepting
//! connections, stop reading new requests, answer everything already
//! admitted, cut a final snapshot, and exit.

use crate::journal::{Journal, Replay, Store};
use crate::state::{CatalogSpec, ServeState, StateError};
use crate::wire::{
    DrainResp, ErrorCode, ErrorResp, FrameDecoder, ProcessStats, ProtocolError, Request, Response,
    ShedResp, SnapshotResp, StatsResp, TimeoutResp,
};
use prvm_obs::{counter, gauge, histogram};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tunables for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission queue capacity; requests beyond it are shed (typed).
    pub queue_capacity: usize,
    /// Deadline applied when a request carries `deadline_ms == 0`.
    pub default_deadline_ms: u64,
    /// Journal records between automatic compactions.
    pub compact_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            default_deadline_ms: 1_000,
            compact_every: 256,
        }
    }
}

/// Deterministic capped-doubling backoff guidance for the `streak`-th
/// consecutive shed (1-based): 50 ms, 100 ms, … capped at 3200 ms.
/// A pure function — same congestion, same guidance, every run.
#[must_use]
pub fn retry_backoff_ms(streak: u64) -> u64 {
    let exp = streak.saturating_sub(1).min(6);
    50u64 << exp
}

/// Daemon start-up failures.
#[derive(Debug)]
pub enum ServeError {
    /// Socket / filesystem failure.
    Io(io::Error),
    /// Journal or snapshot failure.
    Journal(crate::journal::JournalError),
    /// State recovery failure (catalog mismatch, corrupt store).
    State(StateError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "serve I/O: {e}"),
            Self::Journal(e) => write!(f, "{e}"),
            Self::State(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<crate::journal::JournalError> for ServeError {
    fn from(e: crate::journal::JournalError) -> Self {
        Self::Journal(e)
    }
}

impl From<StateError> for ServeError {
    fn from(e: StateError) -> Self {
        Self::State(e)
    }
}

/// One admitted request awaiting the worker.
struct Job {
    req: Request,
    received: Instant,
    out: Arc<Mutex<TcpStream>>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shed_streak: u64,
}

/// State shared by listener, readers, and worker.
struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    /// Set when drain starts: listener stops accepting, readers stop
    /// reading, worker exits once the queue is empty.
    draining: AtomicBool,
    queue_capacity: usize,
    shed_total: AtomicU64,
    timeout_total: AtomicU64,
}

impl Shared {
    /// Admit a request or shed it. Returns the shed reply to send when
    /// the queue was full or the daemon is draining.
    fn admit(&self, job: Job) -> Option<Response> {
        if self.draining.load(Ordering::SeqCst) {
            return Some(Response::Error(ErrorResp {
                id: job.req.id(),
                code: ErrorCode::Draining,
                detail: "daemon is draining".to_string(),
                retry_after_ms: 0,
            }));
        }
        let mut q = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if q.jobs.len() >= self.queue_capacity {
            q.shed_streak += 1;
            let reply = Response::Shed(ShedResp {
                id: job.req.id(),
                queue_depth: q.jobs.len(),
                retry_after_ms: retry_backoff_ms(q.shed_streak),
            });
            drop(q);
            self.shed_total.fetch_add(1, Ordering::Relaxed);
            counter!("serve.shed");
            return Some(reply);
        }
        q.shed_streak = 0;
        q.jobs.push_back(job);
        gauge!("serve.queue_depth", q.jobs.len() as f64);
        drop(q);
        self.cv.notify_one();
        None
    }
}

/// Write one response frame to a connection. Failures are counted, not
/// fatal: the peer may have hung up, which is its right.
fn send(out: &Arc<Mutex<TcpStream>>, resp: &Response) {
    let Ok(bytes) = resp.encode() else {
        counter!("serve.reply_encode_failures");
        return;
    };
    let mut stream = out
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .is_err()
    {
        counter!("serve.reply_write_failures");
    }
}

/// The worker: sole owner of state + journal.
struct Worker {
    state: ServeState,
    journal: Journal<std::fs::File>,
    store: Store,
    config: ServerConfig,
    shared: Arc<Shared>,
    stats: ProcessStats,
    snapshot_version: u64,
}

impl Worker {
    fn run(mut self) -> ProcessStats {
        loop {
            let job = {
                let mut q = self
                    .shared
                    .queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        gauge!("serve.queue_depth", q.jobs.len() as f64);
                        break Some(job);
                    }
                    if self.shared.draining.load(Ordering::SeqCst) {
                        break None;
                    }
                    let (guard, _) = self
                        .shared
                        .cv
                        .wait_timeout(q, Duration::from_millis(50))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    q = guard;
                }
            };
            let Some(job) = job else {
                // Draining and the queue is empty: final compaction, out.
                self.compact();
                break;
            };
            self.process(job);
        }
        self.stats.journal_records = self.journal.records();
        self.stats
    }

    fn process(&mut self, job: Job) {
        self.stats.requests += 1;
        counter!("serve.requests");
        let deadline_ms = match job.req.deadline_ms() {
            0 => self.config.default_deadline_ms,
            d => d,
        };
        let waited = job.received.elapsed();
        if waited > Duration::from_millis(deadline_ms) {
            self.shared.timeout_total.fetch_add(1, Ordering::Relaxed);
            self.stats.timeouts += 1;
            counter!("serve.timeouts");
            send(
                &job.out,
                &Response::Timeout(TimeoutResp {
                    id: job.req.id(),
                    deadline_ms,
                }),
            );
            return;
        }
        let started = Instant::now();
        let reply = self.dispatch(&job.req);
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        histogram!("serve.request_latency_us", micros);
        if matches!(reply, Response::Error(_)) {
            self.stats.errors += 1;
            counter!("serve.errors");
        }
        gauge!("serve.vms_resident", self.state.cluster().vm_count() as f64);
        send(&job.out, &reply);
    }

    fn dispatch(&mut self, req: &Request) -> Response {
        match req {
            Request::Place(r) => match self.state.prepare_place(r) {
                Ok((op, reply)) => match self.apply(&op) {
                    Ok(()) => {
                        self.stats.placed += 1;
                        counter!("serve.placed");
                        Response::Placed(reply)
                    }
                    Err(resp) => resp_with_id(resp, r.id),
                },
                Err(e) => Response::Error(e),
            },
            Request::Evict(r) => match self.state.prepare_evict(r) {
                Ok((op, reply)) => match self.apply(&op) {
                    Ok(()) => {
                        self.stats.evicted += 1;
                        counter!("serve.evicted");
                        Response::Evicted(reply)
                    }
                    Err(resp) => resp_with_id(resp, r.id),
                },
                Err(e) => Response::Error(e),
            },
            Request::Migrate(r) => match self.state.prepare_migrate(r) {
                Ok((op, reply)) => match self.apply(&op) {
                    Ok(()) => {
                        self.stats.migrated += 1;
                        counter!("serve.migrated");
                        Response::Migrated(reply)
                    }
                    Err(resp) => resp_with_id(resp, r.id),
                },
                Err(e) => Response::Error(e),
            },
            Request::Stats(r) => {
                let mut process = self.stats;
                process.journal_records = self.journal.records();
                process.snapshot_version = self.snapshot_version;
                process.shed = self.shared.shed_total.load(Ordering::Relaxed);
                Response::Stats(StatsResp {
                    id: r.id,
                    state: self.state.state_stats(),
                    process,
                })
            }
            Request::Snapshot(r) => {
                self.compact();
                Response::Snapshotted(SnapshotResp {
                    id: r.id,
                    version: self.snapshot_version,
                })
            }
            Request::Drain(r) => {
                self.shared.draining.store(true, Ordering::SeqCst);
                Response::Draining(DrainResp { id: r.id })
            }
        }
    }

    /// Journal-then-commit. On journal failure the op is NOT applied
    /// and the caller replies with a typed journal error.
    ///
    /// The `Err` variant is the ready-to-send reply frame; it is built
    /// once per failure on a cold path, so its size is irrelevant.
    #[allow(clippy::result_large_err)]
    fn apply(&mut self, op: &crate::journal::Op) -> Result<(), Response> {
        if let Err(e) = self.journal.append(op) {
            return Err(Response::Error(ErrorResp {
                id: 0,
                code: ErrorCode::Journal,
                detail: e.to_string(),
                retry_after_ms: retry_backoff_ms(1),
            }));
        }
        self.stats.journal_appends += 1;
        counter!("serve.journal_appends");
        if let Err(e) = self.state.commit(op) {
            // Impossible on the live path (prepare validated against
            // this exact state); surface typed rather than panic.
            return Err(Response::Error(ErrorResp {
                id: 0,
                code: ErrorCode::InvalidRequest,
                detail: e.to_string(),
                retry_after_ms: 0,
            }));
        }
        if self.journal.records() >= self.config.compact_every {
            self.compact();
        }
        Ok(())
    }

    /// Cut a snapshot and truncate the journal. Failure is non-fatal:
    /// the journal stays authoritative and compaction retries later.
    fn compact(&mut self) {
        let next_version = self.snapshot_version + 1;
        let snap = self.state.snapshot(next_version);
        match self
            .store
            .commit_snapshot(&snap)
            .and_then(|()| self.journal.reset())
        {
            Ok(()) => {
                self.snapshot_version = next_version;
                self.stats.compactions += 1;
                self.stats.snapshot_version = next_version;
                counter!("serve.compactions");
            }
            Err(_) => {
                counter!("serve.compaction_failures");
            }
        }
    }
}

fn resp_with_id(resp: Response, id: u64) -> Response {
    match resp {
        Response::Error(mut e) => {
            e.id = id;
            Response::Error(e)
        }
        other => other,
    }
}

/// Per-connection reader: parse frames, admit jobs, answer protocol
/// violations with a typed reply, then close.
fn reader_loop(stream: TcpStream, shared: &Arc<Shared>) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let out = Arc::new(Mutex::new(match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    }));
    let mut stream = stream;
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 4096];
    loop {
        if self_stopped(shared) {
            return;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        decoder.feed(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(None) => break,
                Ok(Some(frame)) => match Request::decode(&frame) {
                    Ok(req) => {
                        let job = Job {
                            req,
                            received: Instant::now(),
                            out: Arc::clone(&out),
                        };
                        if let Some(reply) = shared.admit(job) {
                            send(&out, &reply);
                        }
                    }
                    Err(e) => {
                        protocol_reply(&out, &e);
                        return;
                    }
                },
                Err(e) => {
                    protocol_reply(&out, &e);
                    return;
                }
            }
        }
    }
}

fn self_stopped(shared: &Arc<Shared>) -> bool {
    shared.draining.load(Ordering::SeqCst)
}

fn protocol_reply(out: &Arc<Mutex<TcpStream>>, err: &ProtocolError) {
    counter!("serve.protocol_errors");
    send(
        out,
        &Response::Error(ErrorResp {
            id: 0,
            code: ErrorCode::Protocol,
            detail: err.to_string(),
            retry_after_ms: 0,
        }),
    );
}

/// A running daemon.
pub struct Server;

impl Server {
    /// Recover state from `store`, bind `addr`, and start serving.
    ///
    /// # Errors
    ///
    /// Propagates recovery and socket failures; a daemon that cannot
    /// recover its journal refuses to start rather than serving from
    /// partial state.
    pub fn start(
        catalog_spec: &CatalogSpec,
        store: Store,
        config: ServerConfig,
        addr: &str,
    ) -> Result<ServerHandle, ServeError> {
        let snapshot = store.load_snapshot()?;
        let (journal, replay): (Journal<std::fs::File>, Replay) = store.open_journal()?;
        let state = ServeState::recover(catalog_spec, snapshot.as_ref(), &replay.ops)?;
        if replay.truncated_bytes > 0 {
            counter!("serve.journal_truncated_bytes", replay.truncated_bytes);
        }
        let snapshot_version = snapshot.map_or(0, |s| s.version);
        gauge!("serve.vms_resident", state.cluster().vm_count() as f64);

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shed_streak: 0,
            }),
            cv: Condvar::new(),
            draining: AtomicBool::new(false),
            queue_capacity: config.queue_capacity.max(1),
            shed_total: AtomicU64::new(0),
            timeout_total: AtomicU64::new(0),
        });

        let worker = {
            let shared = Arc::clone(&shared);
            let worker = Worker {
                state,
                journal,
                store,
                config,
                shared,
                stats: ProcessStats {
                    snapshot_version,
                    ..ProcessStats::default()
                },
                snapshot_version,
            };
            thread::Builder::new()
                .name("prvm-serve-worker".to_string())
                .spawn(move || worker.run())?
        };

        let listener_thread = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("prvm-serve-listener".to_string())
                .spawn(move || {
                    let mut readers = Vec::new();
                    loop {
                        if shared.draining.load(Ordering::SeqCst) {
                            break;
                        }
                        match listener.accept() {
                            Ok((conn, _)) => {
                                let shared = Arc::clone(&shared);
                                if let Ok(handle) = thread::Builder::new()
                                    .name("prvm-serve-conn".to_string())
                                    .spawn(move || reader_loop(conn, &shared))
                                {
                                    readers.push(handle);
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                thread::sleep(Duration::from_millis(20));
                            }
                            Err(_) => break,
                        }
                        readers.retain(|h| !h.is_finished());
                    }
                    for handle in readers {
                        let _ = handle.join();
                    }
                })?
        };

        Ok(ServerHandle {
            addr: local_addr,
            shared,
            worker,
            listener: listener_thread,
        })
    }
}

/// Handle to a running daemon: its address plus drain/join controls.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    worker: thread::JoinHandle<ProcessStats>,
    listener: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain: stop accepting, answer what's admitted,
    /// snapshot, exit. Non-blocking; pair with [`ServerHandle::join`].
    pub fn initiate_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.cv_kick();
    }

    fn cv_kick(&self) {
        // Wake the worker if it is parked on an empty queue.
        self.shared.cv.notify_all();
    }

    /// True once a drain has been initiated (by signal, request, or
    /// [`ServerHandle::initiate_drain`]).
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Wait for the daemon to finish draining; returns the final
    /// process counters. Call [`ServerHandle::initiate_drain`] first
    /// (or let a signal / drain request do it).
    #[must_use]
    pub fn join(self) -> ProcessStats {
        let stats = self.worker.join().unwrap_or_default();
        let _ = self.listener.join();
        stats
    }

    /// Drain now and wait: the one-call shutdown.
    #[must_use]
    pub fn shutdown(self) -> ProcessStats {
        self.initiate_drain();
        self.join()
    }

    /// Block until SIGTERM or SIGINT arrives, then drain and wait.
    /// This is the daemon's foreground main loop.
    ///
    /// # Errors
    ///
    /// Signal registration failures (non-Unix platforms).
    pub fn drain_on_signals(self) -> io::Result<ProcessStats> {
        let term = signal_hook::flag::register(signal_hook::consts::SIGTERM)?;
        let int = signal_hook::flag::register(signal_hook::consts::SIGINT)?;
        loop {
            if term.load(Ordering::SeqCst) || int.load(Ordering::SeqCst) || self.is_draining() {
                break;
            }
            thread::sleep(Duration::from_millis(100));
        }
        self.initiate_drain();
        Ok(self.join())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_doubling() {
        assert_eq!(retry_backoff_ms(1), 50);
        assert_eq!(retry_backoff_ms(2), 100);
        assert_eq!(retry_backoff_ms(3), 200);
        assert_eq!(retry_backoff_ms(7), 3200);
        assert_eq!(retry_backoff_ms(8), 3200, "capped");
        assert_eq!(retry_backoff_ms(10_000), 3200, "capped forever");
        assert_eq!(retry_backoff_ms(0), 50, "degenerate streak still guides");
    }
}
