//! The serve-layer chaos harness: the full journal + state stack driven
//! through every I/O fault preset with a scripted, seeded workload.
//!
//! Invariants checked on every run (violations are hard errors, so the
//! chaos CLI fails loudly):
//!
//! 1. Every request resolves to a typed outcome — an acked mutation, a
//!    typed placement rejection, a typed journal error, or an injected
//!    crash. Nothing panics, nothing is silently lost.
//! 2. After every injected crash, replaying the durable bytes yields
//!    exactly the acked ops — or the acked ops plus the single in-flight
//!    one ([`prvm_faults::CrashSite::AfterSync`]'s durable-but-unacked
//!    ambiguity). Never less, never garbage.
//! 3. A state recovered from the durable bytes has the same FNV digest
//!    as the live state built through the ack-time commit path —
//!    byte-identical placements, assignments, and allocator watermark.
//! 4. A replay through the *faulty* read path (bit rot, short reads)
//!    yields a checksum-verified prefix of the acked ops — corruption
//!    truncates, it never fabricates.

use crate::journal::{Journal, JournalError, Op, OpKind};
use crate::state::{CatalogSpec, ServeState, StateError};
use crate::wire::{EvictReq, MigrateReq, PlaceReq};
use prvm_faults::io::is_injected_crash;
use prvm_faults::{FaultFile, IoFaultPlan};
use prvm_model::Quantizer;
use std::fmt;
use std::io::Cursor;

/// What one chaos run did and proved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoChaosOutcome {
    /// The fault preset exercised.
    pub preset: String,
    /// The coin seed.
    pub seed: u64,
    /// Requests scripted.
    pub requests: usize,
    /// Mutations acked (journaled + applied).
    pub acked: u64,
    /// Typed placement rejections (no capacity / unknown VM).
    pub rejected: u64,
    /// Typed journal failures that were not crashes (e.g. ENOSPC); the
    /// op was not applied and the daemon carried on.
    pub journal_errors: u64,
    /// Injected crashes survived.
    pub crashes: u64,
    /// Crash recoveries where the in-flight record was lost (torn or
    /// unsynced) — the client saw an error, the state never had it.
    pub lost_inflight: u64,
    /// Crash recoveries where the in-flight record was durable but
    /// unacknowledged — replay resurrects it (at-least-once territory).
    pub ghost_acks: u64,
    /// Digest comparisons performed (each crash recovery plus the final
    /// pull-the-plug check).
    pub digest_checks: u64,
    /// FNV digest (hex) of the final live state.
    pub final_digest: String,
}

/// Chaos-run failures. [`ChaosError::Invariant`] means the stack broke
/// one of the module-level guarantees — the bug the harness exists to
/// catch.
#[derive(Debug)]
pub enum ChaosError {
    /// The preset name is not in [`IoFaultPlan::io_preset_names`].
    UnknownPreset(String),
    /// Building or recovering state failed structurally.
    State(StateError),
    /// The journal failed outside an injected fault's contract.
    Journal(JournalError),
    /// A durability invariant was violated — the real failure mode.
    Invariant(String),
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownPreset(name) => write!(f, "unknown I/O fault preset {name:?}"),
            Self::State(e) => write!(f, "{e}"),
            Self::Journal(e) => write!(f, "{e}"),
            Self::Invariant(detail) => write!(f, "durability invariant violated: {detail}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<StateError> for ChaosError {
    fn from(e: StateError) -> Self {
        Self::State(e)
    }
}

impl From<JournalError> for ChaosError {
    fn from(e: JournalError) -> Self {
        Self::Journal(e)
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Re-arm a crash plan for the session after `reboots` recoveries: the
/// ordinal grows so every session makes progress before dying again
/// (ordinal 1 would crash the first append of every life, forever).
fn rearm(plan: &IoFaultPlan, reboots: u64) -> IoFaultPlan {
    let mut next = plan.clone();
    if let Some(crash) = plan.crash {
        next = next.with_crash(crash.site, crash.ordinal.max(2) + reboots);
    }
    next
}

/// Track which VMs the script believes are resident, mirroring ops.
fn note_op(resident: &mut Vec<u64>, op: &Op) {
    match op.kind {
        OpKind::Place => resident.push(op.vm),
        OpKind::Remove => resident.retain(|&v| v != op.vm),
        OpKind::Migrate => {}
    }
}

const VM_TYPES: [&str; 4] = ["m3.medium", "m3.large", "m3.xlarge", "c3.large"];

/// Run the scripted workload against the journal + state stack under the
/// named I/O fault preset. See the module docs for the invariants.
///
/// # Errors
///
/// [`ChaosError::UnknownPreset`] for a bad preset name;
/// [`ChaosError::Invariant`] when the stack violated a durability
/// guarantee (the failure this harness exists to surface).
pub fn run_io_chaos(
    preset: &str,
    seed: u64,
    requests: usize,
) -> Result<IoChaosOutcome, ChaosError> {
    let plan = IoFaultPlan::io_preset(preset, seed)
        .ok_or_else(|| ChaosError::UnknownPreset(preset.to_string()))?;
    // Coarse profile resolution: the durability invariants under test
    // are resolution-independent, and the score book — a pure function
    // of the catalog — is built once and shared across every reboot.
    let catalog_spec = CatalogSpec::ec2(8).with_quantizer(Quantizer {
        core_slots: 2,
        mem_levels: 4,
        disk_levels: 2,
    });
    let book = ServeState::build_book(&catalog_spec)?;
    // `live` is the daemon's in-memory view: it commits ops exactly when
    // the journal acks them, like the server's worker does.
    let mut live = ServeState::recover_with_book(&catalog_spec, book.clone(), None, &[])?;
    let mut acked_ops: Vec<Op> = Vec::new();
    let mut resident: Vec<u64> = Vec::new();
    let mut inflight: Option<Op> = None;

    let mut outcome = IoChaosOutcome {
        preset: preset.to_string(),
        seed,
        requests,
        acked: 0,
        rejected: 0,
        journal_errors: 0,
        crashes: 0,
        lost_inflight: 0,
        ghost_acks: 0,
        digest_checks: 0,
        final_digest: String::new(),
    };

    let mut disk: Vec<u8> = Vec::new();
    let mut i = 0usize;
    let final_disk: Vec<u8>;
    'sessions: loop {
        let session_plan = rearm(&plan, outcome.crashes);
        let file = FaultFile::new(Cursor::new(std::mem::take(&mut disk)), session_plan);
        let (mut journal, replay) = Journal::open(file)?;

        // Reboot verification: the durable ops must be the acked ones,
        // or the acked ones plus the single in-flight record.
        if outcome.crashes > 0 {
            if replay.ops == acked_ops {
                outcome.lost_inflight += 1;
            } else if replay.ops.len() == acked_ops.len() + 1
                && replay.ops.starts_with(&acked_ops)
                && replay.ops.last() == inflight.as_ref()
            {
                // Ghost ack: the op is durable, so the daemon's view must
                // adopt it — exactly what a recovering server does.
                if let Some(op) = replay.ops.last() {
                    live.commit(op)?;
                    note_op(&mut resident, op);
                }
                acked_ops.clone_from(&replay.ops);
                outcome.ghost_acks += 1;
            } else {
                return Err(ChaosError::Invariant(format!(
                    "replay after crash returned {} ops; expected the {} acked (± the in-flight record)",
                    replay.ops.len(),
                    acked_ops.len()
                )));
            }
            let recovered =
                ServeState::recover_with_book(&catalog_spec, book.clone(), None, &replay.ops)?;
            if recovered.digest() != live.digest() {
                return Err(ChaosError::Invariant(
                    "recovered state digest differs from the live commit path".to_string(),
                ));
            }
            outcome.digest_checks += 1;
        }

        while i < requests {
            let roll = splitmix(seed ^ splitmix(i as u64));
            i += 1;
            let prepared = match roll % 10 {
                6 | 7 if !resident.is_empty() => {
                    let vm = resident[(roll >> 8) as usize % resident.len()];
                    live.prepare_evict(&EvictReq {
                        id: i as u64,
                        deadline_ms: 0,
                        vm,
                    })
                    .map(|(op, _)| op)
                }
                8 | 9 if !resident.is_empty() => {
                    let vm = resident[(roll >> 8) as usize % resident.len()];
                    live.prepare_migrate(&MigrateReq {
                        id: i as u64,
                        deadline_ms: 0,
                        vm,
                    })
                    .map(|(op, _)| op)
                }
                _ => live
                    .prepare_place(&PlaceReq {
                        id: i as u64,
                        deadline_ms: 0,
                        vm_type: VM_TYPES[(roll >> 16) as usize % VM_TYPES.len()].to_string(),
                    })
                    .map(|(op, _)| op),
            };
            let op = match prepared {
                Ok(op) => op,
                Err(_typed) => {
                    outcome.rejected += 1;
                    continue;
                }
            };
            match journal.append(&op) {
                Ok(()) => {
                    live.commit(&op)?;
                    note_op(&mut resident, &op);
                    acked_ops.push(op);
                    outcome.acked += 1;
                }
                Err(JournalError::Io(e)) if is_injected_crash(&e) => {
                    outcome.crashes += 1;
                    inflight = Some(op);
                    disk = journal.into_file().into_inner().into_inner();
                    continue 'sessions;
                }
                Err(JournalError::Io(_)) => {
                    // ENOSPC or kin: typed failure, op not applied, the
                    // journal restored its tail — life goes on.
                    outcome.journal_errors += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
        final_disk = journal.into_file().into_inner().into_inner();
        break;
    }

    // Final pull-the-plug checks. First through the faulty read path:
    // whatever survives bit rot and short reads must be a checksum-
    // verified prefix of the acked ops — never fabricated records.
    let read_plan = rearm(&plan, outcome.crashes + 1);
    let faulted = FaultFile::new(Cursor::new(final_disk.clone()), read_plan);
    match Journal::open(faulted) {
        Ok((_, replay)) => {
            if !acked_ops.starts_with(&replay.ops) {
                return Err(ChaosError::Invariant(
                    "faulty-path replay returned ops that were never acked".to_string(),
                ));
            }
        }
        Err(JournalError::Io(e)) if is_injected_crash(&e) => {
            // The re-armed crash fired during recovery's truncation —
            // acceptable: recovery itself is crash-safe by idempotence.
        }
        Err(e) => return Err(e.into()),
    }

    // Then through a clean read path: the durable bytes must replay to
    // exactly the acked ops and a state digest-identical to the live one.
    let (_, clean) = Journal::open(Cursor::new(final_disk))?;
    if clean.ops != acked_ops {
        return Err(ChaosError::Invariant(format!(
            "clean replay returned {} ops, expected {} acked",
            clean.ops.len(),
            acked_ops.len()
        )));
    }
    let recovered = ServeState::recover(&catalog_spec, None, &clean.ops)?;
    if recovered.digest() != live.digest() || recovered.book_digest() != live.book_digest() {
        return Err(ChaosError::Invariant(
            "final recovered state is not byte-identical to the live state".to_string(),
        ));
    }
    outcome.digest_checks += 1;
    outcome.final_digest = format!("{:016x}", live.digest());
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_satisfies_the_invariants() {
        for preset in IoFaultPlan::io_preset_names() {
            let outcome = run_io_chaos(preset, 42, 48).expect(preset);
            assert!(outcome.acked > 0, "{preset}: some work must land");
            assert!(outcome.digest_checks > 0, "{preset}: digests verified");
            assert!(!outcome.final_digest.is_empty(), "{preset}");
        }
    }

    #[test]
    fn crash_presets_actually_crash_and_recover() {
        for preset in ["torn-write", "lost-sync", "ghost-ack"] {
            let outcome = run_io_chaos(preset, 7, 40).expect(preset);
            assert!(outcome.crashes >= 1, "{preset}: the crash coin must fire");
            assert_eq!(
                outcome.lost_inflight + outcome.ghost_acks,
                outcome.crashes,
                "{preset}: every crash classifies as lost or ghost"
            );
        }
        let ghost = run_io_chaos("ghost-ack", 7, 40).expect("ghost-ack");
        assert!(ghost.ghost_acks >= 1, "AfterSync must resurrect a record");
        let lost = run_io_chaos("lost-sync", 7, 40).expect("lost-sync");
        assert!(lost.lost_inflight >= 1, "BeforeSync must lose the record");
    }

    #[test]
    fn disk_full_errors_are_survivable() {
        let outcome = run_io_chaos("disk-full", 3, 64).expect("disk-full");
        assert!(
            outcome.journal_errors > 0,
            "ENOSPC coins must fire at p=0.15"
        );
        assert!(outcome.acked > 0, "and other appends still land");
        assert_eq!(outcome.crashes, 0, "ENOSPC is an error, not a death");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run_io_chaos("short-io", 11, 32).expect("run a");
        let b = run_io_chaos("short-io", 11, 32).expect("run b");
        assert_eq!(a, b, "same seed, same outcome");
        let c = run_io_chaos("short-io", 12, 32).expect("run c");
        assert_ne!(a.final_digest, c.final_digest, "seed changes the workload");
    }

    #[test]
    fn unknown_preset_is_typed() {
        let err = run_io_chaos("meteor", 1, 4).expect_err("unknown");
        assert!(matches!(err, ChaosError::UnknownPreset(_)), "{err}");
    }
}
