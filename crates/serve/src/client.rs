//! A blocking client for the daemon's framed wire protocol.
//!
//! One request in flight per connection: every call encodes a frame,
//! writes it, then reads frames until the reply with the matching
//! correlation id arrives. Shed and timeout replies surface as typed
//! [`ClientError`] variants carrying the server's backoff guidance, so
//! callers (the load generator, the chaos driver, the CLI) can retry
//! deterministically instead of guessing.

use crate::wire::{
    DrainReq, EvictReq, EvictedResp, FrameDecoder, MigrateReq, MigratedResp, PlaceReq, PlacedResp,
    ProtocolError, Request, Response, SnapshotReq, StatsReq, StatsResp,
};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures, all typed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure (connect, read, write, or server hang-up).
    Io(io::Error),
    /// The server's bytes violated the wire protocol.
    Protocol(ProtocolError),
    /// The server shed the request; retry after the given backoff.
    Shed {
        /// Server-observed queue depth at rejection.
        queue_depth: usize,
        /// Deterministic backoff guidance in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before the worker reached it.
    Timeout {
        /// The deadline that expired, in milliseconds.
        deadline_ms: u64,
    },
    /// A typed server-side failure.
    Server {
        /// Machine-matchable failure code.
        code: crate::wire::ErrorCode,
        /// Human-readable detail.
        detail: String,
        /// Backoff guidance for retryable codes; 0 = do not retry.
        retry_after_ms: u64,
    },
    /// The server replied with the wrong message type for the request.
    UnexpectedReply(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "client I/O: {e}"),
            Self::Protocol(e) => write!(f, "server protocol violation: {e}"),
            Self::Shed {
                queue_depth,
                retry_after_ms,
            } => write!(
                f,
                "request shed (queue depth {queue_depth}); retry after {retry_after_ms} ms"
            ),
            Self::Timeout { deadline_ms } => {
                write!(f, "request deadline ({deadline_ms} ms) expired")
            }
            Self::Server {
                code,
                detail,
                retry_after_ms,
            } => write!(
                f,
                "server error {code:?}: {detail} (retry_after_ms={retry_after_ms})"
            ),
            Self::UnexpectedReply(want) => {
                write!(
                    f,
                    "server replied with the wrong message type (wanted {want})"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        Self::Protocol(e)
    }
}

/// A blocking connection to a `prvm-serve` daemon.
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_id: u64,
    /// Deadline budget attached to requests (0 = server default).
    pub deadline_ms: u64,
}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // A liveness bound, not a request deadline: if the daemon says
        // nothing for this long the connection is considered dead.
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(),
            next_id: 1,
            deadline_ms: 0,
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send one request and block for its reply.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError`]; shed/timeout/error replies are mapped to
    /// their variants so callers match instead of parsing.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let bytes = req.encode()?;
        self.stream.write_all(&bytes)?;
        self.stream.flush()?;
        let want = req.id();
        let mut buf = [0u8; 4096];
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                let resp = Response::decode(&frame)?;
                // id 0 marks a connection-scoped protocol error reply.
                if resp.id() == want || resp.id() == 0 {
                    return match resp {
                        Response::Shed(s) => Err(ClientError::Shed {
                            queue_depth: s.queue_depth,
                            retry_after_ms: s.retry_after_ms,
                        }),
                        Response::Timeout(t) => Err(ClientError::Timeout {
                            deadline_ms: t.deadline_ms,
                        }),
                        Response::Error(e) => Err(ClientError::Server {
                            code: e.code,
                            detail: e.detail,
                            retry_after_ms: e.retry_after_ms,
                        }),
                        ok => Ok(ok),
                    };
                }
                // A stale reply (an earlier request we gave up on):
                // discard and keep reading.
                continue;
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-request",
                )));
            }
            self.decoder.feed(&buf[..n]);
        }
    }

    /// Place a VM of the named catalog type.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError`].
    pub fn place(&mut self, vm_type: &str) -> Result<PlacedResp, ClientError> {
        let req = Request::Place(PlaceReq {
            id: self.fresh_id(),
            deadline_ms: self.deadline_ms,
            vm_type: vm_type.to_string(),
        });
        match self.roundtrip(&req)? {
            Response::Placed(r) => Ok(r),
            _ => Err(ClientError::UnexpectedReply("Placed")),
        }
    }

    /// Evict a resident VM.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError`].
    pub fn evict(&mut self, vm: u64) -> Result<EvictedResp, ClientError> {
        let req = Request::Evict(EvictReq {
            id: self.fresh_id(),
            deadline_ms: self.deadline_ms,
            vm,
        });
        match self.roundtrip(&req)? {
            Response::Evicted(r) => Ok(r),
            _ => Err(ClientError::UnexpectedReply("Evicted")),
        }
    }

    /// Migrate a resident VM to a placer-chosen destination.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError`].
    pub fn migrate(&mut self, vm: u64) -> Result<MigratedResp, ClientError> {
        let req = Request::Migrate(MigrateReq {
            id: self.fresh_id(),
            deadline_ms: self.deadline_ms,
            vm,
        });
        match self.roundtrip(&req)? {
            Response::Migrated(r) => Ok(r),
            _ => Err(ClientError::UnexpectedReply("Migrated")),
        }
    }

    /// Read cluster + process statistics.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError`].
    pub fn stats(&mut self) -> Result<StatsResp, ClientError> {
        let req = Request::Stats(StatsReq {
            id: self.fresh_id(),
            deadline_ms: self.deadline_ms,
        });
        match self.roundtrip(&req)? {
            Response::Stats(r) => Ok(r),
            _ => Err(ClientError::UnexpectedReply("Stats")),
        }
    }

    /// Force a compaction; returns the new snapshot version.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError`].
    pub fn snapshot(&mut self) -> Result<u64, ClientError> {
        let req = Request::Snapshot(SnapshotReq {
            id: self.fresh_id(),
            deadline_ms: self.deadline_ms,
        });
        match self.roundtrip(&req)? {
            Response::Snapshotted(r) => Ok(r.version),
            _ => Err(ClientError::UnexpectedReply("Snapshotted")),
        }
    }

    /// Ask the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Typed [`ClientError`].
    pub fn drain(&mut self) -> Result<(), ClientError> {
        let req = Request::Drain(DrainReq {
            id: self.fresh_id(),
            deadline_ms: self.deadline_ms,
        });
        match self.roundtrip(&req)? {
            Response::Draining(_) => Ok(()),
            _ => Err(ClientError::UnexpectedReply("Draining")),
        }
    }
}
