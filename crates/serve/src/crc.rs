//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`): the checksum
//! guarding every wire frame and journal record. Implemented in-tree —
//! this workspace runs offline with no registry crates — with the table
//! built at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let base = b"journal record payload".to_vec();
        let crc = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), crc, "flip at byte {i} bit {bit}");
            }
        }
    }
}
