//! Write-ahead journal + versioned snapshot: the daemon's durability.
//!
//! **Journal format.** A flat sequence of records, each
//! `[len u32 LE][crc32 u32 LE][payload: len bytes]` where the payload is
//! the JSON encoding of one applied [`Op`]. Appends are `write_all` +
//! `sync` — the op is applied to the in-memory cluster only after the
//! sync returns, so an acknowledged mutation is always on disk.
//!
//! **Torn-tail truncation.** Replay scans records from the start and
//! stops at the first incomplete header, oversized length, checksum
//! mismatch, or unparsable payload — everything before that point is the
//! durable prefix, everything after is a torn tail from a crash (or rot)
//! and is truncated away. A crash can therefore lose at most the single
//! in-flight unacknowledged record, never a committed one.
//!
//! **Snapshot.** Compaction serializes the full placement map (plus the
//! VM-id allocator watermark) into `[magic "PVSN"][len][crc][payload]`,
//! written to a temp file, synced, then atomically renamed over the
//! current snapshot — only then is the journal truncated. The snapshot
//! carries a monotonically increasing `version` and the `catalog_hash`
//! of the PM/VM catalog it was cut under; recovery refuses a snapshot
//! whose catalog hash does not match the running daemon's, because score
//! tables and assignments are only meaningful against their own catalog.
//!
//! Everything here is generic over [`StorageFile`], so the recovery
//! tests drive the exact code path through `FaultFile<Cursor<Vec<u8>>>`
//! with crash-point coins instead of mocking any of it.

use crate::crc::crc32;
use prvm_faults::StorageFile;
use prvm_model::{Assignment, VmSpec};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, SeekFrom};
use std::path::{Path, PathBuf};

/// Upper bound on one journal/snapshot record's payload.
pub const MAX_RECORD: u32 = 16 << 20;
/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PVSN";

/// What a journal record did. A unit enum (vendored-serde friendly);
/// the op's meaning for each field is documented on [`Op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// A VM was placed.
    Place,
    /// A VM was removed.
    Remove,
    /// A VM was migrated.
    Migrate,
}

/// One applied state mutation — the *decision*, not the request, so
/// replay is placer-independent and bit-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// What happened.
    pub kind: OpKind,
    /// The VM the op concerns.
    pub vm: u64,
    /// Place: target PM. Remove: source PM (audit trail). Migrate:
    /// destination PM.
    pub pm: usize,
    /// The VM's spec — present for `Place` (replay must know what to
    /// place), absent otherwise.
    pub spec: Option<VmSpec>,
    /// Core assignment for `Place`/`Migrate`; empty for `Remove`.
    pub cores: Vec<usize>,
    /// Disk assignment for `Place`/`Migrate`; empty for `Remove`.
    pub disks: Vec<usize>,
}

impl Op {
    /// A placement op.
    #[must_use]
    pub fn place(vm: u64, pm: usize, spec: VmSpec, assignment: &Assignment) -> Self {
        Self {
            kind: OpKind::Place,
            vm,
            pm,
            spec: Some(spec),
            cores: assignment.cores.clone(),
            disks: assignment.disks.clone(),
        }
    }

    /// A removal op.
    #[must_use]
    pub fn remove(vm: u64, pm: usize) -> Self {
        Self {
            kind: OpKind::Remove,
            vm,
            pm,
            spec: None,
            cores: Vec::new(),
            disks: Vec::new(),
        }
    }

    /// A migration op (destination side).
    #[must_use]
    pub fn migrate(vm: u64, to: usize, assignment: &Assignment) -> Self {
        Self {
            kind: OpKind::Migrate,
            vm,
            pm: to,
            spec: None,
            cores: assignment.cores.clone(),
            disks: assignment.disks.clone(),
        }
    }

    /// The op's assignment (cores + disks) as a model [`Assignment`].
    #[must_use]
    pub fn assignment(&self) -> Assignment {
        Assignment::new(self.cores.clone(), self.disks.clone())
    }
}

/// Journal/snapshot layer failures.
#[derive(Debug)]
pub enum JournalError {
    /// The storage failed (possibly an injected crash — see
    /// [`prvm_faults::io::is_injected_crash`]).
    Io(io::Error),
    /// A snapshot exists but was cut under a different catalog.
    CatalogMismatch {
        /// Hash of the running daemon's catalog.
        want: u64,
        /// Hash recorded in the snapshot.
        got: u64,
    },
    /// A snapshot (not a journal tail — those truncate) is structurally
    /// broken: recovery cannot proceed without operator action.
    Corrupt(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "journal I/O: {e}"),
            Self::CatalogMismatch { want, got } => write!(
                f,
                "snapshot catalog hash 0x{got:016x} does not match running catalog 0x{want:016x}"
            ),
            Self::Corrupt(detail) => write!(f, "snapshot corrupt: {detail}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// What replay found in a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// The valid ops, in append order.
    pub ops: Vec<Op>,
    /// Bytes of torn tail truncated away (0 for a clean journal).
    pub truncated_bytes: u64,
}

fn fixed4(buf: &[u8], at: usize) -> Option<[u8; 4]> {
    buf.get(at..at.checked_add(4)?)?.try_into().ok()
}

/// An open write-ahead journal positioned at its tail.
#[derive(Debug)]
pub struct Journal<F: StorageFile> {
    file: F,
    records: u64,
    end: u64,
}

impl<F: StorageFile> Journal<F> {
    /// Open a journal: scan every valid record, truncate the torn tail
    /// (if any), and position the file for appends.
    ///
    /// # Errors
    ///
    /// Only I/O failures. Corruption is not an error here — it marks the
    /// end of the durable prefix.
    pub fn open(mut file: F) -> Result<(Self, Replay), JournalError> {
        file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut ops = Vec::new();
        let mut off = 0usize;
        while let Some(len) = fixed4(&bytes, off).map(u32::from_le_bytes) {
            if len > MAX_RECORD {
                break;
            }
            let Some(want_crc) = fixed4(&bytes, off + 4).map(u32::from_le_bytes) else {
                break;
            };
            let Some(payload) = off
                .checked_add(8)
                .and_then(|body| bytes.get(body..body + len as usize))
            else {
                break;
            };
            if crc32(payload) != want_crc {
                break;
            }
            let Ok(op) = serde_json::from_slice::<Op>(payload) else {
                break;
            };
            ops.push(op);
            off += 8 + len as usize;
        }
        let truncated_bytes = (bytes.len() - off) as u64;
        if truncated_bytes > 0 {
            file.truncate(off as u64)?;
            file.sync()?;
        }
        file.seek(SeekFrom::Start(off as u64))?;
        let records = ops.len() as u64;
        Ok((
            Self {
                file,
                records,
                end: off as u64,
            },
            Replay {
                ops,
                truncated_bytes,
            },
        ))
    }

    /// Append one op durably: the record is on disk when this returns
    /// `Ok`. On error the op MUST NOT be applied to in-memory state —
    /// the caller replies with a typed journal error instead.
    ///
    /// # Errors
    ///
    /// I/O failures (including injected crashes and ENOSPC); encoding
    /// failures surface as [`JournalError::Corrupt`].
    pub fn append(&mut self, op: &Op) -> Result<(), JournalError> {
        let payload = serde_json::to_vec(op).map_err(|e| JournalError::Corrupt(e.to_string()))?;
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_RECORD)
            .ok_or_else(|| JournalError::Corrupt("record exceeds MAX_RECORD".to_string()))?;
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&len.to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        if let Err(e) = self.file.write_all(&record).and_then(|()| self.file.sync()) {
            // A failed append leaves the tail position unknown (a torn
            // record may be buffered or even durable). Restore the
            // last-known-good tail so later appends cannot land after
            // garbage; if the handle is dead this fails too, harmlessly.
            let _ = self.file.truncate(self.end);
            return Err(e.into());
        }
        self.end += record.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Valid records currently in the journal.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Truncate to empty — called only after a snapshot that covers
    /// every journaled op has been durably committed.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn reset(&mut self) -> Result<(), JournalError> {
        self.file.truncate(0)?;
        self.file.sync()?;
        self.file.seek(SeekFrom::Start(0))?;
        self.end = 0;
        self.records = 0;
        Ok(())
    }

    /// Unwrap the underlying storage (test/kill harness).
    pub fn into_file(self) -> F {
        self.file
    }
}

/// One resident VM in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The VM's id.
    pub vm: u64,
    /// Its host PM.
    pub pm: usize,
    /// Its spec.
    pub spec: VmSpec,
    /// Core assignment.
    pub cores: Vec<usize>,
    /// Disk assignment.
    pub disks: Vec<usize>,
}

/// A full-state snapshot: replaying it into an empty cluster, then
/// replaying the journal on top, reproduces the pre-crash cluster
/// byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotonically increasing compaction counter.
    pub version: u64,
    /// Hash of the PM/VM catalog this snapshot was cut under.
    pub catalog_hash: u64,
    /// The VM-id allocator watermark at the cut.
    pub next_vm_id: u64,
    /// Every resident VM, sorted by id.
    pub placements: Vec<Placement>,
}

/// Write a snapshot to `file` (truncating it first).
///
/// # Errors
///
/// I/O failures; encoding failures as [`JournalError::Corrupt`].
pub fn write_snapshot<F: StorageFile>(file: &mut F, snap: &Snapshot) -> Result<(), JournalError> {
    let payload = serde_json::to_vec(snap).map_err(|e| JournalError::Corrupt(e.to_string()))?;
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_RECORD)
        .ok_or_else(|| JournalError::Corrupt("snapshot exceeds MAX_RECORD".to_string()))?;
    file.truncate(0)?;
    file.seek(SeekFrom::Start(0))?;
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    file.write_all(&out)?;
    file.sync()?;
    Ok(())
}

/// Read a snapshot from `file`. `Ok(None)` for an empty file (no
/// snapshot has ever been cut).
///
/// # Errors
///
/// [`JournalError::Corrupt`] for a non-empty file that is not a valid
/// snapshot — unlike a journal tail, a broken snapshot cannot be
/// silently truncated (it is the base state), so it surfaces loudly.
pub fn read_snapshot<F: StorageFile>(file: &mut F) -> Result<Option<Snapshot>, JournalError> {
    file.seek(SeekFrom::Start(0))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.is_empty() {
        return Ok(None);
    }
    if bytes.get(..4) != Some(&SNAPSHOT_MAGIC[..]) {
        return Err(JournalError::Corrupt("bad snapshot magic".to_string()));
    }
    let Some(len) = fixed4(&bytes, 4).map(u32::from_le_bytes) else {
        return Err(JournalError::Corrupt(
            "snapshot header truncated".to_string(),
        ));
    };
    if len > MAX_RECORD {
        return Err(JournalError::Corrupt(format!(
            "snapshot length {len} oversized"
        )));
    }
    let Some(want_crc) = fixed4(&bytes, 8).map(u32::from_le_bytes) else {
        return Err(JournalError::Corrupt(
            "snapshot header truncated".to_string(),
        ));
    };
    let Some(payload) = bytes.get(12..12 + len as usize) else {
        return Err(JournalError::Corrupt("snapshot body truncated".to_string()));
    };
    if crc32(payload) != want_crc {
        return Err(JournalError::Corrupt(
            "snapshot checksum mismatch".to_string(),
        ));
    }
    let snap = serde_json::from_slice::<Snapshot>(payload)
        .map_err(|e| JournalError::Corrupt(e.to_string()))?;
    Ok(Some(snap))
}

/// On-disk layout of one daemon's durable state: a directory holding
/// `journal.wal` and `snapshot.bin` (plus `snapshot.tmp` transiently
/// during compaction).
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Open (creating if needed) a state directory.
    ///
    /// # Errors
    ///
    /// I/O failures creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The state directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.wal")
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }

    fn snapshot_tmp_path(&self) -> PathBuf {
        self.dir.join("snapshot.tmp")
    }

    /// Open (creating if needed) the journal file and replay it.
    ///
    /// # Errors
    ///
    /// Propagates [`JournalError`].
    pub fn open_journal(&self) -> Result<(Journal<std::fs::File>, Replay), JournalError> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.journal_path())?;
        Journal::open(file)
    }

    /// Load the current snapshot, `None` if one was never cut.
    ///
    /// # Errors
    ///
    /// Propagates [`JournalError`] (including [`JournalError::Corrupt`]).
    pub fn load_snapshot(&self) -> Result<Option<Snapshot>, JournalError> {
        let mut file = match std::fs::File::open(self.snapshot_path()) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        read_snapshot(&mut file)
    }

    /// Durably commit a snapshot: write to a temp file, sync, atomically
    /// rename over the current snapshot. The journal is NOT touched —
    /// the caller resets it only after this returns `Ok`.
    ///
    /// # Errors
    ///
    /// Propagates [`JournalError`].
    pub fn commit_snapshot(&self, snap: &Snapshot) -> Result<(), JournalError> {
        let tmp = self.snapshot_tmp_path();
        {
            let mut file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            write_snapshot(&mut file, snap)?;
        }
        std::fs::rename(&tmp, self.snapshot_path())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_faults::{CrashSite, FaultFile, IoFaultPlan};
    use prvm_model::catalog;
    use std::io::Cursor;

    fn mem() -> Cursor<Vec<u8>> {
        Cursor::new(Vec::new())
    }

    fn sample_ops() -> Vec<Op> {
        let a = Assignment::new(vec![0, 1], vec![0]);
        vec![
            Op::place(0, 2, catalog::vm_m3_large(), &a),
            Op::place(
                1,
                2,
                catalog::vm_m3_medium(),
                &Assignment::new(vec![2], vec![1]),
            ),
            Op::migrate(0, 3, &a),
            Op::remove(1, 2),
        ]
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let ops = sample_ops();
        let (mut journal, replay) = Journal::open(mem()).expect("open empty");
        assert!(replay.ops.is_empty());
        for op in &ops {
            journal.append(op).expect("append");
        }
        assert_eq!(journal.records(), 4);
        let (journal2, replay2) = Journal::open(journal.into_file()).expect("reopen");
        assert_eq!(replay2.ops, ops);
        assert_eq!(replay2.truncated_bytes, 0);
        assert_eq!(journal2.records(), 4);
    }

    #[test]
    fn appends_continue_after_reopen() {
        let ops = sample_ops();
        let (mut journal, _) = Journal::open(mem()).expect("open");
        journal.append(&ops[0]).expect("append");
        let (mut journal, _) = Journal::open(journal.into_file()).expect("reopen");
        journal.append(&ops[1]).expect("append after reopen");
        let (_, replay) = Journal::open(journal.into_file()).expect("final open");
        assert_eq!(replay.ops, ops[..2].to_vec());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let ops = sample_ops();
        let (mut journal, _) = Journal::open(mem()).expect("open");
        for op in &ops {
            journal.append(op).expect("append");
        }
        let mut bytes = journal.into_file().into_inner();
        let full = bytes.len();
        bytes.extend_from_slice(&[0x13, 0x00, 0x00]); // torn header
        let (journal, replay) = Journal::open(Cursor::new(bytes)).expect("open torn");
        assert_eq!(replay.ops, ops);
        assert_eq!(replay.truncated_bytes, 3);
        assert_eq!(journal.into_file().into_inner().len(), full, "tail gone");
    }

    #[test]
    fn corrupt_record_truncates_it_and_everything_after() {
        let ops = sample_ops();
        let (mut journal, _) = Journal::open(mem()).expect("open");
        let mut offsets = vec![0u64];
        for op in &ops {
            journal.append(op).expect("append");
            offsets.push(journal.end);
        }
        let mut bytes = journal.into_file().into_inner();
        // Flip a payload bit inside record 2 (0-indexed).
        let target = offsets[2] as usize + 8;
        bytes[target] ^= 0x01;
        let (_, replay) = Journal::open(Cursor::new(bytes)).expect("open corrupt");
        assert_eq!(replay.ops, ops[..2].to_vec(), "prefix survives");
        assert!(replay.truncated_bytes > 0);
    }

    #[test]
    fn reset_empties_the_journal() {
        let (mut journal, _) = Journal::open(mem()).expect("open");
        for op in &sample_ops() {
            journal.append(op).expect("append");
        }
        journal.reset().expect("reset");
        assert_eq!(journal.records(), 0);
        let (_, replay) = Journal::open(journal.into_file()).expect("reopen");
        assert!(replay.ops.is_empty());
    }

    #[test]
    fn crash_during_append_loses_only_the_inflight_record() {
        let ops = sample_ops();
        for site in [
            CrashSite::DuringWrite,
            CrashSite::BeforeSync,
            CrashSite::AfterSync,
        ] {
            // Crash on the 3rd logical record. One append = one write +
            // one sync, so both ordinals are 3.
            let plan = IoFaultPlan::none().with_crash(site, 3).seeded(1);
            let (mut journal, _) =
                Journal::open(FaultFile::new(mem(), plan)).expect("open faulted");
            let mut acked = Vec::new();
            let mut crashed = false;
            for op in &ops {
                match journal.append(op) {
                    Ok(()) => acked.push(op.clone()),
                    Err(JournalError::Io(e)) => {
                        assert!(prvm_faults::io::is_injected_crash(&e), "{e}");
                        crashed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            assert!(crashed, "{site:?} must fire");
            assert_eq!(acked.len(), 2, "{site:?}: two records acked before death");
            // Reboot: recover from the durable bytes only.
            let disk = journal.into_file().into_inner();
            let (_, replay) = Journal::open(Cursor::new(disk.into_inner())).expect("recover");
            match site {
                // Torn or lost in-flight record: exactly the acked ops.
                CrashSite::DuringWrite | CrashSite::BeforeSync => {
                    assert_eq!(replay.ops, acked, "{site:?}");
                }
                // Durable but unacknowledged: acked + the in-flight op.
                CrashSite::AfterSync => {
                    assert_eq!(replay.ops, ops[..3].to_vec(), "{site:?}");
                }
            }
        }
    }

    #[test]
    fn enospc_append_fails_cleanly_and_journal_stays_usable() {
        let ops = sample_ops();
        // ENOSPC on exactly the second write ordinal via probability 1.0
        // would kill every append; instead alternate manually.
        let plan = IoFaultPlan::none().with_enospc(0.5).seeded(7);
        let (mut journal, _) = Journal::open(FaultFile::new(mem(), plan)).expect("open");
        let mut acked = Vec::new();
        for op in ops.iter().cycle().take(32) {
            match journal.append(op) {
                Ok(()) => acked.push(op.clone()),
                Err(JournalError::Io(e)) => {
                    assert_eq!(e.raw_os_error(), Some(28), "only ENOSPC expected: {e}");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(!acked.is_empty(), "some appends must succeed at p=0.5");
        let disk = journal.into_file().into_inner().into_inner();
        let (_, replay) = Journal::open(Cursor::new(disk)).expect("recover");
        // Failed appends restore the tail, so exactly the acked records
        // survive — no torn middles, no lost commits.
        assert_eq!(replay.ops, acked);
    }

    #[test]
    fn snapshot_roundtrips() {
        let snap = Snapshot {
            version: 3,
            catalog_hash: 0xDEAD_BEEF,
            next_vm_id: 17,
            placements: vec![Placement {
                vm: 5,
                pm: 1,
                spec: catalog::vm_m3_large(),
                cores: vec![0, 1],
                disks: vec![0],
            }],
        };
        let mut file = mem();
        write_snapshot(&mut file, &snap).expect("write");
        let back = read_snapshot(&mut file).expect("read").expect("present");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_file_reads_as_none() {
        assert_eq!(read_snapshot(&mut mem()).expect("read"), None);
    }

    #[test]
    fn corrupt_snapshot_is_a_loud_error() {
        let snap = Snapshot {
            version: 1,
            catalog_hash: 1,
            next_vm_id: 0,
            placements: Vec::new(),
        };
        let mut file = mem();
        write_snapshot(&mut file, &snap).expect("write");
        let mut bytes = file.into_inner();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = read_snapshot(&mut Cursor::new(bytes)).expect_err("corrupt");
        assert!(matches!(err, JournalError::Corrupt(_)), "{err}");
    }

    #[test]
    fn store_survives_a_full_cycle_on_real_files() {
        let dir =
            std::env::temp_dir().join(format!("prvm-serve-journal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("open store");
        assert!(store.load_snapshot().expect("no snapshot yet").is_none());

        let ops = sample_ops();
        {
            let (mut journal, replay) = store.open_journal().expect("journal");
            assert!(replay.ops.is_empty());
            for op in &ops {
                journal.append(op).expect("append");
            }
        }
        let snap = Snapshot {
            version: 1,
            catalog_hash: 42,
            next_vm_id: 2,
            placements: Vec::new(),
        };
        store.commit_snapshot(&snap).expect("commit");
        assert_eq!(store.load_snapshot().expect("load"), Some(snap));
        let (mut journal, replay) = store.open_journal().expect("reopen journal");
        assert_eq!(replay.ops, ops, "journal survived the process boundary");
        journal.reset().expect("reset after compaction");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
