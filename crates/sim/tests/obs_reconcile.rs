//! The fault/recovery counters in [`prvm_sim::SimOutcome`] must reconcile
//! with the obs event stream: every `pm_failures` increment has a
//! `sim.pm_crash` event, every successful evacuation a `sim.evacuation`,
//! and so on.
//!
//! Lives in its own integration-test binary because it installs the
//! process-global JSONL sink; sharing a process with other event-emitting
//! tests would interleave their events into the log.

use prvm_baselines::{FirstFit, MinimumMigrationTime};
use prvm_sim::{build_cluster, simulate_faulty, FaultPlan, SimConfig, Workload, WorkloadConfig};
use prvm_traces::TraceKind;

#[test]
fn fault_counters_reconcile_with_event_stream() {
    let dir = std::env::temp_dir().join("prvm-obs-reconcile-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let events_path = dir.join("events.jsonl");
    prvm_obs::init(prvm_obs::ObsConfig {
        log: prvm_obs::LogMode::Off,
        events_path: Some(events_path.clone()),
    })
    .expect("install sink");

    let sim = SimConfig {
        horizon_s: 8 * 300,
        ..SimConfig::default()
    };
    let wl = WorkloadConfig {
        n_vms: 24,
        trace_kind: TraceKind::PlanetLab,
        m3_pms: 24,
        c3_pms: 12,
    };
    let plan = FaultPlan::none()
        .with_pm_crash(0, 1, Some(4))
        .with_pm_crash(2, 3, None)
        .with_migration_failures(0.4)
        .seeded(42);
    let workload = Workload::generate(&wl, sim.scans(), 42);
    let outcome = simulate_faulty(
        &sim,
        build_cluster(&wl),
        &workload,
        &mut FirstFit::new(),
        &mut MinimumMigrationTime::new(),
        &plan,
    );
    prvm_obs::flush().expect("flush sink");
    // Disable the sink before reading so nothing else writes.
    prvm_obs::init(prvm_obs::ObsConfig::default()).expect("reset sink");

    let log = std::fs::File::open(&events_path).expect("events file");
    let summary =
        prvm_obs::summarize_events(std::io::BufReader::new(log)).expect("valid event log");
    let count = |name: &str| -> usize {
        summary
            .event_counts
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, c)| usize::try_from(*c).unwrap_or(usize::MAX))
    };

    assert!(outcome.pm_failures > 0, "{outcome:?}");
    assert_eq!(count("sim.pm_crash"), outcome.pm_failures);
    assert_eq!(count("sim.evacuation"), outcome.evacuations);
    assert_eq!(
        count("sim.evacuation_abandoned"),
        outcome.evacuations_abandoned
    );
    assert_eq!(count("sim.migration_failed"), outcome.failed_migrations);
    assert_eq!(count("sim.pm_recover"), 1, "PM 0 recovers at scan 4");

    let _ = std::fs::remove_file(&events_path);
}
