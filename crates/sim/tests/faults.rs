//! Fault-injection integration tests: zero drift with the empty plan,
//! crash/evacuation behavior, and the accounting + audit invariants
//! under random fault plans.

use proptest::prelude::*;
use prvm_baselines::{FirstFit, MinimumMigrationTime};
use prvm_sim::{
    build_cluster, simulate, simulate_faulty, simulate_faulty_with_audit, FaultPlan, SimConfig,
    SimOutcome, Workload, WorkloadConfig,
};
use prvm_traces::TraceKind;

fn reference_setup() -> (SimConfig, WorkloadConfig) {
    (
        SimConfig {
            horizon_s: 4 * 3600,
            ..SimConfig::default()
        },
        WorkloadConfig {
            n_vms: 60,
            trace_kind: TraceKind::PlanetLab,
            m3_pms: 60,
            c3_pms: 30,
        },
    )
}

fn run_with_plan(sim: &SimConfig, wl: &WorkloadConfig, seed: u64, plan: &FaultPlan) -> SimOutcome {
    let workload = Workload::generate(wl, sim.scans(), seed);
    simulate_faulty(
        sim,
        build_cluster(wl),
        &workload,
        &mut FirstFit::new(),
        &mut MinimumMigrationTime::new(),
        plan,
    )
}

/// Golden zero-drift check: with no fault plan, the engine reproduces the
/// exact pre-fault-layer outcome for this pinned seed — down to the f64
/// bit patterns. If this test fails, the paper-reproduction path moved.
#[test]
fn empty_plan_is_byte_identical_to_pre_fault_golden() {
    let (sim, wl) = reference_setup();
    let workload = Workload::generate(&wl, sim.scans(), 2024);
    let plain = simulate(
        &sim,
        build_cluster(&wl),
        &workload,
        &mut FirstFit::new(),
        &mut MinimumMigrationTime::new(),
    );

    // Captured from the tree immediately before the fault layer landed.
    assert_eq!(plain.pms_used, 16);
    assert_eq!(plain.pms_used_initial, 16);
    assert_eq!(plain.pms_used_max_active, 16);
    assert_eq!(plain.migrations, 2);
    assert_eq!(plain.overload_events, 2);
    assert_eq!(plain.rejected_vms, 0);
    assert_eq!(
        plain.energy_kwh.to_bits(),
        0x40374f59bff756b3,
        "energy_kwh drifted: {}",
        plain.energy_kwh
    );
    assert_eq!(
        plain.slo_violation_pct.to_bits(),
        0x0,
        "slo_violation_pct drifted: {}",
        plain.slo_violation_pct
    );

    // The fault-specific counters are all zero on the paper path.
    assert_eq!(plain.pm_failures, 0);
    assert_eq!(plain.evacuations, 0);
    assert_eq!(plain.evacuations_abandoned, 0);
    assert_eq!(plain.failed_migrations, 0);
    assert_eq!(plain.recovery_time_s, 0);

    // And simulate with an explicit empty plan is the same run.
    let empty = run_with_plan(&sim, &wl, 2024, &FaultPlan::none());
    assert_eq!(plain, empty);
}

#[test]
fn pm_crash_evacuates_residents_and_accounts_recovery() {
    let (sim, wl) = reference_setup();
    let plan = FaultPlan::none().with_pm_crash(0, 2, Some(10)).seeded(7);
    let faulty = run_with_plan(&sim, &wl, 2024, &plan);

    assert_eq!(faulty.pm_failures, 1);
    assert!(
        faulty.evacuations > 0,
        "PM 0 hosts VMs under FirstFit at seed 2024: {faulty:?}"
    );
    // The generous pool re-places every evacuee immediately.
    assert_eq!(faulty.evacuations_abandoned, 0);
    assert_eq!(
        faulty.migration_attempts,
        faulty.migrations + faulty.evacuations + faulty.failed_migrations
    );
    // Re-placed the same scan the PM crashed: zero downtime repaired.
    assert_eq!(faulty.recovery_time_s, 0);

    // Determinism: the same plan and seed reproduce the outcome exactly.
    assert_eq!(faulty, run_with_plan(&sim, &wl, 2024, &plan));
}

#[test]
fn crash_without_capacity_abandons_after_bounded_retries() {
    // One PM, a workload that fills it, no spare capacity: every
    // evacuation attempt must fail and give up after evac_max_attempts —
    // without panicking — and the lost VMs surface as SLO casualties.
    let sim = SimConfig {
        horizon_s: 40 * 300,
        evac_max_attempts: 3,
        ..SimConfig::default()
    };
    let wl = WorkloadConfig {
        n_vms: 4,
        trace_kind: TraceKind::PlanetLab,
        m3_pms: 1,
        c3_pms: 0,
    };
    let plan = FaultPlan::none().with_pm_crash(0, 5, None);
    let o = run_with_plan(&sim, &wl, 11, &plan);
    assert_eq!(o.pm_failures, 1);
    assert_eq!(o.evacuations, 0, "nowhere to evacuate to: {o:?}");
    assert!(o.evacuations_abandoned > 0, "{o:?}");
    assert!(o.slo_violation_pct > 0.0, "offline VMs violate SLO: {o:?}");
    assert_eq!(o.recovery_time_s, 0);
}

#[test]
fn flaky_migrations_are_counted_and_retried() {
    let (sim, wl) = reference_setup();
    let plan = FaultPlan::none()
        .with_pm_crash(0, 2, None)
        .with_pm_crash(3, 4, None)
        .with_migration_failures(0.5)
        .seeded(5);
    let o = run_with_plan(&sim, &wl, 2024, &plan);
    assert_eq!(o.pm_failures, 2);
    assert_eq!(
        o.migration_attempts,
        o.migrations + o.evacuations + o.failed_migrations
    );
    // With p = 0.5 over dozens of attempts, both outcomes appear.
    assert!(o.failed_migrations > 0, "{o:?}");
    assert!(o.evacuations > 0, "{o:?}");
    // Retried evacuations land later than the crash scan: repaired
    // downtime is visible.
    assert!(o.recovery_time_s > 0, "{o:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random fault plans and seeds: runs are deterministic, the
    /// per-attempt migration accounting always reconciles, and the full
    /// cluster audit (capacity + anti-collocation + the down-PM rule)
    /// stays clean after every evacuation.
    #[test]
    fn fault_accounting_reconciles_and_audits_clean(
        seed in 0u64..400,
        fault_seed in 0u64..400,
        crash_pm in 0usize..40,
        crash_at in 0usize..10,
        // 0 encodes "never recovers" (the vendored proptest has no
        // prop::option strategy).
        recover_after in 0usize..12,
        second_pm in 0usize..40,
        // 10 encodes "no second crash".
        second_at in 0usize..11,
        migration_p in 0.0f64..0.6,
        corruption_p in 0.0f64..0.2,
    ) {
        let sim = SimConfig {
            horizon_s: 12 * 300,
            ..SimConfig::default()
        };
        let wl = WorkloadConfig {
            n_vms: 24,
            trace_kind: TraceKind::PlanetLab,
            m3_pms: 24,
            c3_pms: 12,
        };
        let recover_at = (recover_after > 0).then(|| crash_at + recover_after);
        let mut plan = FaultPlan::none()
            .seeded(fault_seed)
            .with_pm_crash(crash_pm, crash_at, recover_at)
            .with_migration_failures(migration_p)
            .with_trace_corruption(corruption_p);
        if second_at < 10 {
            plan = plan.with_pm_crash(second_pm, second_at, None);
        }

        let workload = Workload::generate(&wl, sim.scans(), seed);
        let (a, report) = simulate_faulty_with_audit(
            &sim,
            build_cluster(&wl),
            &workload,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
            &plan,
        );
        prop_assert!(report.is_clean(), "{report}");
        prop_assert_eq!(
            a.migration_attempts,
            a.migrations + a.evacuations + a.failed_migrations,
            "attempt accounting must reconcile: {:?}", a
        );
        prop_assert!((0.0..=100.0).contains(&a.slo_violation_pct));
        prop_assert!(a.pm_failures <= 2);

        let b = run_with_plan(&sim, &wl, seed, &plan);
        prop_assert_eq!(a, b, "fault runs must be deterministic");
    }
}
