//! Property-based tests over the simulation engine's accounting
//! invariants and the runtime audit layer.

use pagerankvm::{audit, AuditReport};
use proptest::prelude::*;
use prvm_baselines::{FirstFit, MinimumMigrationTime};
use prvm_model::{catalog, Assignment, Cluster, PlacementAlgorithm, VmId};
use prvm_sim::{
    build_cluster, simulate, simulate_traced, simulate_with_audit, ScanSample, SimConfig,
    TimeSeries, Workload, WorkloadConfig,
};
use prvm_traces::TraceKind;

fn arb_sample() -> impl Strategy<Value = ScanSample> {
    (
        (0usize..5000, 0usize..200, 0.0f64..1.0, 0usize..60),
        (0usize..40, 0usize..60, 0.0f64..5000.0),
    )
        .prop_map(
            |((scan, active_pms, mean_utilization, overloaded_pms), rest)| {
                let (migrations, slo_violations, energy_wh) = rest;
                ScanSample {
                    scan,
                    active_pms,
                    mean_utilization,
                    overloaded_pms,
                    migrations,
                    slo_violations,
                    energy_wh,
                    pm_failures: 0,
                    evacuations: 0,
                    failed_migrations: 0,
                }
            },
        )
}

fn outcome_for(n_vms: usize, seed: u64, hours: u64, burst: f64) -> prvm_sim::SimOutcome {
    let sim = SimConfig {
        horizon_s: hours * 3600,
        burst_factor: burst,
        ..SimConfig::default()
    };
    let wl = WorkloadConfig {
        n_vms,
        trace_kind: TraceKind::PlanetLab,
        m3_pms: n_vms.max(4),
        c3_pms: (n_vms / 2).max(2),
    };
    let workload = Workload::generate(&wl, sim.scans().max(1), seed);
    simulate(
        &sim,
        build_cluster(&wl),
        &workload,
        &mut FirstFit::new(),
        &mut MinimumMigrationTime::new(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Core accounting invariants hold for any small workload.
    #[test]
    fn outcome_invariants(
        n_vms in 1usize..40,
        seed in 0u64..1000,
        hours in 1u64..4,
        burst in 1.0f64..8.0,
    ) {
        let o = outcome_for(n_vms, seed, hours, burst);
        prop_assert_eq!(o.rejected_vms, 0, "pool is sized generously");
        prop_assert!(o.pms_used_initial >= 1);
        prop_assert!(o.pms_used >= o.pms_used_initial);
        prop_assert!(o.pms_used_max_active >= o.pms_used_initial);
        prop_assert!(o.pms_used_max_active <= o.pms_used);
        prop_assert!(o.energy_kwh > 0.0);
        prop_assert!((0.0..=100.0).contains(&o.slo_violation_pct));
        prop_assert!(o.overload_events <= (hours * 12) as usize);
    }

    /// Runs are reproducible and the traced variant never changes the
    /// outcome.
    #[test]
    fn traced_equals_untraced(n_vms in 1usize..30, seed in 0u64..500) {
        let sim = SimConfig {
            horizon_s: 3600,
            ..SimConfig::default()
        };
        let wl = WorkloadConfig {
            n_vms,
            trace_kind: TraceKind::GoogleCluster,
            m3_pms: n_vms.max(4),
            c3_pms: 2,
        };
        let workload = Workload::generate(&wl, sim.scans(), seed);
        let a = simulate(
            &sim,
            build_cluster(&wl),
            &workload,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
        );
        let (b, ts) = simulate_traced(
            &sim,
            build_cluster(&wl),
            &workload,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
        );
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(ts.len(), sim.scans());
        prop_assert_eq!(ts.total_migrations(), b.migrations);
    }

    /// Zero burst means zero demand: no overloads, no SLO violations, and
    /// idle-power-only energy.
    #[test]
    fn zero_demand_is_calm(n_vms in 1usize..25, seed in 0u64..200) {
        let o = outcome_for(n_vms, seed, 1, 0.0);
        prop_assert_eq!(o.migrations, 0);
        prop_assert_eq!(o.overload_events, 0);
        prop_assert_eq!(o.slo_violation_pct, 0.0);
        prop_assert_eq!(o.pms_used, o.pms_used_initial);
    }

    /// Every cluster state reachable by a random place/evict sequence
    /// passes the full invariant audit.
    #[test]
    fn random_place_evict_states_audit_clean(
        ops in prop::collection::vec((any::<bool>(), 0usize..64), 1..50),
    ) {
        let types = catalog::ec2_vm_types();
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 12);
        let mut ff = FirstFit::new();
        let mut resident: Vec<VmId> = Vec::new();
        for (place_op, k) in ops {
            if place_op || resident.is_empty() {
                let spec = types[k % types.len()].clone();
                if let Some(d) = ff.choose(&cluster, &spec, &|_| false) {
                    let id = cluster.place(d.pm, spec, d.assignment).expect("chosen fits");
                    resident.push(id);
                }
            } else {
                let id = resident.swap_remove(k % resident.len());
                cluster.remove(id).expect("still resident");
            }
            let report = audit::check_cluster(&cluster);
            prop_assert!(report.is_clean(), "{report}");
        }
    }

    /// A full simulation run — placements, evictions and migrations —
    /// keeps the cluster audit-clean after every step.
    #[test]
    fn simulated_states_audit_clean(n_vms in 1usize..25, seed in 0u64..300) {
        let sim = SimConfig {
            horizon_s: 3600,
            ..SimConfig::default()
        };
        let wl = WorkloadConfig {
            n_vms,
            trace_kind: TraceKind::PlanetLab,
            m3_pms: n_vms.max(4),
            c3_pms: 2,
        };
        let workload = Workload::generate(&wl, sim.scans(), seed);
        let (_, report) = simulate_with_audit(
            &sim,
            build_cluster(&wl),
            &workload,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
        );
        prop_assert!(report.is_clean(), "{report}");
        prop_assert!(report.capacity_checks > 0, "capacity family exercised");
        prop_assert!(report.anti_collocation_checks > 0, "anti-collocation family exercised");
    }

    /// Any time series survives a JSON round trip unchanged (the `--csv`
    /// companion format used for machine-readable dumps).
    #[test]
    fn timeseries_round_trips_through_json(
        samples in prop::collection::vec(arb_sample(), 0..20),
    ) {
        let mut ts = TimeSeries::new();
        for s in &samples {
            ts.push(*s);
        }
        let json = serde_json::to_string(&ts).expect("serializes");
        let back: TimeSeries = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(&back, &ts);

        // A lone sample round-trips too (field-level check).
        if let Some(first) = samples.first() {
            let json = serde_json::to_string(first).expect("serializes");
            let back: ScanSample = serde_json::from_str(&json).expect("parses");
            prop_assert_eq!(&back, first);
        }
    }
}

/// The checker is not vacuous: states the safe `Cluster` API refuses to
/// construct — fed in through the raw-parts checkers — are flagged.
#[test]
fn deliberate_violations_fire() {
    let mut report = AuditReport::default();
    // Both vCPUs of an m3.large pinned to core 0 breaks anti-collocation.
    audit::check_assignment_shape(
        &catalog::vm_m3_large(),
        &Assignment::new(vec![0, 0], vec![0]),
        16,
        4,
        "collocated vm",
        &mut report,
    );
    // A score vector with a NaN that also fails to sum to one.
    audit::check_score_vector(&[f64::NAN, 0.5], "bad scores", &mut report);
    assert!(!report.is_clean());
    assert!(report.violations.len() >= 2, "{report}");
}
