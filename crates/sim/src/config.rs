//! Simulation configuration (§VI-A, "Simulation").

use prvm_traces::TraceKind;
use serde::{Deserialize, Serialize};

/// Timing and threshold parameters of the simulated datacenter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Seconds between utilization scans; the paper uses 300 s.
    pub scan_interval_s: u64,
    /// Total simulated time; the paper simulates 24 h.
    pub horizon_s: u64,
    /// A PM whose CPU utilization exceeds this fraction is overloaded and
    /// triggers migration; the paper uses 0.9.
    pub overload_threshold: f64,
    /// A scan where an active PM's demand reaches this fraction counts as
    /// an SLO violation; the paper uses 1.0 (100 % CPU).
    pub slo_threshold: f64,
    /// CPU burst factor: a vCPU rated `α` GHz may consume up to
    /// `burst_factor · α` when the trace drives it hot. EC2 vCPU ratings
    /// are baseline guarantees, not caps; bursting is what makes packed
    /// hosts overload in CloudSim's utilization-driven runs (DESIGN.md §4).
    pub burst_factor: f64,
    /// Maximum placement attempts for a VM evacuated off a crashed PM
    /// before the engine gives up on it (fault injection only; DESIGN.md
    /// §9).
    pub evac_max_attempts: u32,
    /// Cap, in scans, on the exponential backoff between evacuation
    /// attempts (virtual time; fault injection only).
    pub evac_backoff_cap_scans: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            scan_interval_s: 300,
            horizon_s: 24 * 3600,
            overload_threshold: 0.9,
            slo_threshold: 1.0,
            burst_factor: 6.0,
            evac_max_attempts: 5,
            evac_backoff_cap_scans: 8,
        }
    }
}

impl SimConfig {
    /// Number of scan intervals in the horizon.
    ///
    /// # Panics
    ///
    /// Panics if `scan_interval_s` is zero.
    #[must_use]
    pub fn scans(&self) -> usize {
        assert!(self.scan_interval_s > 0, "scan interval must be positive");
        (self.horizon_s / self.scan_interval_s) as usize
    }
}

/// Workload shape: how many VMs, which trace family drives them, and how
/// large the PM pool is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of VM requests (the paper sweeps 1000–3000).
    pub n_vms: usize,
    /// The trace archive to emulate.
    pub trace_kind: TraceKind,
    /// M3 PMs available. Pools are sized generously — the metric is how
    /// many get *used*, not how many exist.
    pub m3_pms: usize,
    /// C3 PMs available.
    pub c3_pms: usize,
}

impl WorkloadConfig {
    /// A pool comfortably larger than any algorithm needs for `n_vms`
    /// EC2-mix VMs: one M3 per VM plus half as many C3s.
    #[must_use]
    pub fn sized_for(n_vms: usize, trace_kind: TraceKind) -> Self {
        Self {
            n_vms,
            trace_kind,
            m3_pms: n_vms.max(4),
            c3_pms: (n_vms / 2).max(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.scan_interval_s, 300);
        assert_eq!(c.horizon_s, 86400);
        assert_eq!(c.scans(), 288);
        assert_eq!(c.overload_threshold, 0.9);
    }

    #[test]
    fn sized_pool_scales_with_vms() {
        let w = WorkloadConfig::sized_for(3000, TraceKind::PlanetLab);
        assert_eq!(w.m3_pms, 3000);
        assert_eq!(w.c3_pms, 1500);
        let w = WorkloadConfig::sized_for(1, TraceKind::GoogleCluster);
        assert!(w.m3_pms >= 4 && w.c3_pms >= 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scan_interval_rejected() {
        let c = SimConfig {
            scan_interval_s: 0,
            ..SimConfig::default()
        };
        let _ = c.scans();
    }
}
