//! CloudSim-equivalent datacenter simulator for the PageRankVM
//! reproduction (§VI-A "Simulation").
//!
//! The simulator reproduces exactly the loop the paper's evaluation
//! depends on: place N VMs with a [`prvm_model::PlacementAlgorithm`], then
//! every 300 s over 24 h compute each PM's trace-driven CPU demand, flag
//! PMs above the 90 % overload threshold, migrate VMs off them (eviction
//! policy + the same placement algorithm for destinations), and account
//! the paper's four metrics: PMs used, energy (Table III), migrations and
//! SLO violations.
//!
//! ```
//! use prvm_sim::{simulate, SimConfig, Workload, WorkloadConfig, build_cluster};
//! use prvm_baselines::{FirstFit, MinimumMigrationTime};
//! use prvm_traces::TraceKind;
//!
//! let sim = SimConfig { horizon_s: 3600, ..SimConfig::default() };
//! let wl = WorkloadConfig { n_vms: 20, trace_kind: TraceKind::PlanetLab,
//!                           m3_pms: 20, c3_pms: 10 };
//! let workload = Workload::generate(&wl, sim.scans(), 42);
//! let outcome = simulate(&sim, build_cluster(&wl), &workload,
//!                        &mut FirstFit::new(), &mut MinimumMigrationTime::new());
//! assert_eq!(outcome.rejected_vms, 0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod energy;
pub mod engine;
pub mod runner;
pub mod timeseries;
pub mod workload;

pub use config::{SimConfig, WorkloadConfig};
pub use energy::PowerCurve;
pub use engine::{
    simulate, simulate_faulty, simulate_faulty_traced, simulate_faulty_with_audit, simulate_traced,
    simulate_with_audit, SimOutcome,
};
pub use prvm_faults::{FaultClock, FaultPlan};
pub use runner::{ec2_score_book, run_repeats, sweep, Algorithm, MetricSummary};
pub use timeseries::{ScanSample, TimeSeries};
pub use workload::{build_cluster, Workload};
