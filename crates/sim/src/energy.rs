//! The paper's energy model (Table III).
//!
//! Power consumption is a piecewise-linear function of CPU utilization,
//! sampled at 0 %, 20 %, …, 100 %. The two curves are the paper's scaled
//! figures for the M3 (Intel Xeon E5-2670 v2) and C3 (E5-2680 v2) server
//! types. A PM that hosts no VM is powered off and consumes nothing; an
//! idle-but-on PM consumes the 0 % figure.

use serde::{Deserialize, Serialize};

/// Sampling points of Table III (fractions of full CPU utilization).
pub const UTILIZATION_POINTS: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

/// A piecewise-linear power curve: watts at each of
/// [`UTILIZATION_POINTS`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCurve {
    /// Watts at 0 %, 20 %, 40 %, 60 %, 80 %, 100 % utilization.
    pub watts: [f64; 6],
}

impl PowerCurve {
    /// Table III, row E5-2670 (the M3 server).
    pub const E5_2670: Self = Self {
        watts: [337.3, 349.2, 363.6, 378.0, 396.0, 417.6],
    };

    /// Table III, row E5-2680 (the C3 server).
    pub const E5_2680: Self = Self {
        watts: [394.4, 408.3, 425.2, 442.0, 463.1, 488.3],
    };

    /// The curve for a PM type by its Table II name; unknown types get the
    /// E5-2670 curve (documented default).
    #[must_use]
    pub fn for_pm_type(name: &str) -> Self {
        match name {
            "C3" => Self::E5_2680,
            _ => Self::E5_2670,
        }
    }

    /// Watts drawn at `utilization` (clamped into `[0, 1]`), linearly
    /// interpolated between table points.
    #[must_use]
    pub fn watts_at(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let scaled = u * 5.0;
        let lo = (scaled.floor() as usize).min(4);
        let frac = scaled - lo as f64;
        self.watts[lo] + (self.watts[lo + 1] - self.watts[lo]) * frac
    }

    /// Energy in watt-hours for holding `utilization` for
    /// `duration_seconds`.
    #[must_use]
    pub fn energy_wh(&self, utilization: f64, duration_seconds: f64) -> f64 {
        self.watts_at(utilization) * duration_seconds / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_points_are_exact() {
        let m3 = PowerCurve::E5_2670;
        assert_eq!(m3.watts_at(0.0), 337.3);
        assert_eq!(m3.watts_at(0.2), 349.2);
        assert_eq!(m3.watts_at(1.0), 417.6);
        let c3 = PowerCurve::E5_2680;
        assert_eq!(c3.watts_at(0.6), 442.0);
    }

    #[test]
    fn interpolation_is_linear_between_points() {
        let m3 = PowerCurve::E5_2670;
        // Midpoint of 0 % and 20 %.
        let mid = m3.watts_at(0.1);
        assert!((mid - (337.3 + 349.2) / 2.0).abs() < 1e-9);
        // Monotone over the whole range.
        let mut last = 0.0;
        for i in 0..=100 {
            let w = m3.watts_at(i as f64 / 100.0);
            assert!(w >= last);
            last = w;
        }
    }

    #[test]
    fn utilization_is_clamped() {
        let c = PowerCurve::E5_2670;
        assert_eq!(c.watts_at(-0.5), c.watts_at(0.0));
        assert_eq!(c.watts_at(1.7), c.watts_at(1.0));
    }

    #[test]
    fn energy_integrates_power_over_time() {
        let c = PowerCurve::E5_2670;
        // One hour at 100 %: exactly 417.6 Wh.
        assert!((c.energy_wh(1.0, 3600.0) - 417.6).abs() < 1e-9);
        // 300 s at 0 %: 337.3 * 300/3600.
        assert!((c.energy_wh(0.0, 300.0) - 337.3 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn pm_type_lookup() {
        assert_eq!(PowerCurve::for_pm_type("M3"), PowerCurve::E5_2670);
        assert_eq!(PowerCurve::for_pm_type("C3"), PowerCurve::E5_2680);
        assert_eq!(PowerCurve::for_pm_type("other"), PowerCurve::E5_2670);
    }
}
