//! The simulation engine: initial placement, periodic scans, overload
//! detection, migration and the four metrics of §VI.

use crate::config::SimConfig;
use crate::energy::PowerCurve;
use crate::workload::Workload;
use pagerankvm::audit::{self, AuditReport};
use prvm_faults::{FaultClock, FaultPlan};
use prvm_model::units::convert;
use prvm_model::{Cluster, EvictionPolicy, Mhz, PlacementAlgorithm, PmId, VmId, VmSpec};
use prvm_obs::{event, Span};
use prvm_traces::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Everything one simulated run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Distinct PMs that hosted at least one VM at any time.
    pub pms_used: usize,
    /// PMs active immediately after the initial allocation.
    pub pms_used_initial: usize,
    /// Maximum number of *simultaneously* active PMs over the run — the
    /// PMs the datacenter actually needs to provide the service (the
    /// paper's Fig. 3 metric; EXPERIMENTS.md reports all three variants).
    pub pms_used_max_active: usize,
    /// Cumulative datacenter energy over the horizon, in kWh (Fig. 5).
    pub energy_kwh: f64,
    /// Number of VM migrations triggered by overload (Fig. 6).
    pub migrations: usize,
    /// Percentage of (active PM, scan) samples at or beyond the SLO
    /// threshold (Fig. 7): the SLATAH-style metric of \[11\].
    pub slo_violation_pct: f64,
    /// Scans in which at least one PM was overloaded.
    pub overload_events: usize,
    /// Requests no PM could host at initial placement (0 when the pool is
    /// sized correctly).
    pub rejected_vms: usize,
    /// PM crashes injected by the fault plan (0 without one).
    pub pm_failures: usize,
    /// VMs successfully re-placed after their PM crashed.
    pub evacuations: usize,
    /// Evacuations given up after [`SimConfig::evac_max_attempts`]
    /// placement attempts; each is an SLO casualty, never a panic.
    pub evacuations_abandoned: usize,
    /// Migration/evacuation attempts that failed in flight (the fault
    /// plan's transient migration failures).
    pub failed_migrations: usize,
    /// Every migration or evacuation attempt for which a destination was
    /// chosen; always `migrations + evacuations + failed_migrations`.
    pub migration_attempts: usize,
    /// Total VM downtime repaired by evacuations: Σ over evacuated VMs of
    /// (re-place scan − crash scan) × scan interval, in seconds.
    pub recovery_time_s: u64,
}

/// Live CPU demand of one VM at utilization `util`: the utilization times
/// its burstable capacity — `burst_factor ×` the per-vCPU reservation, but
/// a vCPU can never consume more than one physical core of its host
/// (`host_core_mhz`).
fn live_demand(vcpus: u64, vcpu_mhz: Mhz, host_core_mhz: Mhz, util: f64, burst: f64) -> Mhz {
    let per_vcpu = (vcpu_mhz.as_f64() * burst).min(host_core_mhz.as_f64());
    Mhz::from_f64_rounded(util * per_vcpu * convert::u64_to_f64(vcpus))
}

/// A VM knocked off a crashed PM, waiting for a successful re-placement.
/// `next_attempt` implements the capped exponential backoff in virtual
/// time (scans, not wall clock).
struct PendingEvac {
    vm: VmId,
    spec: VmSpec,
    crash_scan: usize,
    attempts: u32,
    next_attempt: usize,
}

/// Run one simulation: place `workload` with `placer`, then scan for
/// [`SimConfig::scans`] intervals, migrating VMs off overloaded PMs with
/// `evictor` + `placer`.
///
/// Deterministic given the workload seed and the algorithms.
#[must_use]
pub fn simulate(
    sim: &SimConfig,
    cluster: Cluster,
    workload: &Workload,
    placer: &mut dyn PlacementAlgorithm,
    evictor: &mut dyn EvictionPolicy,
) -> SimOutcome {
    simulate_impl(
        sim,
        cluster,
        workload,
        placer,
        evictor,
        &FaultPlan::none(),
        None,
        None,
    )
}

/// Like [`simulate`], but consulting `faults` each scan: scheduled PM
/// crashes evacuate their residents through the placer with bounded
/// retry, migrations may transiently fail, and trace reads may return
/// corrupted utilizations. With [`FaultPlan::none`] this is byte-identical
/// to [`simulate`].
#[must_use]
pub fn simulate_faulty(
    sim: &SimConfig,
    cluster: Cluster,
    workload: &Workload,
    placer: &mut dyn PlacementAlgorithm,
    evictor: &mut dyn EvictionPolicy,
    faults: &FaultPlan,
) -> SimOutcome {
    simulate_impl(sim, cluster, workload, placer, evictor, faults, None, None)
}

/// [`simulate_faulty`] plus the unconditional invariant audit of
/// [`simulate_with_audit`] — the entry point the fault proptests use to
/// prove evacuations never corrupt the cluster.
#[must_use]
pub fn simulate_faulty_with_audit(
    sim: &SimConfig,
    cluster: Cluster,
    workload: &Workload,
    placer: &mut dyn PlacementAlgorithm,
    evictor: &mut dyn EvictionPolicy,
    faults: &FaultPlan,
) -> (SimOutcome, AuditReport) {
    let mut report = AuditReport::default();
    let outcome = simulate_impl(
        sim,
        cluster,
        workload,
        placer,
        evictor,
        faults,
        None,
        Some(&mut report),
    );
    (outcome, report)
}

/// [`simulate_faulty`] plus the per-scan [`crate::TimeSeries`] of
/// [`simulate_traced`] (including the fault columns).
#[must_use]
pub fn simulate_faulty_traced(
    sim: &SimConfig,
    cluster: Cluster,
    workload: &Workload,
    placer: &mut dyn PlacementAlgorithm,
    evictor: &mut dyn EvictionPolicy,
    faults: &FaultPlan,
) -> (SimOutcome, crate::TimeSeries) {
    let mut ts = crate::TimeSeries::new();
    let outcome = simulate_impl(
        sim,
        cluster,
        workload,
        placer,
        evictor,
        faults,
        Some(&mut ts),
        None,
    );
    (outcome, ts)
}

/// Like [`simulate`], additionally running the full invariant audit
/// ([`pagerankvm::audit::check_cluster`]) after the initial allocation and
/// after every scan's migrations, and returning the accumulated
/// [`AuditReport`]. Plain [`simulate`] runs the same checks debug-assert
/// gated; this entry point makes them unconditional and observable.
#[must_use]
pub fn simulate_with_audit(
    sim: &SimConfig,
    cluster: Cluster,
    workload: &Workload,
    placer: &mut dyn PlacementAlgorithm,
    evictor: &mut dyn EvictionPolicy,
) -> (SimOutcome, AuditReport) {
    let mut report = AuditReport::default();
    let outcome = simulate_impl(
        sim,
        cluster,
        workload,
        placer,
        evictor,
        &FaultPlan::none(),
        None,
        Some(&mut report),
    );
    (outcome, report)
}

/// Like [`simulate`], additionally recording a per-scan
/// [`crate::TimeSeries`] (active PMs, utilization, overloads, migrations,
/// energy) for plotting or debugging.
#[must_use]
pub fn simulate_traced(
    sim: &SimConfig,
    cluster: Cluster,
    workload: &Workload,
    placer: &mut dyn PlacementAlgorithm,
    evictor: &mut dyn EvictionPolicy,
) -> (SimOutcome, crate::TimeSeries) {
    let mut ts = crate::TimeSeries::new();
    let outcome = simulate_impl(
        sim,
        cluster,
        workload,
        placer,
        evictor,
        &FaultPlan::none(),
        Some(&mut ts),
        None,
    );
    (outcome, ts)
}

/// Run the audit step: accumulate into an explicit report when one was
/// requested, otherwise debug-assert cleanliness (free in release).
fn audit_step(cluster: &Cluster, context: &str, report: Option<&mut AuditReport>) {
    match report {
        Some(report) => {
            let step = audit::check_cluster(cluster);
            if !step.is_clean() {
                prvm_obs::counter!(
                    "sim.audit_violations",
                    convert::usize_to_u64(step.violations.len())
                );
                event("sim.audit_violation")
                    .field("context", context.to_owned())
                    .field("violations", step.violations.len())
                    .emit();
            }
            report.merge(step);
        }
        None => audit::debug_check_cluster(cluster, context),
    }
}

#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn simulate_impl(
    sim: &SimConfig,
    mut cluster: Cluster,
    workload: &Workload,
    placer: &mut dyn PlacementAlgorithm,
    evictor: &mut dyn EvictionPolicy,
    faults: &FaultPlan,
    mut recorder: Option<&mut crate::TimeSeries>,
    mut auditor: Option<&mut AuditReport>,
) -> SimOutcome {
    let scans = sim.scans();
    let clock = FaultClock::new(faults);
    let has_faults = !faults.is_empty();

    // --- Initial allocation (Algorithm 2 driver) ------------------------
    let placement_span = Span::enter("placement");
    let mut specs = workload.specs.clone();
    placer.order_batch(&mut specs);
    let traces = workload.draw_traces(specs.len());

    let mut vm_demand: HashMap<VmId, (u64, Mhz, Trace)> = HashMap::new();
    let mut rejected = 0usize;
    for (spec, trace) in specs.into_iter().zip(traces) {
        match placer.choose(&cluster, &spec, &|_| false) {
            Some(d) => {
                let shape = (u64::from(spec.vcpus), spec.vcpu_mhz);
                match cluster.place(d.pm, spec, d.assignment) {
                    Ok(id) => {
                        vm_demand.insert(id, (shape.0, shape.1, trace));
                    }
                    Err(err) => {
                        debug_assert!(false, "placer returned invalid decision: {err}");
                        rejected += 1;
                    }
                }
            }
            None => rejected += 1,
        }
    }
    audit_step(&cluster, "initial placement", auditor.as_deref_mut());
    let pms_used_initial = cluster.active_pm_count();
    let mut max_active = pms_used_initial;
    drop(placement_span);
    prvm_obs::counter!("sim.rejected_vms", convert::usize_to_u64(rejected));
    event("sim.placed")
        .field("algorithm", placer.name())
        .field("placed", cluster.vm_count())
        .field("rejected", rejected)
        .field("active_pms", pms_used_initial)
        .emit();

    // --- Scan loop -------------------------------------------------------
    let mut energy_wh = 0.0f64;
    let mut migrations = 0usize;
    let mut overload_events = 0usize;
    let mut slo_samples = 0usize;
    let mut active_samples = 0usize;
    let mut pm_failures = 0usize;
    let mut evacuations = 0usize;
    let mut evacuations_abandoned = 0usize;
    let mut failed_migrations = 0usize;
    let mut migration_attempts = 0usize;
    let mut recovery_time_s = 0u64;
    let mut pending_evacs: Vec<PendingEvac> = Vec::new();

    // Per-scan profile series: wall time paired with the scan's virtual
    // time, so a profiling run can line wall-clock cost up against the
    // simulated clock. Handles are resolved once, outside the loop.
    let registry = prvm_obs::Registry::global();
    let scan_wall_series = registry.series("sim.scan.wall_ms");
    let scan_virtual_series = registry.series("sim.scan.virtual_time_s");

    for t in 0..scans {
        let _scan_span = Span::enter("scan");
        // The sanctioned clock read (D002): scan timing feeds the wall-ms
        // series only, never the simulated clock or placement decisions.
        let scan_started = prvm_obs::timeline::stamp();
        let pm_failures_before = pm_failures;
        let evacuations_before = evacuations;
        let failed_migrations_before = failed_migrations;
        // How many VMs are offline this scan — waiting for evacuation or
        // abandoned right now. Each counts as one SLO-violating sample.
        let mut scan_offline = 0usize;

        // --- Fault processing (skipped entirely on the paper path) -------
        if has_faults {
            // Recoveries first, so a PM that recovers at t can host
            // evacuees the same scan.
            for pm_idx in clock.recoveries_at(t) {
                let pm = PmId(pm_idx);
                if pm_idx < cluster.len() && cluster.is_down(pm) {
                    let up = cluster.mark_up(pm);
                    debug_assert!(up.is_ok(), "range-checked above");
                    event("sim.pm_recover")
                        .field("pm", pm_idx)
                        .field("scan", t)
                        .emit();
                }
            }
            for pm_idx in clock.crashes_at(t) {
                let pm = PmId(pm_idx);
                if pm_idx >= cluster.len() || cluster.is_down(pm) {
                    continue;
                }
                let victims = cluster.resident_vms(pm);
                let down = cluster.mark_down(pm);
                debug_assert!(down.is_ok(), "range-checked above");
                pm_failures += 1;
                prvm_obs::counter!("sim.pm_failures");
                for vm in &victims {
                    if let Ok((_, spec, _)) = cluster.remove(*vm) {
                        pending_evacs.push(PendingEvac {
                            vm: *vm,
                            spec,
                            crash_scan: t,
                            attempts: 0,
                            next_attempt: t,
                        });
                    }
                }
                event("sim.pm_crash")
                    .field("pm", pm_idx)
                    .field("scan", t)
                    .field("evacuating", victims.len())
                    .emit();
            }

            // Evacuation attempts, oldest first, with capped exponential
            // backoff in virtual time. Giving up is an SLO casualty, not
            // a panic.
            let mut still_pending = Vec::new();
            for mut ev in pending_evacs.drain(..) {
                if ev.next_attempt > t {
                    still_pending.push(ev);
                    continue;
                }
                ev.attempts += 1;
                let mut placed = false;
                if let Some(d) = placer.choose(&cluster, &ev.spec, &|_| false) {
                    migration_attempts += 1;
                    if clock.migration_fails(t, ev.vm.0, ev.attempts) {
                        failed_migrations += 1;
                        prvm_obs::counter!("sim.failed_migrations");
                        event("sim.migration_failed")
                            .field("vm", ev.vm.0)
                            .field("scan", t)
                            .field("kind", "evacuation")
                            .emit();
                    } else {
                        match cluster.place_as(ev.vm, d.pm, ev.spec.clone(), d.assignment) {
                            Ok(()) => placed = true,
                            Err(err) => {
                                debug_assert!(false, "placer returned invalid evacuation: {err}");
                            }
                        }
                    }
                }
                if placed {
                    evacuations += 1;
                    let downtime = convert::usize_to_u64(t - ev.crash_scan) * sim.scan_interval_s;
                    recovery_time_s += downtime;
                    prvm_obs::counter!("sim.evacuations");
                    event("sim.evacuation")
                        .field("vm", ev.vm.0)
                        .field("scan", t)
                        .field("attempts", u64::from(ev.attempts))
                        .field("downtime_s", downtime)
                        .emit();
                } else if ev.attempts >= sim.evac_max_attempts {
                    evacuations_abandoned += 1;
                    scan_offline += 1;
                    event("sim.evacuation_abandoned")
                        .field("vm", ev.vm.0)
                        .field("scan", t)
                        .field("attempts", u64::from(ev.attempts))
                        .emit();
                } else {
                    let backoff = (1usize << ev.attempts.min(16))
                        .min(sim.evac_backoff_cap_scans)
                        .max(1);
                    ev.next_attempt = t + backoff;
                    still_pending.push(ev);
                }
            }
            pending_evacs = still_pending;
            scan_offline += pending_evacs.len();
            audit_step(&cluster, "fault recovery", auditor.as_deref_mut());
        }
        // Per-PM aggregate demand, per-VM scan demand, SLO and energy
        // accounting. Each VM's demand is evaluated against its host's
        // core speed (the burst ceiling).
        let mut pm_demand: HashMap<PmId, Mhz> = HashMap::new();
        let mut scan_demand: HashMap<VmId, Mhz> = HashMap::new();
        let mut scan_active = 0usize;
        let mut scan_slo = 0usize;
        let mut scan_energy_wh = 0.0f64;
        let mut scan_util_sum = 0.0f64;
        for pm_id in cluster.used_pms() {
            let pm = cluster.pm(pm_id);
            let core = pm.spec().core_mhz;
            let mut demand = Mhz::ZERO;
            for (id, _, _) in pm.vms() {
                // Every placed VM was registered in vm_demand up front;
                // a miss would be an accounting bug, so skip-and-assert
                // rather than panic (P001).
                let Some((vcpus, vcpu_mhz, trace)) = vm_demand.get(&id) else {
                    debug_assert!(false, "VM {id:?} placed but absent from vm_demand");
                    continue;
                };
                // A corrupted read replaces the recorded utilization with
                // deterministic garbage (no-op without a fault plan).
                let util = clock
                    .corrupt_utilization(t, id.0)
                    .unwrap_or_else(|| trace.at(t));
                let d = live_demand(*vcpus, *vcpu_mhz, core, util, sim.burst_factor);
                scan_demand.insert(id, d);
                demand += d;
            }
            let cap = pm.spec().total_cpu();
            let util = demand.fraction_of(cap);
            scan_active += 1;
            scan_util_sum += util.min(1.0);
            if util >= sim.slo_threshold {
                scan_slo += 1;
            }
            scan_energy_wh += PowerCurve::for_pm_type(&pm.spec().name)
                .energy_wh(util, sim.scan_interval_s as f64);
            pm_demand.insert(pm_id, demand);
        }
        // Offline VMs (awaiting evacuation, or abandoned this scan) are
        // not serving: each is one violating sample.
        active_samples += scan_active + scan_offline;
        slo_samples += scan_slo + scan_offline;
        energy_wh += scan_energy_wh;

        // Overload detection: the set is fixed before migrations so an
        // overloaded PM is never chosen as a destination this scan.
        let overloaded: Vec<PmId> = cluster
            .used_pms()
            .filter(|pm_id| {
                let cap = cluster.pm(*pm_id).spec().total_cpu();
                // Populated for every used PM in the scan loop above; a
                // missing entry means zero demand, never overload.
                pm_demand
                    .get(pm_id)
                    .is_some_and(|d| d.fraction_of(cap) > sim.overload_threshold)
            })
            .collect();
        if !overloaded.is_empty() {
            overload_events += 1;
            prvm_obs::counter!("sim.overload_events");
        }
        let overloaded_set: std::collections::HashSet<PmId> = overloaded.iter().copied().collect();
        let scan_overloaded = overloaded.len();
        let migrations_before = migrations;

        for src in overloaded {
            loop {
                let cap = cluster.pm(src).spec().total_cpu();
                let Some(current) = pm_demand.get(&src).copied() else {
                    debug_assert!(false, "overloaded PM {src:?} absent from pm_demand");
                    break;
                };
                if current.fraction_of(cap) <= sim.overload_threshold || cluster.pm(src).is_empty()
                {
                    break;
                }
                let Some(victim) = evictor.select(cluster.pm(src), &|id| {
                    scan_demand.get(&id).copied().unwrap_or(Mhz::ZERO)
                }) else {
                    break;
                };
                let victim_demand = scan_demand.get(&victim).copied().unwrap_or(Mhz::ZERO);
                let Ok((_, spec, old_assignment)) = cluster.remove(victim) else {
                    debug_assert!(false, "evictor selected a non-resident VM {}", victim.0);
                    break;
                };

                // Destination must not be the source, must not already be
                // overloaded, and must not *become* overloaded by this VM.
                let exclude = |pm: PmId| -> bool {
                    if pm == src || overloaded_set.contains(&pm) {
                        return true;
                    }
                    let cap = cluster.pm(pm).spec().total_cpu();
                    let d = pm_demand.get(&pm).copied().unwrap_or(Mhz::ZERO);
                    (d + victim_demand).fraction_of(cap) > sim.overload_threshold
                };
                let destination = placer.choose(&cluster, &spec, &exclude);
                let mut in_flight_failure = false;
                let migrated = match &destination {
                    Some(d) => {
                        migration_attempts += 1;
                        if clock.migration_fails(t, victim.0, 0) {
                            // The fault plan fails this attempt in flight:
                            // the VM stays on its (overloaded) source.
                            in_flight_failure = true;
                            false
                        } else {
                            match cluster.place_as(victim, d.pm, spec.clone(), d.assignment.clone())
                            {
                                Ok(()) => true,
                                Err(err) => {
                                    debug_assert!(
                                        false,
                                        "placer returned invalid migration: {err}"
                                    );
                                    false
                                }
                            }
                        }
                    }
                    None => false,
                };
                if migrated {
                    let Some(d) = destination else { break };
                    migrations += 1;
                    *pm_demand.entry(d.pm).or_insert(Mhz::ZERO) += victim_demand;
                    if let Some(src_demand) = pm_demand.get_mut(&src) {
                        *src_demand = current.saturating_sub(victim_demand);
                    }
                } else {
                    // Nowhere to go (or the attempt failed in flight):
                    // restore and stop evicting here.
                    if in_flight_failure {
                        failed_migrations += 1;
                        prvm_obs::counter!("sim.failed_migrations");
                        event("sim.migration_failed")
                            .field("vm", victim.0)
                            .field("scan", t)
                            .field("kind", "overload")
                            .emit();
                    }
                    let restored = cluster.place_as(victim, src, spec, old_assignment);
                    debug_assert!(restored.is_ok(), "restoring a just-removed VM cannot fail");
                    break;
                }
            }
        }
        max_active = max_active.max(cluster.active_pm_count());
        audit_step(&cluster, "scan migrations", auditor.as_deref_mut());
        let mean_utilization = if scan_active == 0 {
            0.0
        } else {
            scan_util_sum / convert::usize_to_f64(scan_active)
        };
        prvm_obs::counter!(
            "sim.migrations",
            convert::usize_to_u64(migrations - migrations_before)
        );
        prvm_obs::gauge!("sim.mean_utilization", mean_utilization);
        event("sim.scan")
            .field("scan", t)
            .field("active_pms", scan_active)
            .field("mean_utilization", mean_utilization)
            .field("overloaded_pms", scan_overloaded)
            .field("migrations", migrations - migrations_before)
            .field("slo_violations", scan_slo)
            .field("energy_wh", scan_energy_wh)
            .field("pm_failures", pm_failures - pm_failures_before)
            .field("evacuations", evacuations - evacuations_before)
            .field(
                "failed_migrations",
                failed_migrations - failed_migrations_before,
            )
            .emit();
        if let Some(ts) = recorder.as_deref_mut() {
            ts.push(crate::ScanSample {
                scan: t,
                active_pms: scan_active,
                mean_utilization,
                overloaded_pms: scan_overloaded,
                migrations: migrations - migrations_before,
                slo_violations: scan_slo,
                energy_wh: scan_energy_wh,
                pm_failures: pm_failures - pm_failures_before,
                evacuations: evacuations - evacuations_before,
                failed_migrations: failed_migrations - failed_migrations_before,
            });
        }
        scan_wall_series.push(scan_started.elapsed().as_secs_f64() * 1e3);
        scan_virtual_series.push(convert::usize_to_f64(t) * sim.scan_interval_s as f64);
    }

    let outcome = SimOutcome {
        pms_used: cluster.ever_used_count(),
        pms_used_initial,
        pms_used_max_active: max_active,
        energy_kwh: energy_wh / 1000.0,
        migrations,
        slo_violation_pct: if active_samples == 0 {
            0.0
        } else {
            100.0 * convert::usize_to_f64(slo_samples) / convert::usize_to_f64(active_samples)
        },
        overload_events,
        rejected_vms: rejected,
        pm_failures,
        evacuations,
        evacuations_abandoned,
        failed_migrations,
        migration_attempts,
        recovery_time_s,
    };
    prvm_obs::gauge!("sim.energy_kwh", outcome.energy_kwh);
    prvm_obs::gauge!("sim.slo_violation_pct", outcome.slo_violation_pct);
    prvm_obs::gauge!(
        "sim.pms_used_max_active",
        convert::usize_to_f64(outcome.pms_used_max_active)
    );
    event("sim.done")
        .field("scans", scans)
        .field("pms_used", outcome.pms_used)
        .field("pms_used_max_active", outcome.pms_used_max_active)
        .field("energy_kwh", outcome.energy_kwh)
        .field("migrations", outcome.migrations)
        .field("slo_violation_pct", outcome.slo_violation_pct)
        .field("overload_events", outcome.overload_events)
        .field("rejected_vms", outcome.rejected_vms)
        .field("pm_failures", outcome.pm_failures)
        .field("evacuations", outcome.evacuations)
        .field("evacuations_abandoned", outcome.evacuations_abandoned)
        .field("failed_migrations", outcome.failed_migrations)
        .field("recovery_time_s", outcome.recovery_time_s)
        .emit();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use crate::workload::build_cluster;
    use prvm_baselines::{FirstFit, MinimumMigrationTime};
    use prvm_model::catalog;
    use prvm_traces::{TraceKind, TraceLibrary};

    fn small_cfg() -> (SimConfig, WorkloadConfig) {
        (
            SimConfig::default(),
            WorkloadConfig {
                n_vms: 40,
                trace_kind: TraceKind::PlanetLab,
                m3_pms: 40,
                c3_pms: 20,
            },
        )
    }

    fn run(seed: u64) -> SimOutcome {
        let (sim, wl) = small_cfg();
        let workload = Workload::generate(&wl, sim.scans(), seed);
        let cluster = build_cluster(&wl);
        simulate(
            &sim,
            cluster,
            &workload,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
        )
    }

    #[test]
    fn simulation_is_deterministic() {
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn no_rejections_with_generous_pool() {
        let o = run(2);
        assert_eq!(o.rejected_vms, 0);
        assert!(o.pms_used >= o.pms_used_initial);
        assert!(o.pms_used_initial > 0);
    }

    #[test]
    fn energy_is_positive_and_bounded() {
        let o = run(3);
        assert!(o.energy_kwh > 0.0);
        // Upper bound: every pool PM at max power for 24 h.
        let bound = 60.0 * 488.3 * 24.0 / 1000.0;
        assert!(o.energy_kwh < bound, "{}", o.energy_kwh);
    }

    #[test]
    fn slo_percentage_is_a_percentage() {
        let o = run(4);
        assert!((0.0..=100.0).contains(&o.slo_violation_pct));
    }

    /// A crafted hot scenario: four `[1,1,1,1]` jobs packed by FirstFit on
    /// one GENI node, all running at 100 % utilization.
    fn hot_geni_outcome(pms: usize) -> SimOutcome {
        let sim = SimConfig {
            horizon_s: 600,
            burst_factor: 1.0,
            ..SimConfig::default()
        };
        let hot = Trace::constant(1.0, sim.scans());
        let workload = Workload::from_parts(
            vec![catalog::geni_vm_4(); 4],
            TraceLibrary::from_traces(TraceKind::GoogleCluster, vec![hot]),
            0,
        );
        let cluster = Cluster::homogeneous(catalog::geni_pm(), pms);
        simulate(
            &sim,
            cluster,
            &workload,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
        )
    }

    #[test]
    fn overload_triggers_migration_when_capacity_exists() {
        // FirstFit packs all four jobs on PM 0 (16/16 slots at 100 %
        // demand): overloaded and SLO-violating. The spare PM receives a
        // migration (one job moves: 12/16 = 75 % ≤ 90 % afterwards).
        let o = hot_geni_outcome(2);
        assert!(o.overload_events > 0);
        assert!(o.slo_violation_pct > 0.0);
        assert!(o.migrations >= 1, "migrations = {}", o.migrations);
        assert_eq!(o.pms_used, 2);
    }

    #[test]
    fn overload_without_spare_capacity_cannot_migrate() {
        let o = hot_geni_outcome(1);
        assert!(o.overload_events > 0);
        assert_eq!(o.migrations, 0, "nowhere to migrate");
        assert_eq!(o.pms_used, 1);
    }

    #[test]
    fn burst_factor_drives_overloads() {
        // Identical runs except for the burst factor: bursty vCPUs must
        // produce at least as many overload events.
        let (mut sim, wl) = small_cfg();
        let workload = Workload::generate(&wl, sim.scans(), 7);
        sim.burst_factor = 1.0;
        let calm = simulate(
            &sim,
            build_cluster(&wl),
            &workload,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
        );
        sim.burst_factor = 4.0;
        let bursty = simulate(
            &sim,
            build_cluster(&wl),
            &workload,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
        );
        assert!(bursty.overload_events >= calm.overload_events);
        assert!(bursty.energy_kwh >= calm.energy_kwh);
    }

    #[test]
    fn traced_run_matches_untraced_and_accounts_consistently() {
        let (sim, wl) = small_cfg();
        let workload = Workload::generate(&wl, sim.scans(), 8);
        let plain = simulate(
            &sim,
            build_cluster(&wl),
            &workload,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
        );
        let (traced, ts) = simulate_traced(
            &sim,
            build_cluster(&wl),
            &workload,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
        );
        assert_eq!(plain, traced, "recording must not change the run");
        assert_eq!(ts.len(), sim.scans());
        assert_eq!(ts.total_migrations(), traced.migrations);
        let slo: usize = ts.samples().iter().map(|s| s.slo_violations).sum();
        let active: usize = ts.samples().iter().map(|s| s.active_pms).sum();
        let pct = 100.0 * slo as f64 / active as f64;
        assert!((pct - traced.slo_violation_pct).abs() < 1e-9);
        let energy: f64 = ts.samples().iter().map(|s| s.energy_wh).sum();
        assert!((energy / 1000.0 - traced.energy_kwh).abs() < 1e-9);
    }

    /// Every scan pushes one (wall ms, virtual s) pair into the global
    /// registry's profile series. Other tests in this process also run
    /// scans concurrently, so only growth is asserted, not exact
    /// contents.
    #[test]
    fn scan_loop_records_virtual_time_series() {
        let registry = prvm_obs::Registry::global();
        let wall = registry.series("sim.scan.wall_ms");
        let virtual_time = registry.series("sim.scan.virtual_time_s");
        let wall_before = wall.len();
        let virtual_before = virtual_time.len();
        let (sim, _) = small_cfg();
        run(11);
        assert!(
            wall.len() >= wall_before + sim.scans(),
            "wall series grew {} < {} scans",
            wall.len() - wall_before,
            sim.scans()
        );
        assert!(virtual_time.len() >= virtual_before + sim.scans());
        // Virtual timestamps are whole seconds >= 0 (scan * interval);
        // wall times are finite and non-negative.
        assert!(virtual_time
            .values()
            .iter()
            .all(|v| *v >= 0.0 && v.fract() == 0.0));
        assert!(wall.values().iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn rejections_counted_when_pool_too_small() {
        let sim = SimConfig {
            horizon_s: 300,
            ..SimConfig::default()
        };
        let wl = WorkloadConfig {
            n_vms: 200,
            trace_kind: TraceKind::PlanetLab,
            m3_pms: 1,
            c3_pms: 0,
        };
        let workload = Workload::generate(&wl, sim.scans(), 9);
        let o = simulate(
            &sim,
            build_cluster(&wl),
            &workload,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
        );
        assert!(o.rejected_vms > 0);
        assert_eq!(o.pms_used, 1);
    }
}
