//! Per-scan time series of a simulation run — the raw data behind the
//! figures, exportable as CSV for external plotting.

use serde::{Deserialize, Serialize};
use std::io::Write;

/// One scan's snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanSample {
    /// Scan index (multiply by the scan interval for wall-clock time).
    pub scan: usize,
    /// PMs hosting at least one VM.
    pub active_pms: usize,
    /// Mean CPU demand / capacity across active PMs.
    pub mean_utilization: f64,
    /// PMs over the overload threshold this scan (before migration).
    pub overloaded_pms: usize,
    /// Migrations performed this scan.
    pub migrations: usize,
    /// Active-PM samples at/above the SLO threshold this scan.
    pub slo_violations: usize,
    /// Energy drawn this scan, in watt-hours.
    pub energy_wh: f64,
    /// PMs that crashed this scan (0 without a fault plan).
    pub pm_failures: usize,
    /// VMs successfully evacuated off crashed PMs this scan.
    pub evacuations: usize,
    /// Migration/evacuation attempts that failed in flight this scan.
    pub failed_migrations: usize,
}

/// The full per-scan record of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<ScanSample>,
}

impl TimeSeries {
    /// An empty series (filled by [`crate::simulate_traced`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one scan's snapshot.
    pub fn push(&mut self, sample: ScanSample) {
        self.samples.push(sample);
    }

    /// All samples in scan order.
    #[must_use]
    pub fn samples(&self) -> &[ScanSample] {
        &self.samples
    }

    /// Number of recorded scans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Scan index with the highest mean utilization, if any.
    #[must_use]
    pub fn peak_scan(&self) -> Option<usize> {
        self.samples
            .iter()
            .max_by(|a, b| a.mean_utilization.total_cmp(&b.mean_utilization))
            .map(|s| s.scan)
    }

    /// Total migrations across the series.
    #[must_use]
    pub fn total_migrations(&self) -> usize {
        self.samples.iter().map(|s| s.migrations).sum()
    }

    /// Total PM crashes across the series.
    #[must_use]
    pub fn total_pm_failures(&self) -> usize {
        self.samples.iter().map(|s| s.pm_failures).sum()
    }

    /// Write the series as CSV (`scan,active_pms,mean_utilization,…`).
    ///
    /// A `&mut` reference works as the writer (C-RW-VALUE): pass
    /// `&mut file`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "scan,active_pms,mean_utilization,overloaded_pms,migrations,slo_violations,energy_wh,\
             pm_failures,evacuations,failed_migrations"
        )?;
        for s in &self.samples {
            writeln!(
                w,
                "{},{},{:.6},{},{},{},{:.3},{},{},{}",
                s.scan,
                s.active_pms,
                s.mean_utilization,
                s.overloaded_pms,
                s.migrations,
                s.slo_violations,
                s.energy_wh,
                s.pm_failures,
                s.evacuations,
                s.failed_migrations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(scan: usize, migr: usize, util: f64) -> ScanSample {
        ScanSample {
            scan,
            active_pms: 3,
            mean_utilization: util,
            overloaded_pms: 0,
            migrations: migr,
            slo_violations: 0,
            energy_wh: 1.5,
            pm_failures: 0,
            evacuations: 0,
            failed_migrations: 0,
        }
    }

    #[test]
    fn accumulates_and_summarises() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(sample(0, 2, 0.3));
        ts.push(sample(1, 1, 0.8));
        ts.push(sample(2, 0, 0.5));
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.total_migrations(), 3);
        assert_eq!(ts.total_pm_failures(), 0);
        assert_eq!(ts.peak_scan(), Some(1));
    }

    #[test]
    fn csv_round_trips_header_and_rows() {
        let mut ts = TimeSeries::new();
        ts.push(sample(0, 2, 0.25));
        let mut buf = Vec::new();
        ts.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("scan,active_pms"));
        assert!(lines[1].starts_with("0,3,0.25"));
    }

    #[test]
    fn empty_series_has_no_peak() {
        assert_eq!(TimeSeries::new().peak_scan(), None);
    }

    #[test]
    fn csv_output_matches_golden() {
        // Exact golden output: column order and float precision are part
        // of the format contract (external plotting scripts parse this).
        let mut ts = TimeSeries::new();
        ts.push(ScanSample {
            scan: 0,
            active_pms: 2,
            mean_utilization: 0.5,
            overloaded_pms: 1,
            migrations: 3,
            slo_violations: 1,
            energy_wh: 12.3456,
            pm_failures: 1,
            evacuations: 2,
            failed_migrations: 1,
        });
        ts.push(ScanSample {
            scan: 1,
            active_pms: 10,
            mean_utilization: 0.123456789,
            overloaded_pms: 0,
            migrations: 0,
            slo_violations: 0,
            energy_wh: 0.0,
            pm_failures: 0,
            evacuations: 0,
            failed_migrations: 0,
        });
        let mut buf = Vec::new();
        ts.write_csv(&mut buf).unwrap();
        let expected = "\
scan,active_pms,mean_utilization,overloaded_pms,migrations,slo_violations,energy_wh,pm_failures,evacuations,failed_migrations
0,2,0.500000,1,3,1,12.346,1,2,1
1,10,0.123457,0,0,0,0.000,0,0,0
";
        assert_eq!(String::from_utf8(buf).unwrap(), expected);
    }
}
