//! Repeated-run experiment harness: the paper repeats every configuration
//! (it uses 100 repetitions) and reports the median with 1st/99th
//! percentile error bars.

use crate::config::{SimConfig, WorkloadConfig};
use crate::engine::{simulate, SimOutcome};
use crate::workload::{build_cluster, Workload};
use pagerankvm::{PageRankEviction, PageRankVmPlacer, ScoreBook, TwoChoicePlacer};
use prvm_baselines::{BestFit, CompVm, FfdSum, FirstFit, MinimumMigrationTime, WorstFit};
use prvm_model::{catalog, EvictionPolicy, PlacementAlgorithm};
use prvm_traces::stats::Percentiles;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The placement algorithms the experiments compare (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// PageRankVM with its own eviction rule.
    PageRankVm,
    /// The 2-choice sampled variant of PageRankVM (§V-C).
    TwoChoice,
    /// First Fit with CloudSim's MMT eviction.
    FirstFit,
    /// FFDSum with MMT eviction.
    FfdSum,
    /// CompVM with MMT eviction.
    CompVm,
    /// Best fit (ablation extra).
    BestFit,
    /// Worst fit (ablation extra).
    WorstFit,
}

impl Algorithm {
    /// The four algorithms of the paper's figures, in plot order.
    pub const PAPER_SET: [Algorithm; 4] = [
        Algorithm::PageRankVm,
        Algorithm::CompVm,
        Algorithm::FfdSum,
        Algorithm::FirstFit,
    ];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::PageRankVm => "PageRankVM",
            Self::TwoChoice => "PageRankVM-2choice",
            Self::FirstFit => "FF",
            Self::FfdSum => "FFDSum",
            Self::CompVm => "CompVM",
            Self::BestFit => "BestFit",
            Self::WorstFit => "WorstFit",
        }
    }

    /// Build the placer and eviction policy for one run.
    ///
    /// `book` carries the Profile–PageRank score tables; only the
    /// PageRank-based algorithms use it.
    #[must_use]
    pub fn build(
        self,
        book: &Arc<ScoreBook>,
        seed: u64,
    ) -> (Box<dyn PlacementAlgorithm>, Box<dyn EvictionPolicy>) {
        match self {
            Self::PageRankVm => (
                Box::new(PageRankVmPlacer::new(book.clone())),
                Box::new(PageRankEviction::new(book.clone())),
            ),
            Self::TwoChoice => (
                Box::new(TwoChoicePlacer::new(book.clone(), seed)),
                Box::new(PageRankEviction::new(book.clone())),
            ),
            Self::FirstFit => (
                Box::new(FirstFit::new()),
                Box::new(MinimumMigrationTime::new()),
            ),
            Self::FfdSum => (
                Box::new(FfdSum::new(catalog::pm_m3())),
                Box::new(MinimumMigrationTime::new()),
            ),
            Self::CompVm => (
                Box::new(CompVm::new()),
                Box::new(MinimumMigrationTime::new()),
            ),
            Self::BestFit => (
                Box::new(BestFit::new()),
                Box::new(MinimumMigrationTime::new()),
            ),
            Self::WorstFit => (
                Box::new(WorstFit::new()),
                Box::new(MinimumMigrationTime::new()),
            ),
        }
    }
}

/// Median/p1/p99 summaries of every metric across the repeats of one
/// configuration — one "error bar" of the paper's figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Algorithm display name.
    pub algorithm: String,
    /// Number of VM requests.
    pub n_vms: usize,
    /// Trace family label.
    pub trace: String,
    /// Repeats aggregated.
    pub repeats: usize,
    /// Distinct PMs ever used over the run.
    pub pms_used: Percentiles,
    /// PMs active right after initial allocation (before any migration).
    pub pms_used_initial: Percentiles,
    /// Peak simultaneously-active PMs — the Fig. 3 / Fig. 4(a) metric.
    pub pms_used_max_active: Percentiles,
    /// Energy in kWh (Fig. 5).
    pub energy_kwh: Percentiles,
    /// Migrations (Fig. 6 / Fig. 4(b)).
    pub migrations: Percentiles,
    /// SLO violation percentage (Fig. 7 / Fig. 8).
    pub slo_pct: Percentiles,
    /// Mean rejected requests (should be 0).
    pub mean_rejected: f64,
}

/// Run `algorithm` `repeats` times on fresh seeded workloads and summarise.
///
/// Repeats are independent (each builds its own workload, cluster and
/// placer from its own seed), so they run in parallel on the global
/// [`prvm_par::Pool`]; outcomes are collected in repeat order, keeping
/// every percentile summary identical to a sequential run at any
/// worker count (DESIGN.md §10).
#[must_use]
pub fn run_repeats(
    algorithm: Algorithm,
    book: &Arc<ScoreBook>,
    sim: &SimConfig,
    wl: &WorkloadConfig,
    repeats: usize,
    base_seed: u64,
) -> MetricSummary {
    let outcomes: Vec<SimOutcome> = prvm_par::Pool::global().map_index(repeats, |r| {
        let seed = base_seed.wrapping_add(r as u64);
        let workload = Workload::generate(wl, sim.scans(), seed);
        let cluster = build_cluster(wl);
        let (mut placer, mut evictor) = algorithm.build(book, seed);
        simulate(sim, cluster, &workload, placer.as_mut(), evictor.as_mut())
    });

    let collect = |f: &dyn Fn(&SimOutcome) -> f64| -> Percentiles {
        Percentiles::of(&outcomes.iter().map(f).collect::<Vec<_>>())
    };
    MetricSummary {
        algorithm: algorithm.name().to_string(),
        n_vms: wl.n_vms,
        trace: wl.trace_kind.label().to_string(),
        repeats,
        pms_used: collect(&|o| o.pms_used as f64),
        pms_used_initial: collect(&|o| o.pms_used_initial as f64),
        pms_used_max_active: collect(&|o| o.pms_used_max_active as f64),
        energy_kwh: collect(&|o| o.energy_kwh),
        migrations: collect(&|o| o.migrations as f64),
        slo_pct: collect(&|o| o.slo_violation_pct),
        mean_rejected: outcomes.iter().map(|o| o.rejected_vms as f64).sum::<f64>()
            / repeats.max(1) as f64,
    }
}

/// Sweep VM counts × algorithms, the grid behind Figs. 3 and 5–7.
#[must_use]
pub fn sweep(
    algorithms: &[Algorithm],
    vm_counts: &[usize],
    trace_kind: prvm_traces::TraceKind,
    book: &Arc<ScoreBook>,
    sim: &SimConfig,
    repeats: usize,
    base_seed: u64,
) -> Vec<MetricSummary> {
    let mut rows = Vec::with_capacity(algorithms.len() * vm_counts.len());
    for &n in vm_counts {
        let wl = WorkloadConfig::sized_for(n, trace_kind);
        for &algo in algorithms {
            rows.push(run_repeats(algo, book, sim, &wl, repeats, base_seed));
        }
    }
    rows
}

/// Build the score book for the EC2 catalog — the shared preprocessing
/// step of every PageRankVM experiment.
///
/// # Errors
///
/// Propagates [`pagerankvm::GraphError`] if the profile graph cannot be
/// built with the default quantizer (cannot happen for the Table I/II
/// catalog).
pub fn ec2_score_book() -> Result<Arc<ScoreBook>, pagerankvm::GraphError> {
    Ok(Arc::new(ScoreBook::build(
        prvm_model::Quantizer::default(),
        &catalog::ec2_pm_types(),
        &catalog::ec2_vm_types(),
        &pagerankvm::PageRankConfig::default(),
        pagerankvm::GraphLimits::default(),
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_model::Quantizer;
    use prvm_traces::TraceKind;

    fn coarse_book() -> Result<Arc<ScoreBook>, pagerankvm::GraphError> {
        Ok(Arc::new(ScoreBook::build(
            Quantizer {
                core_slots: 2,
                mem_levels: 4,
                disk_levels: 2,
            },
            &catalog::ec2_pm_types(),
            &catalog::ec2_vm_types(),
            &pagerankvm::PageRankConfig::default(),
            pagerankvm::GraphLimits::default(),
        )?))
    }

    #[test]
    fn every_algorithm_constructs() -> Result<(), pagerankvm::GraphError> {
        let book = coarse_book()?;
        for algo in [
            Algorithm::PageRankVm,
            Algorithm::TwoChoice,
            Algorithm::FirstFit,
            Algorithm::FfdSum,
            Algorithm::CompVm,
            Algorithm::BestFit,
            Algorithm::WorstFit,
        ] {
            let (p, e) = algo.build(&book, 1);
            assert!(!p.name().is_empty());
            assert!(!e.name().is_empty());
        }
        Ok(())
    }

    #[test]
    fn run_repeats_aggregates() -> Result<(), pagerankvm::GraphError> {
        let book = coarse_book()?;
        let sim = SimConfig {
            horizon_s: 1800,
            ..SimConfig::default()
        };
        let wl = WorkloadConfig {
            n_vms: 30,
            trace_kind: TraceKind::PlanetLab,
            m3_pms: 30,
            c3_pms: 15,
        };
        let s = run_repeats(Algorithm::FirstFit, &book, &sim, &wl, 3, 11);
        assert_eq!(s.repeats, 3);
        assert_eq!(s.algorithm, "FF");
        assert!(s.pms_used.median >= 1.0);
        assert_eq!(s.mean_rejected, 0.0);
        assert!(s.pms_used.p1 <= s.pms_used.median);
        assert!(s.pms_used.median <= s.pms_used.p99);
        Ok(())
    }

    #[test]
    fn sweep_produces_grid() -> Result<(), pagerankvm::GraphError> {
        let book = coarse_book()?;
        let sim = SimConfig {
            horizon_s: 900,
            ..SimConfig::default()
        };
        let rows = sweep(
            &[Algorithm::FirstFit, Algorithm::CompVm],
            &[10, 20],
            TraceKind::GoogleCluster,
            &book,
            &sim,
            2,
            5,
        );
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.n_vms == 10 && r.algorithm == "FF"));
        assert!(rows
            .iter()
            .any(|r| r.n_vms == 20 && r.algorithm == "CompVM"));
        Ok(())
    }

    #[test]
    fn pagerankvm_uses_fewer_or_equal_pms_than_ff_on_small_runs(
    ) -> Result<(), pagerankvm::GraphError> {
        // Smoke-scale version of the paper's headline: on a modest
        // workload PageRankVM should not need more PMs than FF.
        let book = coarse_book()?;
        let sim = SimConfig {
            horizon_s: 900,
            ..SimConfig::default()
        };
        let wl = WorkloadConfig {
            n_vms: 60,
            trace_kind: TraceKind::PlanetLab,
            m3_pms: 60,
            c3_pms: 30,
        };
        let pr = run_repeats(Algorithm::PageRankVm, &book, &sim, &wl, 3, 21);
        let ff = run_repeats(Algorithm::FirstFit, &book, &sim, &wl, 3, 21);
        assert!(
            pr.pms_used.median <= ff.pms_used.median,
            "PageRankVM {} vs FF {}",
            pr.pms_used.median,
            ff.pms_used.median
        );
        Ok(())
    }
}
