//! Workload construction: VM request mixes and the PM pool.

use crate::config::WorkloadConfig;
use prvm_model::{catalog, Cluster, VmSpec};
use prvm_traces::{Trace, TraceLibrary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many distinct traces the library holds; VMs draw from it with
/// replacement, like the paper drawing random PlanetLab nodes.
const LIBRARY_SIZE: usize = 400;

/// A concrete workload: one spec per requested VM.
#[derive(Debug, Clone)]
pub struct Workload {
    /// VM requests, uniformly drawn from Table I.
    pub specs: Vec<VmSpec>,
    /// Utilization trace library the VMs draw from.
    pub library: TraceLibrary,
    seed: u64,
}

impl Workload {
    /// Generate a workload deterministically from `seed`.
    #[must_use]
    pub fn generate(cfg: &WorkloadConfig, samples: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let types = catalog::ec2_vm_types();
        let specs = (0..cfg.n_vms)
            .map(|_| types[rng.gen_range(0..types.len())].clone())
            .collect();
        let library = TraceLibrary::generate(cfg.trace_kind, LIBRARY_SIZE, samples, seed ^ 0x9e37);
        Self {
            specs,
            library,
            seed,
        }
    }

    /// Assemble a workload from explicit parts (tests, crafted scenarios).
    #[must_use]
    pub fn from_parts(specs: Vec<VmSpec>, library: TraceLibrary, seed: u64) -> Self {
        Self {
            specs,
            library,
            seed,
        }
    }

    /// Draw one trace per VM (call after any batch reordering — trace
    /// assignment is random, so the association is exchangeable).
    #[must_use]
    pub fn draw_traces(&self, count: usize) -> Vec<Trace> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x51ed);
        (0..count)
            .map(|_| self.library.choose(&mut rng).clone())
            .collect()
    }
}

/// Build the PM pool for a workload: M3 and C3 machines interleaved 2:1 so
/// first-fit style scans see both types.
#[must_use]
pub fn build_cluster(cfg: &WorkloadConfig) -> Cluster {
    let mut specs = Vec::with_capacity(cfg.m3_pms + cfg.c3_pms);
    let (mut m3, mut c3) = (cfg.m3_pms, cfg.c3_pms);
    while m3 > 0 || c3 > 0 {
        for _ in 0..2 {
            if m3 > 0 {
                specs.push(catalog::pm_m3());
                m3 -= 1;
            }
        }
        if c3 > 0 {
            specs.push(catalog::pm_c3());
            c3 -= 1;
        }
    }
    Cluster::from_specs(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_traces::TraceKind;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            n_vms: 50,
            trace_kind: TraceKind::PlanetLab,
            m3_pms: 20,
            c3_pms: 10,
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let a = Workload::generate(&cfg(), 288, 5);
        let b = Workload::generate(&cfg(), 288, 5);
        assert_eq!(a.specs, b.specs);
        assert_eq!(a.draw_traces(10), b.draw_traces(10));
        let c = Workload::generate(&cfg(), 288, 6);
        assert_ne!(a.specs, c.specs);
    }

    #[test]
    fn workload_uses_table_i_types_roughly_uniformly() {
        let w = Workload::generate(
            &WorkloadConfig {
                n_vms: 6000,
                ..cfg()
            },
            288,
            1,
        );
        let names: std::collections::HashSet<&str> =
            w.specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), 6, "all six types appear");
        let medium = w.specs.iter().filter(|s| s.name == "m3.medium").count();
        assert!((800..1200).contains(&medium), "{medium}");
    }

    #[test]
    fn cluster_interleaves_pm_types() {
        let c = build_cluster(&cfg());
        assert_eq!(c.len(), 30);
        let names: Vec<&str> = c
            .pms()
            .iter()
            .take(6)
            .map(|p| p.spec().name.as_str())
            .collect();
        assert_eq!(names, ["M3", "M3", "C3", "M3", "M3", "C3"]);
        let c3s = c.pms().iter().filter(|p| p.spec().name == "C3").count();
        assert_eq!(c3s, 10);
    }

    #[test]
    fn trace_draws_match_request_count() {
        let w = Workload::generate(&cfg(), 288, 2);
        assert_eq!(w.draw_traces(50).len(), 50);
        assert!(w.draw_traces(50).iter().all(|t| t.len() == 288));
    }
}
