//! Failure-injection integration tests for the testbed controller: zero
//! drift with the empty plan, degraded-but-complete outcomes when agents
//! die mid-run, and quarantine/rejoin for transient stalls.

use prvm_baselines::{FirstFit, MinimumMigrationTime};
use prvm_testbed::{run_testbed, run_testbed_faulty, FaultPlan, TestbedConfig, TestbedOutcome};

fn run_with_plan(
    cfg: &TestbedConfig,
    n_jobs: usize,
    seed: u64,
    plan: &FaultPlan,
) -> TestbedOutcome {
    run_testbed_faulty(
        cfg,
        n_jobs,
        &mut FirstFit::new(),
        &mut MinimumMigrationTime::new(),
        seed,
        plan,
    )
}

/// Golden zero-drift check: with no fault plan the controller reproduces
/// the exact pre-fault-layer outcome for this pinned seed, down to the
/// f64 bit pattern of the SLO percentage. If this fails, the paper path
/// moved.
#[test]
fn empty_plan_is_byte_identical_to_pre_fault_golden() {
    let cfg = TestbedConfig {
        duration_s: 600,
        ..TestbedConfig::default()
    };
    let plain = run_testbed(
        &cfg,
        80,
        &mut FirstFit::new(),
        &mut MinimumMigrationTime::new(),
        2024,
    );

    // Captured from the tree immediately before the fault layer landed.
    assert_eq!(plain.pms_used_initial, 2);
    assert_eq!(plain.pms_used, 4);
    assert_eq!(plain.migrations, 302);
    assert_eq!(plain.overload_events, 35);
    assert_eq!(plain.rejected_jobs, 0);
    assert_eq!(
        plain.slo_violation_pct.to_bits(),
        0x4029_e492_4924_9249,
        "slo_violation_pct drifted: {}",
        plain.slo_violation_pct
    );

    // The fault counters are all zero on the paper path…
    assert_eq!(plain.node_failures, 0);
    assert_eq!(plain.rejoined_nodes, 0);
    assert_eq!(plain.replaced_jobs, 0);
    assert_eq!(plain.lost_jobs, 0);

    // …and an explicit empty plan is the same run.
    let empty = run_with_plan(&cfg, 80, 2024, &FaultPlan::none());
    assert_eq!(plain, empty);
}

/// The acceptance scenario: a node agent killed mid-run must yield a
/// degraded-but-complete outcome — the node quarantined, its jobs
/// re-placed, no panic — and stay deterministic.
#[test]
fn killed_agent_mid_run_degrades_without_panicking() {
    let cfg = TestbedConfig {
        duration_s: 120, // 12 ticks
        node_timeout_ms: 400,
        ..TestbedConfig::default()
    };
    // FirstFit packs node 0 first, so killing it strands real jobs.
    let plan = FaultPlan::none().with_agent_kill(0, 3);
    let o = run_with_plan(&cfg, 80, 2024, &plan);

    assert_eq!(o.node_failures, 1, "{o:?}");
    assert_eq!(o.rejoined_nodes, 0, "a dead agent never rejoins: {o:?}");
    assert!(o.replaced_jobs > 0, "node 0's jobs move elsewhere: {o:?}");
    assert_eq!(o.lost_jobs, 0, "nine idle nodes have room: {o:?}");
    assert!((0.0..=100.0).contains(&o.slo_violation_pct));
    // The re-placements spread onto nodes the initial allocation never
    // touched.
    assert!(o.pms_used > o.pms_used_initial, "{o:?}");

    assert_eq!(o, run_with_plan(&cfg, 80, 2024, &plan), "deterministic");
}

/// A transient stall quarantines the node and readmits it once it answers
/// a current tick again.
#[test]
fn stalled_agent_is_quarantined_then_rejoins() {
    let cfg = TestbedConfig {
        duration_s: 100, // 10 ticks
        node_timeout_ms: 300,
        ..TestbedConfig::default()
    };
    let plan = FaultPlan::none().with_agent_stall(0, 2, 2);
    let o = run_with_plan(&cfg, 80, 2024, &plan);

    assert_eq!(o.node_failures, 1, "{o:?}");
    assert_eq!(o.rejoined_nodes, 1, "answers again at tick 4: {o:?}");
    assert!(o.replaced_jobs > 0, "{o:?}");
    assert_eq!(o.lost_jobs, 0, "{o:?}");
}

/// Killing every node still terminates with a complete outcome: all jobs
/// are eventually lost, nothing hangs, nothing panics.
#[test]
fn losing_every_node_still_completes() {
    let cfg = TestbedConfig {
        nodes: 3,
        duration_s: 80, // 8 ticks
        node_timeout_ms: 300,
        ..TestbedConfig::default()
    };
    let mut plan = FaultPlan::none();
    for node in 0..cfg.nodes {
        plan = plan.with_agent_kill(node, 2);
    }
    let o = run_with_plan(&cfg, 30, 7, &plan);
    assert_eq!(o.node_failures, cfg.nodes, "{o:?}");
    assert!(o.lost_jobs > 0, "nowhere left to run: {o:?}");
    assert!((0.0..=100.0).contains(&o.slo_violation_pct));
    assert!(o.slo_violation_pct > 0.0, "lost jobs violate SLO: {o:?}");
}
