//! GENI testbed emulation (§VI-A, "GENI testbed").
//!
//! The paper's testbed is 10 four-core VM instances standing in for PMs, a
//! centralized controller running the placement algorithms, and *jobs*
//! standing in for VMs: CPU-only requests of shape `[1,1]` or `[1,1,1,1]`
//! whose vCPUs must land on distinct cores. Every 10 seconds the
//! controller scans utilization; overloaded nodes have jobs killed and
//! restarted elsewhere (the testbed's migration).
//!
//! This crate emulates that deployment with one thread per node agent and
//! a controller exchanging typed messages over `crossbeam` channels under
//! a lockstep virtual clock, so the same control-plane logic runs without
//! real machines (DESIGN.md §4).
//!
//! ## Capacity note
//!
//! The paper states each physical core hosts 4 vCPUs, yet runs up to 300
//! jobs (≈ 800 vCPUs) on 40 cores — its admission must have been
//! oversubscribed. We therefore give each core
//! [`TestbedConfig::slots_per_core`] = 32 reservation units (8×
//! oversubscription of the stated 4) and let each vCPU burst to a full
//! core, which reproduces the paper's job counts *and* its overload
//! dynamics.
//!
//! ```no_run
//! use prvm_testbed::{run_testbed, TestbedConfig};
//! use prvm_baselines::{FirstFit, MinimumMigrationTime};
//!
//! let cfg = TestbedConfig::default();
//! let outcome = run_testbed(&cfg, 200, &mut FirstFit::new(),
//!                           &mut MinimumMigrationTime::new(), 42);
//! println!("nodes used: {}", outcome.pms_used);
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod messages;
pub mod node;

pub use controller::{run_testbed, run_testbed_faulty, ControllerError};
pub use messages::{JobHandle, ToController, ToNode};
pub use node::NodeAgent;
pub use prvm_faults::{AgentFault, FaultPlan, StallWindow};

use prvm_model::{MemMib, Mhz, PmSpec};
use serde::{Deserialize, Serialize};

/// Shape and timing of the emulated testbed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Number of PM-emulating instances (paper: 10).
    pub nodes: usize,
    /// Physical cores per instance (paper: 4).
    pub cores_per_node: u32,
    /// Reservation units per core; each vCPU reserves one unit and may
    /// burst to the whole core (see the crate-level capacity note).
    pub slots_per_core: u64,
    /// Seconds between controller scans (paper: 10 s).
    pub scan_interval_s: u64,
    /// Experiment duration (paper: 4 h).
    pub duration_s: u64,
    /// Overload threshold on node CPU utilization (paper: 0.9).
    pub overload_threshold: f64,
    /// SLO threshold (paper: 1.0 — 100 % CPU).
    pub slo_threshold: f64,
    /// Scale factor applied to the Google-trace job utilizations so the
    /// aggregate load fits the testbed's physical capacity.
    pub utilization_scale: f64,
    /// How long the controller waits for a node's status before
    /// quarantining it (real time — the one wall-clock knob in an
    /// otherwise virtual-time protocol). Never felt on the fault-free
    /// path, where every agent answers immediately.
    pub node_timeout_ms: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self {
            nodes: 10,
            cores_per_node: 4,
            slots_per_core: 32,
            scan_interval_s: 10,
            duration_s: 4 * 3600,
            overload_threshold: 0.9,
            slo_threshold: 1.0,
            utilization_scale: 0.5,
            node_timeout_ms: 2000,
        }
    }
}

impl TestbedConfig {
    /// Number of scans over the experiment duration.
    ///
    /// # Panics
    ///
    /// Panics if `scan_interval_s` is zero.
    #[must_use]
    pub fn scans(&self) -> usize {
        assert!(self.scan_interval_s > 0, "scan interval must be positive");
        (self.duration_s / self.scan_interval_s) as usize
    }

    /// The PM spec of one emulated node: `cores_per_node` cores of
    /// `slots_per_core` units, CPU-only.
    #[must_use]
    pub fn pm_spec(&self) -> PmSpec {
        PmSpec::new(
            "geni-node",
            self.cores_per_node,
            Mhz(self.slots_per_core),
            MemMib::ZERO,
            Vec::new(),
        )
    }

    /// Build the Profile–PageRank score book matching this testbed (one
    /// vCPU = one slot, exactly).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction failures (an absurd `slots_per_core`
    /// can exceed the node limit).
    pub fn score_book(&self) -> Result<pagerankvm::ScoreBook, pagerankvm::GraphError> {
        pagerankvm::ScoreBook::build(
            prvm_model::Quantizer {
                core_slots: self.slots_per_core,
                mem_levels: 1,
                disk_levels: 1,
            },
            &[self.pm_spec()],
            &prvm_model::catalog::geni_vm_types(),
            &pagerankvm::PageRankConfig::default(),
            pagerankvm::GraphLimits::default(),
        )
    }
}

/// Aggregate results of one testbed run (Figs. 4 and 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbedOutcome {
    /// Nodes used by the initial job allocation (Fig. 4(a)).
    pub pms_used_initial: usize,
    /// Distinct nodes that ever hosted a job (initial + migration
    /// targets).
    pub pms_used: usize,
    /// Kill-and-restart migrations performed (Fig. 4(b)).
    pub migrations: usize,
    /// Percentage of (active node, scan) samples at/above the SLO
    /// threshold (Fig. 8).
    pub slo_violation_pct: f64,
    /// Scans with at least one overloaded node.
    pub overload_events: usize,
    /// Jobs rejected at initial placement.
    pub rejected_jobs: usize,
    /// Node agents quarantined at least once (fault injection only;
    /// always zero on the paper path).
    pub node_failures: usize,
    /// Quarantined nodes that reported again and were readmitted.
    pub rejoined_nodes: usize,
    /// Jobs re-placed off quarantined or dead nodes.
    pub replaced_jobs: usize,
    /// Jobs dropped because no capacity remained to re-place them; each
    /// keeps counting as an SLO-violating sample every later scan.
    pub lost_jobs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_shape() {
        let c = TestbedConfig::default();
        assert_eq!(c.nodes, 10);
        assert_eq!(c.cores_per_node, 4);
        assert_eq!(c.scan_interval_s, 10);
        assert_eq!(c.scans(), 1440);
        let pm = c.pm_spec();
        assert_eq!(pm.cores, 4);
        assert_eq!(pm.total_cpu(), Mhz(128));
    }

    #[test]
    fn score_book_builds_for_testbed() {
        let cfg = TestbedConfig {
            slots_per_core: 8, // keep the unit test quick
            ..TestbedConfig::default()
        };
        let book = cfg.score_book().unwrap();
        let table = book.table(&cfg.pm_spec()).unwrap();
        assert!(table.len() > 10);
        // The empty profile must be scoreable.
        let empty = table.space().empty_profile();
        assert!(table.score(&empty).is_some());
    }
}
