//! Node agents: one thread per emulated GENI instance.
//!
//! An agent owns its resident jobs, samples their utilization traces each
//! tick and reports per-job CPU demand to the controller. Kill/start
//! messages emulate the paper's "kill the VMs (jobs) and continue them on
//! the destination PMs" migration.

use crate::messages::{JobHandle, ToController, ToNode};
use crossbeam::channel::{Receiver, Sender};
use prvm_faults::AgentFault;
use prvm_model::VmId;

/// Per-node state and message loop.
pub struct NodeAgent {
    node: usize,
    /// A vCPU may burst to this many slot units (one full core).
    slots_per_core: u64,
    jobs: Vec<JobHandle>,
    rx: Receiver<ToNode>,
    tx: Sender<ToController>,
    /// Injected failure behavior; `None` on the paper path.
    fault: Option<AgentFault>,
}

impl NodeAgent {
    /// Create an agent for node `node`.
    #[must_use]
    pub fn new(
        node: usize,
        slots_per_core: u64,
        rx: Receiver<ToNode>,
        tx: Sender<ToController>,
    ) -> Self {
        Self {
            node,
            slots_per_core,
            jobs: Vec::new(),
            rx,
            tx,
            fault: None,
        }
    }

    /// Attach an injected fault: the agent dies at `die_at_tick` and/or
    /// stays silent during the stall window (builder style).
    #[must_use]
    pub fn with_fault(mut self, fault: AgentFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// CPU demand of one job at scan `t`, in slot units: each vCPU bursts
    /// up to a full core, scaled by its utilization trace.
    fn job_demand(&self, job: &JobHandle, t: usize) -> u64 {
        let per_vcpu = job.trace.at(t) * self.slots_per_core as f64;
        (per_vcpu * f64::from(job.spec.vcpus)).round() as u64
    }

    /// Run the message loop until [`ToNode::Shutdown`] (or the controller
    /// hangs up).
    pub fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                ToNode::Start(job) => self.jobs.push(job),
                ToNode::Kill(id) => {
                    if let Some(pos) = self.jobs.iter().position(|j| j.id == id) {
                        let job = self.jobs.swap_remove(pos);
                        let _ = self.tx.send(ToController::Killed {
                            node: self.node,
                            job,
                        });
                    }
                }
                ToNode::Tick { t } => {
                    if let Some(fault) = self.fault {
                        if fault.die_at_tick.is_some_and(|d| t >= d) {
                            // Hard node loss: exit without a word; the
                            // controller sees a disconnect/timeout.
                            return;
                        }
                        if fault.stall.is_some_and(|w| w.covers(t)) {
                            // Transient partition: swallow the tick.
                            continue;
                        }
                    }
                    let job_demands: Vec<(VmId, u64)> = self
                        .jobs
                        .iter()
                        .map(|j| (j.id, self.job_demand(j, t)))
                        .collect();
                    let _ = self.tx.send(ToController::Status {
                        node: self.node,
                        t,
                        job_demands,
                    });
                }
                ToNode::Reset => self.jobs.clear(),
                ToNode::Shutdown => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use prvm_model::{catalog, Assignment};
    use prvm_traces::Trace;

    fn job(id: u64, util: f64) -> JobHandle {
        JobHandle {
            id: VmId(id),
            spec: catalog::geni_vm_2(),
            assignment: Assignment::new(vec![0, 1], vec![]),
            trace: Trace::constant(util, 4),
        }
    }

    #[test]
    fn agent_reports_demands_and_kills() {
        let (to_node, node_rx) = unbounded();
        let (node_tx, from_node) = unbounded();
        let agent = NodeAgent::new(3, 32, node_rx, node_tx);
        let handle = std::thread::spawn(move || agent.run());

        to_node.send(ToNode::Start(job(1, 0.5))).unwrap();
        to_node.send(ToNode::Start(job(2, 0.25))).unwrap();
        to_node.send(ToNode::Tick { t: 0 }).unwrap();
        match from_node.recv().unwrap() {
            ToController::Status {
                node,
                t,
                job_demands,
            } => {
                assert_eq!((node, t), (3, 0));
                // 2 vCPUs x 0.5 x 32 = 32; 2 x 0.25 x 32 = 16.
                assert_eq!(job_demands, vec![(VmId(1), 32), (VmId(2), 16)]);
            }
            other => panic!("unexpected {other:?}"),
        }

        to_node.send(ToNode::Kill(VmId(1))).unwrap();
        match from_node.recv().unwrap() {
            ToController::Killed { node, job } => {
                assert_eq!(node, 3);
                assert_eq!(job.id, VmId(1));
            }
            other => panic!("unexpected {other:?}"),
        }

        // Killing an unknown job is ignored, then the next tick only
        // reports the survivor.
        to_node.send(ToNode::Kill(VmId(9))).unwrap();
        to_node.send(ToNode::Tick { t: 1 }).unwrap();
        match from_node.recv().unwrap() {
            ToController::Status { job_demands, .. } => {
                assert_eq!(job_demands.len(), 1);
                assert_eq!(job_demands[0].0, VmId(2));
            }
            other => panic!("unexpected {other:?}"),
        }

        to_node.send(ToNode::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn killed_agent_exits_without_replying() {
        let (to_node, node_rx) = unbounded();
        let (node_tx, from_node) = unbounded();
        let agent = NodeAgent::new(1, 32, node_rx, node_tx).with_fault(AgentFault {
            die_at_tick: Some(2),
            stall: None,
        });
        let handle = std::thread::spawn(move || agent.run());

        to_node.send(ToNode::Start(job(1, 0.5))).unwrap();
        to_node.send(ToNode::Tick { t: 0 }).unwrap();
        assert!(matches!(
            from_node.recv().unwrap(),
            ToController::Status { .. }
        ));
        to_node.send(ToNode::Tick { t: 2 }).unwrap();
        handle.join().unwrap();
        assert!(from_node.recv().is_err(), "agent died silently");
    }

    #[test]
    fn stalled_agent_goes_silent_then_resumes_and_resets() {
        let (to_node, node_rx) = unbounded();
        let (node_tx, from_node) = unbounded();
        let agent = NodeAgent::new(0, 32, node_rx, node_tx).with_fault(AgentFault {
            die_at_tick: None,
            stall: Some(prvm_faults::StallWindow { from: 1, ticks: 2 }),
        });
        let handle = std::thread::spawn(move || agent.run());

        to_node.send(ToNode::Start(job(1, 0.5))).unwrap();
        // Ticks 1 and 2 fall in the stall window and get no reply; the
        // next Status received answers tick 3.
        for t in 0..4 {
            to_node.send(ToNode::Tick { t }).unwrap();
        }
        let ts: Vec<usize> = (0..2)
            .map(|_| match from_node.recv().unwrap() {
                ToController::Status { t, .. } => t,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ts, vec![0, 3]);

        // After a Reset the agent holds no jobs.
        to_node.send(ToNode::Reset).unwrap();
        to_node.send(ToNode::Tick { t: 4 }).unwrap();
        match from_node.recv().unwrap() {
            ToController::Status { job_demands, .. } => assert!(job_demands.is_empty()),
            other => panic!("unexpected {other:?}"),
        }

        to_node.send(ToNode::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn agent_exits_when_controller_hangs_up() {
        let (to_node, node_rx) = unbounded::<ToNode>();
        let (node_tx, _from_node) = unbounded();
        let agent = NodeAgent::new(0, 32, node_rx, node_tx);
        let handle = std::thread::spawn(move || agent.run());
        drop(to_node);
        handle.join().unwrap();
    }
}
