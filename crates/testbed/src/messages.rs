//! The control-plane protocol between the centralized controller and the
//! node agents (the paper's GENI switch topology, §VI-A).

use prvm_model::{Assignment, VmId, VmSpec};
use prvm_traces::Trace;

/// A job (the testbed's stand-in for a VM) as shipped to a node agent.
#[derive(Debug, Clone, PartialEq)]
pub struct JobHandle {
    /// Cluster-wide identity.
    pub id: VmId,
    /// CPU-only resource request (`[1,1]` or `[1,1,1,1]`).
    pub spec: VmSpec,
    /// Which physical cores the job's vCPUs pin to (anti-collocation).
    pub assignment: Assignment,
    /// Utilization trace driving the job's CPU demand.
    pub trace: Trace,
}

/// Controller → node messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToNode {
    /// Start (or resume after migration) a job on this node.
    Start(JobHandle),
    /// Kill a job; the node replies with [`ToController::Killed`].
    Kill(VmId),
    /// Advance virtual time and report status.
    Tick {
        /// Scan index (10-second granularity).
        t: usize,
    },
    /// Drop every resident job without replying. Sent when a quarantined
    /// node rejoins: the controller already re-placed its jobs elsewhere,
    /// so whatever the agent still holds is stale.
    Reset,
    /// Terminate the agent thread.
    Shutdown,
}

/// Node → controller messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ToController {
    /// Periodic status: the node's per-job CPU demand in slot units at the
    /// ticked scan.
    Status {
        /// Reporting node.
        node: usize,
        /// Scan index this status answers.
        t: usize,
        /// `(job, demand)` pairs, demand in core slot units.
        job_demands: Vec<(VmId, u64)>,
    },
    /// A job was killed and is handed back for re-placement.
    Killed {
        /// Node that killed the job.
        node: usize,
        /// The job, ready to restart elsewhere.
        job: JobHandle,
    },
}
