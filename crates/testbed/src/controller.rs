//! The centralized controller (the paper's extra GENI instance "responsible
//! for running the VM placement algorithms to assign the jobs").
//!
//! The controller keeps a mirror [`Cluster`] for placement decisions,
//! drives virtual time in 10-second ticks, collects per-node status over
//! channels, and performs kill-and-restart migrations off overloaded nodes.

use crate::messages::{JobHandle, ToController, ToNode};
use crate::node::NodeAgent;
use crate::{TestbedConfig, TestbedOutcome};
use crossbeam::channel::{unbounded, Receiver, Sender};
use prvm_model::{catalog, Cluster, EvictionPolicy, Mhz, PlacementAlgorithm, PmId, VmId};
use prvm_traces::{generate, TraceKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Channel sends only fail when the node agent's thread died — the bug the
/// documented `# Panics` contract turns into a panic.
fn send_to_agent(tx: &Sender<ToNode>, msg: ToNode) {
    tx.send(msg)
        .unwrap_or_else(|_| panic!("node agent disconnected"));
}

fn recv_from_agent(rx: &Receiver<ToController>) -> ToController {
    rx.recv()
        .unwrap_or_else(|_| panic!("node agent disconnected"))
}

/// Run the full testbed experiment: `n_jobs` jobs placed and supervised by
/// `placer`/`evictor` for the configured duration.
///
/// Spawns one agent thread per node; fully deterministic under `seed`
/// (ticks are lockstep).
///
/// # Panics
///
/// Panics if a node agent disconnects mid-experiment or the mirror
/// cluster rejects a placement decision (bugs, not expected runtime
/// conditions).
#[must_use]
pub fn run_testbed(
    cfg: &TestbedConfig,
    n_jobs: usize,
    placer: &mut dyn PlacementAlgorithm,
    evictor: &mut dyn EvictionPolicy,
    seed: u64,
) -> TestbedOutcome {
    let scans = cfg.scans();
    let mut rng = StdRng::seed_from_u64(seed);

    // --- Spawn node agents ----------------------------------------------
    let (to_controller, from_nodes): (Sender<ToController>, Receiver<ToController>) = unbounded();
    let mut to_nodes: Vec<Sender<ToNode>> = Vec::with_capacity(cfg.nodes);
    let mut handles = Vec::with_capacity(cfg.nodes);
    for node in 0..cfg.nodes {
        let (tx, rx) = unbounded();
        to_nodes.push(tx);
        let agent = NodeAgent::new(node, cfg.slots_per_core, rx, to_controller.clone());
        handles.push(std::thread::spawn(move || agent.run()));
    }

    // --- Generate and place the jobs --------------------------------------
    let mut mirror = Cluster::homogeneous(cfg.pm_spec(), cfg.nodes);
    let mut rejected = 0usize;
    let mut resident = 0usize;
    let mut specs: Vec<_> = (0..n_jobs)
        .map(|_| {
            if rng.gen_bool(0.5) {
                catalog::geni_vm_2()
            } else {
                catalog::geni_vm_4()
            }
        })
        .collect();
    placer.order_batch(&mut specs);
    for spec in specs {
        let trace = generate(TraceKind::GoogleCluster, scans.max(1), &mut rng)
            .scaled(cfg.utilization_scale);
        match placer.choose(&mirror, &spec, &|_| false) {
            Some(d) => {
                let id = mirror
                    .place(d.pm, spec.clone(), d.assignment.clone())
                    .unwrap_or_else(|e| panic!("algorithm decision rejected by mirror: {e}"));
                send_to_agent(
                    &to_nodes[d.pm.0],
                    ToNode::Start(JobHandle {
                        id,
                        spec,
                        assignment: d.assignment,
                        trace,
                    }),
                );
                resident += 1;
            }
            None => rejected += 1,
        }
    }
    let _ = resident;
    let pms_used_initial = mirror.active_pm_count();

    // --- Scan loop ---------------------------------------------------------
    let node_cap = Mhz(cfg.slots_per_core * u64::from(cfg.cores_per_node));
    let mut migrations = 0usize;
    let mut overload_events = 0usize;
    let mut slo_samples = 0usize;
    let mut active_samples = 0usize;

    for t in 0..scans {
        for tx in &to_nodes {
            send_to_agent(tx, ToNode::Tick { t });
        }
        // Collect exactly one status per node (lockstep).
        let mut job_demand: HashMap<VmId, u64> = HashMap::new();
        let mut node_demand: Vec<u64> = vec![0; cfg.nodes];
        for _ in 0..cfg.nodes {
            match recv_from_agent(&from_nodes) {
                ToController::Status {
                    node,
                    t: rt,
                    job_demands,
                } => {
                    debug_assert_eq!(rt, t, "lockstep tick");
                    for (id, d) in job_demands {
                        node_demand[node] += d;
                        job_demand.insert(id, d);
                    }
                }
                ToController::Killed { .. } => unreachable!("no kill in flight during tick"),
            }
        }

        // SLO + overload accounting over *active* nodes.
        let mut overloaded: Vec<usize> = Vec::new();
        #[allow(clippy::needless_range_loop)] // node is both PmId and index
        for node in 0..cfg.nodes {
            if mirror.pm(PmId(node)).is_empty() {
                continue;
            }
            active_samples += 1;
            let util = node_demand[node] as f64 / node_cap.get() as f64;
            if util >= cfg.slo_threshold {
                slo_samples += 1;
            }
            if util > cfg.overload_threshold {
                overloaded.push(node);
            }
        }
        if !overloaded.is_empty() {
            overload_events += 1;
        }
        let overloaded_set: std::collections::HashSet<usize> = overloaded.iter().copied().collect();

        // Kill-and-restart migrations.
        for src in overloaded {
            loop {
                let util = node_demand[src] as f64 / node_cap.get() as f64;
                if util <= cfg.overload_threshold || mirror.pm(PmId(src)).is_empty() {
                    break;
                }
                let Some(victim) = evictor.select(mirror.pm(PmId(src)), &|id| {
                    Mhz(job_demand.get(&id).copied().unwrap_or(0))
                }) else {
                    break;
                };
                let victim_demand = job_demand.get(&victim).copied().unwrap_or(0);
                // Choose the destination BEFORE killing so an unplaceable
                // job is never interrupted.
                let Ok((_, spec, _)) = mirror.remove(victim) else {
                    debug_assert!(false, "evictor selected a non-resident job {}", victim.0);
                    break;
                };
                let exclude = |pm: PmId| -> bool {
                    pm.0 == src
                        || overloaded_set.contains(&pm.0)
                        || (node_demand[pm.0] + victim_demand) as f64 / node_cap.get() as f64
                            > cfg.overload_threshold
                };
                let Some(d) = placer.choose(&mirror, &spec, &exclude) else {
                    // Nowhere to go: put it back and stop evicting here.
                    let Some(a) = mirror.pm(PmId(src)).first_feasible(&spec) else {
                        debug_assert!(false, "job came from this node");
                        break;
                    };
                    let restored = mirror.place_as(victim, PmId(src), spec, a);
                    debug_assert!(restored.is_ok(), "restoring a just-removed job cannot fail");
                    break;
                };
                // Kill on the source, restart on the destination.
                send_to_agent(&to_nodes[src], ToNode::Kill(victim));
                let job = match recv_from_agent(&from_nodes) {
                    ToController::Killed { job, .. } => job,
                    ToController::Status { .. } => unreachable!("no tick in flight during kill"),
                };
                mirror
                    .place_as(victim, d.pm, spec, d.assignment.clone())
                    .unwrap_or_else(|e| panic!("algorithm decision rejected by mirror: {e}"));
                send_to_agent(
                    &to_nodes[d.pm.0],
                    ToNode::Start(JobHandle {
                        assignment: d.assignment,
                        ..job
                    }),
                );
                migrations += 1;
                node_demand[d.pm.0] += victim_demand;
                node_demand[src] = node_demand[src].saturating_sub(victim_demand);
            }
        }
    }

    // --- Shutdown -----------------------------------------------------------
    for tx in &to_nodes {
        let _ = tx.send(ToNode::Shutdown);
    }
    for h in handles {
        h.join().unwrap_or_else(|_| panic!("agent thread panicked"));
    }

    TestbedOutcome {
        pms_used_initial,
        pms_used: mirror.ever_used_count(),
        migrations,
        slo_violation_pct: if active_samples == 0 {
            0.0
        } else {
            100.0 * slo_samples as f64 / active_samples as f64
        },
        overload_events,
        rejected_jobs: rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_baselines::{FirstFit, MinimumMigrationTime};

    fn quick_cfg() -> TestbedConfig {
        TestbedConfig {
            duration_s: 300, // 30 ticks
            ..TestbedConfig::default()
        }
    }

    fn run_ff(cfg: &TestbedConfig, n_jobs: usize, seed: u64) -> TestbedOutcome {
        run_testbed(
            cfg,
            n_jobs,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
            seed,
        )
    }

    #[test]
    fn testbed_is_deterministic() {
        let cfg = quick_cfg();
        assert_eq!(run_ff(&cfg, 50, 3), run_ff(&cfg, 50, 3));
    }

    #[test]
    fn jobs_fit_and_nodes_are_used() {
        let cfg = quick_cfg();
        let o = run_ff(&cfg, 100, 1);
        assert_eq!(o.rejected_jobs, 0);
        assert!(o.pms_used >= 1 && o.pms_used <= cfg.nodes);
    }

    #[test]
    fn more_jobs_use_at_least_as_many_nodes() {
        let cfg = quick_cfg();
        let small = run_ff(&cfg, 50, 7);
        let large = run_ff(&cfg, 250, 7);
        assert!(large.pms_used >= small.pms_used);
    }

    #[test]
    fn hot_workload_triggers_kill_restart_migrations() {
        // Unscaled traces + low overload threshold: FirstFit's packing
        // must overload and migrate.
        let cfg = TestbedConfig {
            duration_s: 600,
            utilization_scale: 1.0,
            overload_threshold: 0.25,
            ..TestbedConfig::default()
        };
        let o = run_ff(&cfg, 120, 11);
        assert!(o.overload_events > 0, "{o:?}");
        assert!(o.migrations > 0, "{o:?}");
    }

    #[test]
    fn slo_percentage_is_bounded() {
        let o = run_ff(&quick_cfg(), 150, 5);
        assert!((0.0..=100.0).contains(&o.slo_violation_pct));
    }
}
