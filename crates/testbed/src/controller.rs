//! The centralized controller (the paper's extra GENI instance "responsible
//! for running the VM placement algorithms to assign the jobs").
//!
//! The controller keeps a mirror [`Cluster`] for placement decisions,
//! drives virtual time in 10-second ticks, collects per-node status over
//! channels, and performs kill-and-restart migrations off overloaded nodes.
//!
//! ## Failure handling
//!
//! Early versions panicked the moment any agent channel misbehaved. The
//! controller now degrades instead (DESIGN.md §9): losing contact with a
//! node is a typed [`ControllerError`] naming the node, the node is
//! **quarantined** — its mirror capacity withdrawn, its jobs re-placed
//! through the same placement algorithm — and a quarantined node that
//! reports again is reset and readmitted. The only panics left are for
//! genuine bugs (the mirror rejecting the algorithm's own decision). On
//! the paper path (no [`FaultPlan`]) nothing times out and the run is
//! byte-identical to the pre-fault-layer controller.

use crate::messages::{JobHandle, ToController, ToNode};
use crate::node::NodeAgent;
use crate::{TestbedConfig, TestbedOutcome};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use prvm_faults::FaultPlan;
use prvm_model::{catalog, Cluster, EvictionPolicy, Mhz, PlacementAlgorithm, PmId, VmId};
use prvm_obs::event;
use prvm_traces::{generate, TraceKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Why the controller lost contact with a node agent. Every variant names
/// the node, so logs and quarantine events always say *which* agent went
/// away — not just that one did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerError {
    /// The agent's channel endpoint is closed: its thread exited.
    NodeDisconnected {
        /// Index of the node whose agent hung up.
        node: usize,
    },
    /// The agent failed to report within [`TestbedConfig::node_timeout_ms`].
    NodeTimeout {
        /// Index of the unresponsive node.
        node: usize,
        /// Scan (virtual time step) at which the controller gave up.
        scan: usize,
    },
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NodeDisconnected { node } => {
                write!(f, "node {node} disconnected: agent channel closed")
            }
            Self::NodeTimeout { node, scan } => {
                write!(f, "node {node} timed out at scan {scan}")
            }
        }
    }
}

impl std::error::Error for ControllerError {}

/// Controller-side liveness state of one node agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Reporting normally.
    Up,
    /// Unresponsive: capacity withdrawn, jobs re-placed; may rejoin.
    Quarantined,
    /// Channel disconnected: never coming back.
    Dead,
}

/// Send to one agent. `Err` means the agent thread is gone; the caller
/// decides whether that is a fault to absorb or a bug to surface.
fn send_to_agent(tx: &Sender<ToNode>, node: usize, msg: ToNode) -> Result<(), ControllerError> {
    tx.send(msg)
        .map_err(|_| ControllerError::NodeDisconnected { node })
}

/// Which node a controller-bound message came from.
fn message_source(msg: &ToController) -> usize {
    match msg {
        ToController::Status { node, .. } | ToController::Killed { node, .. } => *node,
    }
}

/// Receive the next controller-bound message: buffered messages (kept
/// aside by a rejoin drain) first, then the live channel under the
/// remaining deadline budget.
fn next_message(
    pending: &mut VecDeque<ToController>,
    from_nodes: &Receiver<ToController>,
    remaining: Duration,
) -> Result<ToController, RecvTimeoutError> {
    if let Some(msg) = pending.pop_front() {
        return Ok(msg);
    }
    from_nodes.recv_timeout(remaining)
}

/// Mutable controller state shared by the scan loop and the
/// failure-recovery paths.
struct Supervisor {
    to_nodes: Vec<Sender<ToNode>>,
    state: Vec<NodeState>,
    mirror: Cluster,
    /// Last-known handle of every live job, so jobs on a dead node can be
    /// restarted elsewhere without the agent's cooperation.
    registry: HashMap<VmId, JobHandle>,
    node_failures: usize,
    rejoined_nodes: usize,
    replaced_jobs: usize,
    lost_jobs: usize,
}

impl Supervisor {
    /// Withdraw a node's capacity and re-place its resident jobs through
    /// `placer`. A destination that turns out dead mid-hand-off is failed
    /// over too: cascades drain through the worklist instead of recursing.
    fn quarantine(
        &mut self,
        node: usize,
        scan: usize,
        err: &ControllerError,
        placer: &mut dyn PlacementAlgorithm,
    ) {
        let dead = matches!(err, ControllerError::NodeDisconnected { .. });
        let mut worklist: Vec<(usize, bool)> = vec![(node, dead)];
        while let Some((n, n_dead)) = worklist.pop() {
            match self.state[n] {
                NodeState::Dead => continue,
                NodeState::Quarantined => {
                    // Capacity already withdrawn; just record it will
                    // never rejoin.
                    if n_dead {
                        self.state[n] = NodeState::Dead;
                    }
                    continue;
                }
                NodeState::Up => {}
            }
            self.state[n] = if n_dead {
                NodeState::Dead
            } else {
                NodeState::Quarantined
            };
            self.node_failures += 1;
            prvm_obs::counter!("testbed.node_failures");
            event("testbed.node_quarantined")
                .field("node", n)
                .field("scan", scan)
                .field("dead", n_dead)
                .emit();

            let pm = PmId(n);
            let victims = self.mirror.resident_vms(pm);
            if self.mirror.is_down(pm) {
                debug_assert!(false, "quarantined node already down in the mirror");
            } else {
                let down = self.mirror.mark_down(pm);
                debug_assert!(down.is_ok(), "node index is in range");
            }
            for vm in victims {
                let Ok((_, spec, _)) = self.mirror.remove(vm) else {
                    debug_assert!(false, "resident job {} vanished", vm.0);
                    continue;
                };
                let Some(job) = self.registry.get(&vm).cloned() else {
                    debug_assert!(false, "job {} missing from the registry", vm.0);
                    self.lost_jobs += 1;
                    continue;
                };
                match placer.choose(&self.mirror, &spec, &|_| false) {
                    Some(d) => {
                        self.mirror
                            .place_as(vm, d.pm, spec, d.assignment.clone())
                            .unwrap_or_else(|e| {
                                panic!("algorithm decision rejected by mirror: {e}")
                            });
                        let handle = JobHandle {
                            assignment: d.assignment,
                            ..job
                        };
                        self.registry.insert(vm, handle.clone());
                        match send_to_agent(&self.to_nodes[d.pm.0], d.pm.0, ToNode::Start(handle)) {
                            Ok(()) => {
                                self.replaced_jobs += 1;
                                event("testbed.job_replaced")
                                    .field("job", vm.0)
                                    .field("from", n)
                                    .field("to", d.pm.0)
                                    .field("scan", scan)
                                    .emit();
                            }
                            Err(_) => {
                                // The destination is dead too. Leave the
                                // job on it in the mirror; draining the
                                // destination re-places it again.
                                worklist.push((d.pm.0, true));
                            }
                        }
                    }
                    None => {
                        self.lost_jobs += 1;
                        self.registry.remove(&vm);
                        event("testbed.job_lost")
                            .field("job", vm.0)
                            .field("from", n)
                            .field("scan", scan)
                            .emit();
                    }
                }
            }
        }
    }

    /// A quarantined node reported again with a current-scan status:
    /// readmit it. Its jobs were already re-placed, so the agent is reset
    /// to empty before its capacity returns.
    ///
    /// Before `Reset` is sent, every in-flight message is drained from
    /// the shared channel: anything this node sent before it sees the
    /// reset (stale statuses from its tick backlog, late kill acks) is
    /// void and must not linger to be misread by a later handshake loop.
    /// Previously those leftovers were absorbed only when a
    /// `recv_timeout` happened to expire past them — a flaky-by-design
    /// window. Messages from *other* nodes are kept, in order, in
    /// `pending` for the caller to process normally.
    fn rejoin(
        &mut self,
        node: usize,
        scan: usize,
        placer: &mut dyn PlacementAlgorithm,
        from_nodes: &Receiver<ToController>,
        pending: &mut VecDeque<ToController>,
    ) {
        debug_assert_eq!(self.state[node], NodeState::Quarantined);
        pending.retain(|msg| message_source(msg) != node);
        while let Ok(msg) = from_nodes.try_recv() {
            if message_source(&msg) != node {
                pending.push_back(msg);
            }
        }
        match send_to_agent(&self.to_nodes[node], node, ToNode::Reset) {
            Ok(()) => {
                self.state[node] = NodeState::Up;
                let up = self.mirror.mark_up(PmId(node));
                debug_assert!(up.is_ok(), "node index is in range");
                self.rejoined_nodes += 1;
                event("testbed.node_rejoined")
                    .field("node", node)
                    .field("scan", scan)
                    .emit();
            }
            Err(err) => {
                // Died between its status and our reset; it holds no
                // jobs, so this only finalizes the state.
                self.quarantine(node, scan, &err, placer);
            }
        }
    }
}

/// Run the full testbed experiment: `n_jobs` jobs placed and supervised by
/// `placer`/`evictor` for the configured duration.
///
/// Spawns one agent thread per node; fully deterministic under `seed`
/// (ticks are lockstep).
///
/// # Panics
///
/// Panics if the mirror cluster rejects a placement decision (a bug, not
/// an expected runtime condition). Node-agent failures no longer panic —
/// see [`run_testbed_faulty`].
#[must_use]
pub fn run_testbed(
    cfg: &TestbedConfig,
    n_jobs: usize,
    placer: &mut dyn PlacementAlgorithm,
    evictor: &mut dyn EvictionPolicy,
    seed: u64,
) -> TestbedOutcome {
    run_testbed_faulty(cfg, n_jobs, placer, evictor, seed, &FaultPlan::none())
}

/// [`run_testbed`] with injected faults: node agents may be killed or
/// stalled per the plan's [`prvm_faults::AgentFault`]s. The controller
/// quarantines unresponsive nodes (withdrawing their mirror capacity and
/// re-placing their jobs), readmits nodes that report again, and always
/// returns a complete — possibly degraded — [`TestbedOutcome`].
///
/// With [`FaultPlan::none`] this is exactly [`run_testbed`]: no timeout
/// ever fires and the outcome is byte-identical to the fault-free path.
///
/// # Panics
///
/// Panics only if the mirror cluster rejects a placement decision (a bug).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_testbed_faulty(
    cfg: &TestbedConfig,
    n_jobs: usize,
    placer: &mut dyn PlacementAlgorithm,
    evictor: &mut dyn EvictionPolicy,
    seed: u64,
    faults: &FaultPlan,
) -> TestbedOutcome {
    let scans = cfg.scans();
    let mut rng = StdRng::seed_from_u64(seed);
    let timeout = Duration::from_millis(cfg.node_timeout_ms);

    // --- Spawn node agents ----------------------------------------------
    let (to_controller, from_nodes): (Sender<ToController>, Receiver<ToController>) = unbounded();
    let mut to_nodes: Vec<Sender<ToNode>> = Vec::with_capacity(cfg.nodes);
    let mut handles = Vec::with_capacity(cfg.nodes);
    for node in 0..cfg.nodes {
        let (tx, rx) = unbounded();
        to_nodes.push(tx);
        let mut agent = NodeAgent::new(node, cfg.slots_per_core, rx, to_controller.clone());
        if let Some(fault) = faults.agent_fault(node) {
            agent = agent.with_fault(fault);
        }
        handles.push(std::thread::spawn(move || agent.run()));
    }
    // Only agents hold senders now, so a fully-dead fleet is observable
    // as a disconnect rather than an eternal block.
    drop(to_controller);

    let mut sup = Supervisor {
        to_nodes,
        state: vec![NodeState::Up; cfg.nodes],
        mirror: Cluster::homogeneous(cfg.pm_spec(), cfg.nodes),
        registry: HashMap::new(),
        node_failures: 0,
        rejoined_nodes: 0,
        replaced_jobs: 0,
        lost_jobs: 0,
    };

    // --- Generate and place the jobs --------------------------------------
    let mut rejected = 0usize;
    let mut specs: Vec<_> = (0..n_jobs)
        .map(|_| {
            if rng.gen_bool(0.5) {
                catalog::geni_vm_2()
            } else {
                catalog::geni_vm_4()
            }
        })
        .collect();
    placer.order_batch(&mut specs);
    for spec in specs {
        let trace = generate(TraceKind::GoogleCluster, scans.max(1), &mut rng)
            .scaled(cfg.utilization_scale);
        match placer.choose(&sup.mirror, &spec, &|_| false) {
            Some(d) => {
                let id = sup
                    .mirror
                    .place(d.pm, spec.clone(), d.assignment.clone())
                    .unwrap_or_else(|e| panic!("algorithm decision rejected by mirror: {e}"));
                let handle = JobHandle {
                    id,
                    spec,
                    assignment: d.assignment,
                    trace,
                };
                sup.registry.insert(id, handle.clone());
                // Agents cannot die before the first tick, so a send
                // failure here is unreachable; absorb it anyway.
                let sent = send_to_agent(&sup.to_nodes[d.pm.0], d.pm.0, ToNode::Start(handle));
                debug_assert!(sent.is_ok(), "agent died before the first tick");
            }
            None => rejected += 1,
        }
    }
    let pms_used_initial = sup.mirror.active_pm_count();

    // --- Scan loop ---------------------------------------------------------
    let node_cap = Mhz(cfg.slots_per_core * u64::from(cfg.cores_per_node));
    let mut migrations = 0usize;
    let mut overload_events = 0usize;
    let mut slo_samples = 0usize;
    let mut active_samples = 0usize;
    // Messages set aside by a rejoin drain (see [`Supervisor::rejoin`]),
    // consumed before the live channel so ordering is preserved.
    let mut pending: VecDeque<ToController> = VecDeque::new();

    for t in 0..scans {
        for node in 0..cfg.nodes {
            if sup.state[node] == NodeState::Dead {
                continue;
            }
            // Quarantined nodes still get ticks so a merely-stalled agent
            // can answer a current one and rejoin.
            if let Err(e) = send_to_agent(&sup.to_nodes[node], node, ToNode::Tick { t }) {
                sup.quarantine(node, t, &e, placer);
            }
        }

        // Collect one current-scan status per non-dead node (lockstep),
        // under a shared real-time deadline. On the fault-free path every
        // agent answers immediately and the deadline is never felt.
        let mut job_demand: HashMap<VmId, u64> = HashMap::new();
        let mut node_demand: Vec<u64> = vec![0; cfg.nodes];
        let mut reported = vec![false; cfg.nodes];
        let mut awaiting = sup.state.iter().filter(|s| **s != NodeState::Dead).count();
        let deadline = Instant::now() + timeout;
        while awaiting > 0 {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match next_message(&mut pending, &from_nodes, remaining) {
                Ok(ToController::Status {
                    node,
                    t: rt,
                    job_demands,
                }) => {
                    if rt != t || reported[node] {
                        // A stale answer from a previously-stalled agent
                        // (its jobs were re-placed; the demands are void).
                        continue;
                    }
                    reported[node] = true;
                    awaiting -= 1;
                    match sup.state[node] {
                        NodeState::Up => {
                            for (id, d) in job_demands {
                                node_demand[node] += d;
                                job_demand.insert(id, d);
                            }
                        }
                        // A current-scan status from a quarantined node
                        // means it is back; readmit it (empty) and ignore
                        // the demands of its already-re-placed jobs.
                        NodeState::Quarantined => {
                            sup.rejoin(node, t, placer, &from_nodes, &mut pending);
                        }
                        NodeState::Dead => {}
                    }
                }
                // A late kill acknowledgment from a node that timed out
                // mid-handshake; the job was already recovered.
                Ok(ToController::Killed { .. }) => {}
                Err(RecvTimeoutError::Timeout) => {
                    let stragglers: Vec<usize> = (0..cfg.nodes)
                        .filter(|&n| sup.state[n] == NodeState::Up && !reported[n])
                        .collect();
                    for node in stragglers {
                        let err = ControllerError::NodeTimeout { node, scan: t };
                        sup.quarantine(node, t, &err, placer);
                    }
                    awaiting = 0;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let up: Vec<usize> = (0..cfg.nodes)
                        .filter(|&n| sup.state[n] == NodeState::Up)
                        .collect();
                    for node in up {
                        let err = ControllerError::NodeDisconnected { node };
                        sup.quarantine(node, t, &err, placer);
                    }
                    awaiting = 0;
                }
            }
        }

        // SLO + overload accounting over *active* nodes. Jobs lost to
        // capacity exhaustion keep violating their SLO every scan.
        let mut overloaded: Vec<usize> = Vec::new();
        #[allow(clippy::needless_range_loop)] // node is both PmId and index
        for node in 0..cfg.nodes {
            if sup.state[node] != NodeState::Up || sup.mirror.pm(PmId(node)).is_empty() {
                continue;
            }
            active_samples += 1;
            let util = node_demand[node] as f64 / node_cap.get() as f64;
            if util >= cfg.slo_threshold {
                slo_samples += 1;
            }
            if util > cfg.overload_threshold {
                overloaded.push(node);
            }
        }
        active_samples += sup.lost_jobs;
        slo_samples += sup.lost_jobs;
        if !overloaded.is_empty() {
            overload_events += 1;
        }
        let overloaded_set: std::collections::HashSet<usize> = overloaded.iter().copied().collect();

        // Kill-and-restart migrations.
        for src in overloaded {
            if sup.state[src] != NodeState::Up {
                continue;
            }
            loop {
                let util = node_demand[src] as f64 / node_cap.get() as f64;
                if util <= cfg.overload_threshold || sup.mirror.pm(PmId(src)).is_empty() {
                    break;
                }
                let Some(victim) = evictor.select(sup.mirror.pm(PmId(src)), &|id| {
                    Mhz(job_demand.get(&id).copied().unwrap_or(0))
                }) else {
                    break;
                };
                let victim_demand = job_demand.get(&victim).copied().unwrap_or(0);
                // Choose the destination BEFORE killing so an unplaceable
                // job is never interrupted.
                let Ok((_, spec, _)) = sup.mirror.remove(victim) else {
                    debug_assert!(false, "evictor selected a non-resident job {}", victim.0);
                    break;
                };
                let exclude = |pm: PmId| -> bool {
                    pm.0 == src
                        || overloaded_set.contains(&pm.0)
                        || (node_demand[pm.0] + victim_demand) as f64 / node_cap.get() as f64
                            > cfg.overload_threshold
                };
                let Some(d) = placer.choose(&sup.mirror, &spec, &exclude) else {
                    // Nowhere to go: put it back and stop evicting here.
                    let Some(a) = sup.mirror.pm(PmId(src)).first_feasible(&spec) else {
                        debug_assert!(false, "job came from this node");
                        break;
                    };
                    let restored = sup.mirror.place_as(victim, PmId(src), spec, a);
                    debug_assert!(restored.is_ok(), "restoring a just-removed job cannot fail");
                    break;
                };
                // Kill on the source, restart on the destination. A source
                // that dies mid-handshake forfeits the job: the registry
                // copy restarts on the destination and the source is
                // quarantined.
                let killed = match send_to_agent(&sup.to_nodes[src], src, ToNode::Kill(victim)) {
                    Ok(()) => {
                        let kill_deadline = Instant::now() + timeout;
                        loop {
                            let remaining = kill_deadline.saturating_duration_since(Instant::now());
                            match next_message(&mut pending, &from_nodes, remaining) {
                                Ok(ToController::Killed { job, .. }) if job.id == victim => {
                                    break Some(job);
                                }
                                // Foreign late acks and stale statuses are
                                // dropped; rejoins wait for the next scan.
                                Ok(_) => {}
                                Err(_) => break None,
                            }
                        }
                    }
                    Err(_) => None,
                };
                let Some(job) = killed else {
                    // Quarantining the source may re-place its other jobs
                    // onto our chosen destination, so the victim needs a
                    // fresh decision afterwards.
                    let registered = sup.registry.get(&victim).cloned();
                    let err = ControllerError::NodeTimeout { node: src, scan: t };
                    sup.quarantine(src, t, &err, placer);
                    let Some(job) = registered else {
                        debug_assert!(false, "victim {} missing from the registry", victim.0);
                        sup.lost_jobs += 1;
                        break;
                    };
                    match placer.choose(&sup.mirror, &spec, &|_| false) {
                        Some(d2) => {
                            sup.mirror
                                .place_as(victim, d2.pm, spec, d2.assignment.clone())
                                .unwrap_or_else(|e| {
                                    panic!("algorithm decision rejected by mirror: {e}")
                                });
                            let handle = JobHandle {
                                assignment: d2.assignment,
                                ..job
                            };
                            sup.registry.insert(victim, handle.clone());
                            match send_to_agent(
                                &sup.to_nodes[d2.pm.0],
                                d2.pm.0,
                                ToNode::Start(handle),
                            ) {
                                Ok(()) => {
                                    sup.replaced_jobs += 1;
                                    event("testbed.job_replaced")
                                        .field("job", victim.0)
                                        .field("from", src)
                                        .field("to", d2.pm.0)
                                        .field("scan", t)
                                        .emit();
                                }
                                Err(err) => sup.quarantine(d2.pm.0, t, &err, placer),
                            }
                        }
                        None => {
                            sup.lost_jobs += 1;
                            sup.registry.remove(&victim);
                            event("testbed.job_lost")
                                .field("job", victim.0)
                                .field("from", src)
                                .field("scan", t)
                                .emit();
                        }
                    }
                    break;
                };
                sup.mirror
                    .place_as(victim, d.pm, spec, d.assignment.clone())
                    .unwrap_or_else(|e| panic!("algorithm decision rejected by mirror: {e}"));
                let handle = JobHandle {
                    assignment: d.assignment,
                    ..job
                };
                sup.registry.insert(victim, handle.clone());
                match send_to_agent(&sup.to_nodes[d.pm.0], d.pm.0, ToNode::Start(handle)) {
                    Ok(()) => migrations += 1,
                    Err(err) => {
                        // Dead destination: drain it (re-placing this job
                        // with the rest) and stop evicting this source.
                        sup.quarantine(d.pm.0, t, &err, placer);
                        break;
                    }
                }
                node_demand[d.pm.0] += victim_demand;
                node_demand[src] = node_demand[src].saturating_sub(victim_demand);
                if sup.state[src] != NodeState::Up {
                    break;
                }
            }
        }
    }

    // --- Shutdown -----------------------------------------------------------
    for (node, tx) in sup.to_nodes.iter().enumerate() {
        if sup.state[node] != NodeState::Dead {
            let _ = tx.send(ToNode::Shutdown);
        }
    }
    for h in handles {
        h.join().unwrap_or_else(|_| panic!("agent thread panicked"));
    }

    TestbedOutcome {
        pms_used_initial,
        pms_used: sup.mirror.ever_used_count(),
        migrations,
        slo_violation_pct: if active_samples == 0 {
            0.0
        } else {
            100.0 * slo_samples as f64 / active_samples as f64
        },
        overload_events,
        rejected_jobs: rejected,
        node_failures: sup.node_failures,
        rejoined_nodes: sup.rejoined_nodes,
        replaced_jobs: sup.replaced_jobs,
        lost_jobs: sup.lost_jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_baselines::{FirstFit, MinimumMigrationTime};

    fn quick_cfg() -> TestbedConfig {
        TestbedConfig {
            duration_s: 300, // 30 ticks
            ..TestbedConfig::default()
        }
    }

    fn run_ff(cfg: &TestbedConfig, n_jobs: usize, seed: u64) -> TestbedOutcome {
        run_testbed(
            cfg,
            n_jobs,
            &mut FirstFit::new(),
            &mut MinimumMigrationTime::new(),
            seed,
        )
    }

    #[test]
    fn testbed_is_deterministic() {
        let cfg = quick_cfg();
        assert_eq!(run_ff(&cfg, 50, 3), run_ff(&cfg, 50, 3));
    }

    #[test]
    fn jobs_fit_and_nodes_are_used() {
        let cfg = quick_cfg();
        let o = run_ff(&cfg, 100, 1);
        assert_eq!(o.rejected_jobs, 0);
        assert!(o.pms_used >= 1 && o.pms_used <= cfg.nodes);
    }

    #[test]
    fn more_jobs_use_at_least_as_many_nodes() {
        let cfg = quick_cfg();
        let small = run_ff(&cfg, 50, 7);
        let large = run_ff(&cfg, 250, 7);
        assert!(large.pms_used >= small.pms_used);
    }

    #[test]
    fn hot_workload_triggers_kill_restart_migrations() {
        // Unscaled traces + low overload threshold: FirstFit's packing
        // must overload and migrate.
        let cfg = TestbedConfig {
            duration_s: 600,
            utilization_scale: 1.0,
            overload_threshold: 0.25,
            ..TestbedConfig::default()
        };
        let o = run_ff(&cfg, 120, 11);
        assert!(o.overload_events > 0, "{o:?}");
        assert!(o.migrations > 0, "{o:?}");
    }

    #[test]
    fn slo_percentage_is_bounded() {
        let o = run_ff(&quick_cfg(), 150, 5);
        assert!((0.0..=100.0).contains(&o.slo_violation_pct));
    }

    #[test]
    fn controller_errors_name_the_node() {
        let disc = ControllerError::NodeDisconnected { node: 7 };
        assert!(disc.to_string().contains("node 7"), "{disc}");
        let slow = ControllerError::NodeTimeout { node: 3, scan: 12 };
        let msg = slow.to_string();
        assert!(msg.contains("node 3") && msg.contains("scan 12"), "{msg}");
    }
}
