//! End-to-end checks of `pagerankvm audit` exit codes: clean runs exit
//! zero, `--self-test` (deliberate violations) exits non-zero.

#![allow(clippy::unwrap_used)]

use std::process::Command;

fn pagerankvm(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pagerankvm"))
        .args(args)
        .output()
        .unwrap()
}

#[test]
fn audit_on_a_default_run_is_clean() {
    let out = pagerankvm(&["audit", "--vms", "40", "--hours", "1", "--seed", "7"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    // All four invariant families must have been exercised…
    for family in [
        "capacity",
        "anti-collocation",
        "graph-edges",
        "score-distribution",
    ] {
        assert!(stdout.contains(family), "missing {family}: {stdout}");
    }
    // …with zero violations.
    assert!(stdout.contains("no violations"), "{stdout}");
}

#[test]
fn audit_self_test_exits_non_zero() {
    let out = pagerankvm(&["audit", "--self-test"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("self-test OK"), "{stderr}");
}

#[test]
fn unknown_flag_exits_non_zero() {
    let out = pagerankvm(&["audit", "--bogus", "1"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --bogus"), "{stderr}");
}
