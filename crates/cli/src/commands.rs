//! Subcommand implementations and minimal flag parsing.

use pagerankvm::{
    audit, paths_to_best, rank_stats, top_profiles, AuditReport, GraphLimits, PageRankConfig,
    ProfileSpace, ProfileVm, ScoreTable,
};
use prvm_model::{catalog, Assignment, Quantizer};
use prvm_obs::{LogMode, ObsConfig, Registry, Span};
use prvm_serve::{CatalogSpec, Client, IoChaosOutcome, Server, ServerConfig, Store};
use prvm_sim::{
    build_cluster, simulate_faulty, simulate_traced, simulate_with_audit, Algorithm, FaultPlan,
    SimConfig, Workload, WorkloadConfig,
};
use prvm_testbed::{run_testbed, TestbedConfig};
use prvm_traces::TraceKind;
use std::io::Write as _;
use std::sync::Arc;

/// Top-level usage text.
pub const USAGE: &str = "\
pagerankvm — PageRank-based VM placement (ICDCS'18 reproduction)

commands:
  rank      [--dims 4] [--cap 4] [--profile a,b,c,d]
            build the paper's example score table; show stats, the top
            profiles, and (with --profile) one profile's score and its
            number of paths to the best profile
  place     --vms N [--algo NAME] [--seed N]
            place a seeded EC2-mix workload; print PMs used
  simulate  --vms N [--algo NAME] [--seed N] [--hours H] [--csv FILE]
            run the trace-driven simulation; print the four metrics and
            optionally dump the per-scan time series as CSV
  testbed   --jobs N [--algo NAME] [--seed N] [--minutes M]
            run the emulated GENI testbed
  chaos     [--target sim|serve] [--vms N] [--seed N] [--scans N]
            [--requests N]
            run the seeded fault-injection matrix and print a comparison
            table. --target sim (default): every paper algorithm against
            every simulator fault preset (none, pm-crash,
            flaky-migrations, trace-noise, all); faults are strictly
            opt-in, so the `none` row equals a plain simulate.
            --target serve: drive the crash-safe daemon's state machine
            through every I/O fault preset (short-io, disk-full,
            bit-rot, torn-write, lost-sync, ghost-ack) for --requests
            scripted ops each, proving recovery digests match after
            every injected crash
  serve     --store DIR [--addr HOST:PORT] [--pms N] [--queue N]
            [--deadline-ms N] [--compact-every N] [--coarse]
            run the placement daemon: framed-TCP protocol, checksummed
            write-ahead journal in --store, bounded admission queue,
            per-request deadlines; SIGTERM/SIGINT drains gracefully
            (finish admitted work, cut a final snapshot, exit).
            --coarse uses a low-resolution score book (fast start; for
            smoke tests)
  serve-req OP [ARG] [--addr HOST:PORT] [--deadline-ms N]
            one-shot client for a running daemon. OP is one of:
            place TYPE | evict ID | migrate ID | stats | state |
            snapshot | drain. `stats` prints the full reply as JSON;
            `state` prints only the journal-backed half (identical
            across kill/restart — diff it in CI)
  report    FILE.jsonl [--format text|json]
            summarize a recorded event log: phase wall-time breakdown,
            PageRank convergence, event counts; --format json emits the
            summary as machine-readable JSON
  audit     [--vms N] [--algo NAME] [--seed N] [--hours H] [--self-test]
            audit the score book (graph edges, score distributions) and a
            sim run (capacity, anti-collocation after every step); exits
            non-zero on any violation. --self-test injects deliberate
            violations to prove the checker fires
  bench     [--vms a,b,c] [--threads a,b,c] [--repeats N] [--seed N]
            [--out FILE] [--check FILE] [--trace FILE.json]
            [--check-trace FILE.json] [--gate FILE] [--gate-threshold F]
            perf sweep: time graph build, PageRank convergence and
            end-to-end placement at every VM count x worker count, and
            write BENCH_PRVM.json (median/p95 ms, speedup vs the first
            worker count). --check validates an existing report instead;
            --trace also records a Chrome trace of the sweep;
            --check-trace validates an existing trace file; --gate
            compares fresh medians against a baseline report and exits
            non-zero on any regression beyond --gate-threshold
            (default 0.15 = 15%)

parallelism (place, simulate, testbed, chaos):
  --threads N             worker threads for graph build, PageRank and
                          sim repeats (default: all hardware threads);
                          results are bit-identical at any setting

observability (place, simulate, testbed, chaos):
  --log off|pretty|json   stream events to stderr (default off)
  --events FILE.jsonl     record every event as JSON lines
  --metrics FILE.json     dump the metrics registry (phases, counters,
                          gauges, residual series) at exit

profiling (place, simulate):
  --trace FILE.json       record per-worker span timelines and write a
                          Chrome trace-event file (open in
                          chrome://tracing or Perfetto)

algorithms: pagerankvm (default), 2choice, ff, ffdsum, compvm, bestfit,
worstfit";

/// Install the event sink from `--log`/`--events` and hand back the
/// `--metrics` path for [`obs_finish`].
fn obs_setup(f: &[(String, Option<String>)]) -> Result<Option<String>, String> {
    let log = match value_of(f, "log")? {
        None => LogMode::Off,
        Some(v) => LogMode::parse(v)
            .ok_or_else(|| format!("bad value for --log: {v} (off|pretty|json)"))?,
    };
    let events_path = value_of(f, "events")?.map(std::path::PathBuf::from);
    prvm_obs::init(ObsConfig { log, events_path }).map_err(|e| format!("--events: {e}"))?;
    Ok(value_of(f, "metrics")?.map(str::to_owned))
}

/// Flush the event sink and write the `--metrics` JSON dump, if asked.
fn obs_finish(metrics: Option<String>) -> Result<(), String> {
    prvm_obs::flush().map_err(|e| e.to_string())?;
    if let Some(path) = metrics {
        let snapshot = Registry::global().snapshot();
        let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
        let mut file = std::fs::File::create(&path).map_err(|e| format!("--metrics: {e}"))?;
        writeln!(file, "{json}").map_err(|e| format!("--metrics: {e}"))?;
        println!("  metrics written to {path}");
    }
    Ok(())
}

/// Start the per-worker timeline recorder if `--trace` was given; the
/// returned sink must be handed to [`trace_finish`] after the run.
fn trace_setup(
    f: &[(String, Option<String>)],
) -> Result<Option<(String, prvm_obs::TraceSink)>, String> {
    Ok(value_of(f, "trace")?.map(|p| (p.to_owned(), prvm_obs::TraceSink::start(p))))
}

/// Stop recording and write the schema-validated Chrome trace file.
fn trace_finish(sink: Option<(String, prvm_obs::TraceSink)>) -> Result<(), String> {
    if let Some((path, sink)) = sink {
        let stats = sink.finish().map_err(|e| format!("--trace: {e}"))?;
        println!(
            "  trace written to {path} ({} intervals, {} worker tracks)",
            stats.intervals, stats.worker_tracks
        );
    }
    Ok(())
}

/// Parse `--key value` pairs (plus bare `--flag` booleans).
fn flags(args: &[String]) -> Result<Vec<(String, Option<String>)>, String> {
    let mut out = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{a}`"))?;
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().cloned(),
            _ => None,
        };
        out.push((key.to_string(), value));
    }
    Ok(out)
}

/// Reject flags this command does not understand (catches typos like
/// `--vmz 10`, which would otherwise be silently ignored).
fn known(flags: &[(String, Option<String>)], accepted: &[&str]) -> Result<(), String> {
    for (k, _) in flags {
        if !accepted.iter().any(|a| a == k) {
            return Err(format!("unknown flag --{k}"));
        }
    }
    Ok(())
}

/// Look up a flag's value; a flag present *without* a value is a usage
/// error rather than silently equal to the flag being absent.
fn value_of<'a>(
    flags: &'a [(String, Option<String>)],
    key: &str,
) -> Result<Option<&'a str>, String> {
    match flags.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Some(v))) => Ok(Some(v)),
        Some((_, None)) => Err(format!("--{key} needs a value")),
    }
}

fn has(flags: &[(String, Option<String>)], key: &str) -> bool {
    flags.iter().any(|(k, _)| k == key)
}

fn parse<T: std::str::FromStr>(
    flags: &[(String, Option<String>)],
    key: &str,
    default: T,
) -> Result<T, String> {
    match value_of(flags, key)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
    }
}

/// Apply `--threads N` to the global worker pool (0 or absent = one
/// worker per hardware thread). The deterministic pool contract
/// (DESIGN.md §10) means this only changes wall-clock, never results.
fn threads_setup(flags: &[(String, Option<String>)]) -> Result<(), String> {
    if let Some(v) = value_of(flags, "threads")? {
        let n: usize = v
            .parse()
            .map_err(|_| format!("bad value for --threads: {v}"))?;
        if n == 0 {
            return Err("--threads must be positive".into());
        }
        prvm_par::set_global_threads(n);
    }
    Ok(())
}

fn algo(flags: &[(String, Option<String>)]) -> Result<Algorithm, String> {
    Ok(match value_of(flags, "algo")?.unwrap_or("pagerankvm") {
        "pagerankvm" => Algorithm::PageRankVm,
        "2choice" => Algorithm::TwoChoice,
        "ff" => Algorithm::FirstFit,
        "ffdsum" => Algorithm::FfdSum,
        "compvm" => Algorithm::CompVm,
        "bestfit" => Algorithm::BestFit,
        "worstfit" => Algorithm::WorstFit,
        other => return Err(format!("unknown algorithm `{other}`")),
    })
}

/// `pagerankvm rank`.
pub fn rank(args: &[String]) -> Result<(), String> {
    let f = flags(args)?;
    known(&f, &["dims", "cap", "profile"])?;
    let dims: usize = parse(&f, "dims", 4)?;
    let cap: u16 = parse(&f, "cap", 4)?;
    if dims == 0 || cap == 0 {
        return Err("--dims and --cap must be positive".into());
    }

    let table = ScoreTable::build(
        ProfileSpace::uniform(dims, cap),
        vec![
            ProfileVm::from_demands("[1,1]", vec![vec![1; 2.min(dims)]]),
            ProfileVm::from_demands("[1x dims]", vec![vec![1; dims]]),
        ],
        &PageRankConfig::default(),
        GraphLimits::default(),
    )
    .map_err(|e| e.to_string())?;

    let stats = rank_stats(&table);
    println!(
        "profile space: {dims} dims x cap {cap}; {} reachable profiles, {} edges",
        stats.profiles,
        table.graph().edge_count()
    );
    println!(
        "scores: min {:.3e}, mean {:.3e}, max {:.3e}; {:.0}% of profiles can still reach the best profile",
        stats.min,
        stats.mean,
        stats.max,
        stats.best_reaching_fraction * 100.0
    );

    if let Some(spec) = value_of(&f, "profile")? {
        let raw: Vec<u64> = spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("bad profile `{spec}`"))
            })
            .collect::<Result<_, _>>()?;
        if raw.len() != dims {
            return Err(format!("--profile needs {dims} values"));
        }
        let p = table.space().canonicalize(&[&raw]);
        match table.score(&p) {
            Some(s) => {
                let paths = paths_to_best(table.graph())
                    .ok_or("internal error: the best profile is not in the graph")?;
                let node = table
                    .graph()
                    .node(&p)
                    .ok_or("internal error: scored profile missing from the graph")?;
                println!(
                    "profile {p}: score {:.6e}, {} path(s) to the best profile",
                    s, paths[node as usize]
                );
            }
            None => println!("profile {p} is not reachable by the VM set"),
        }
    } else {
        println!("\ntop profiles:");
        for (p, s) in top_profiles(&table, 8) {
            println!("  {p}  {:.6e}", s);
        }
    }
    Ok(())
}

/// `pagerankvm place`.
pub fn place(args: &[String]) -> Result<(), String> {
    let f = flags(args)?;
    known(
        &f,
        &[
            "vms", "algo", "seed", "threads", "log", "events", "metrics", "trace",
        ],
    )?;
    let n: usize = parse(&f, "vms", 100)?;
    let seed: u64 = parse(&f, "seed", 42)?;
    let algorithm = algo(&f)?;
    if n == 0 {
        return Err("--vms must be positive".into());
    }
    threads_setup(&f)?;
    let metrics = obs_setup(&f)?;
    let trace = trace_setup(&f)?;
    let run_span = Span::enter("place");

    let book = prvm_sim::ec2_score_book().map_err(|e| e.to_string())?;
    let wl = WorkloadConfig::sized_for(n, TraceKind::PlanetLab);
    let workload = Workload::generate(&wl, 1, seed);
    let mut cluster = build_cluster(&wl);
    let (mut placer, _) = algorithm.build(&book, seed);
    let mut specs = workload.specs.clone();
    placer.order_batch(&mut specs);
    let ids =
        prvm_model::place_batch(placer.as_mut(), &mut cluster, specs).map_err(|e| e.to_string())?;
    println!(
        "{}: placed {} VMs on {} PMs (pool of {})",
        algorithm.name(),
        ids.len(),
        cluster.active_pm_count(),
        cluster.len()
    );
    // Per-type PM utilization summary.
    for pm_type in catalog::ec2_pm_types() {
        let (count, cpu): (usize, f64) = cluster
            .used_pms()
            .map(|id| cluster.pm(id))
            .filter(|pm| pm.spec().name == pm_type.name)
            .fold((0, 0.0), |(c, u), pm| (c + 1, u + pm.cpu_utilization()));
        if count > 0 {
            println!(
                "  {}: {count} used, mean reserved CPU {:.0}%",
                pm_type.name,
                cpu / count as f64 * 100.0
            );
        }
    }
    drop(run_span);
    trace_finish(trace)?;
    obs_finish(metrics)
}

/// `pagerankvm simulate`.
pub fn simulate(args: &[String]) -> Result<(), String> {
    let f = flags(args)?;
    known(
        &f,
        &[
            "vms", "algo", "seed", "hours", "csv", "threads", "log", "events", "metrics", "trace",
        ],
    )?;
    let n: usize = parse(&f, "vms", 100)?;
    let seed: u64 = parse(&f, "seed", 42)?;
    let hours: u64 = parse(&f, "hours", 24)?;
    let algorithm = algo(&f)?;
    threads_setup(&f)?;
    let metrics = obs_setup(&f)?;
    let trace = trace_setup(&f)?;
    let run_span = Span::enter("simulate");

    let sim = SimConfig {
        horizon_s: hours * 3600,
        ..SimConfig::default()
    };
    let wl = WorkloadConfig::sized_for(n, TraceKind::PlanetLab);
    let workload = Workload::generate(&wl, sim.scans(), seed);
    let book = prvm_sim::ec2_score_book().map_err(|e| e.to_string())?;
    let (mut placer, mut evictor) = algorithm.build(&book, seed);
    let (o, ts) = simulate_traced(
        &sim,
        build_cluster(&wl),
        &workload,
        placer.as_mut(),
        evictor.as_mut(),
    );
    println!(
        "{} over {hours} h, {n} VMs (seed {seed}):",
        algorithm.name()
    );
    println!("  PMs used (allocation): {}", o.pms_used_initial);
    println!("  PMs ever used:         {}", o.pms_used);
    println!("  energy:                {:.1} kWh", o.energy_kwh);
    println!("  migrations:            {}", o.migrations);
    println!("  SLO violations:        {:.3} %", o.slo_violation_pct);
    println!("  overloaded scans:      {}", o.overload_events);

    if let Some(path) = value_of(&f, "csv")? {
        let mut file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        ts.write_csv(&mut file).map_err(|e| e.to_string())?;
        println!("  per-scan time series written to {path}");
    }
    drop(run_span);
    trace_finish(trace)?;
    obs_finish(metrics)
}

/// `pagerankvm testbed`.
pub fn testbed(args: &[String]) -> Result<(), String> {
    let f = flags(args)?;
    known(
        &f,
        &[
            "jobs", "algo", "seed", "minutes", "threads", "log", "events", "metrics",
        ],
    )?;
    let jobs: usize = parse(&f, "jobs", 150)?;
    let seed: u64 = parse(&f, "seed", 42)?;
    let minutes: u64 = parse(&f, "minutes", 240)?;
    let algorithm = algo(&f)?;
    threads_setup(&f)?;
    let metrics = obs_setup(&f)?;
    let run_span = Span::enter("testbed");

    let cfg = TestbedConfig {
        duration_s: minutes * 60,
        ..TestbedConfig::default()
    };
    let book = Arc::new(cfg.score_book().map_err(|e| e.to_string())?);
    let (mut placer, mut evictor) = algorithm.build(&book, seed);
    let o = run_testbed(&cfg, jobs, placer.as_mut(), evictor.as_mut(), seed);
    println!(
        "{} on the emulated GENI testbed ({} nodes, {} min, {jobs} jobs, seed {seed}):",
        algorithm.name(),
        cfg.nodes,
        minutes
    );
    println!("  nodes used (allocation): {}", o.pms_used_initial);
    println!("  nodes ever used:         {}", o.pms_used);
    println!("  kill/restart migrations: {}", o.migrations);
    println!("  SLO violations:          {:.2} %", o.slo_violation_pct);
    println!("  rejected jobs:           {}", o.rejected_jobs);
    drop(run_span);
    obs_finish(metrics)
}

/// One cell of the chaos matrix: an algorithm's metrics under one fault
/// preset.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRow {
    /// Algorithm display name.
    pub algorithm: &'static str,
    /// Fault preset name ([`FaultPlan::preset_names`]).
    pub fault: &'static str,
    /// Distinct PMs ever used.
    pub pms_used: usize,
    /// Energy in kWh.
    pub energy_kwh: f64,
    /// Overload migrations performed.
    pub migrations: usize,
    /// SLO violation percentage.
    pub slo_pct: f64,
    /// PMs crashed by the plan.
    pub pm_failures: usize,
    /// VMs successfully evacuated off crashed PMs.
    pub evacuations: usize,
    /// Migration/evacuation attempts that failed in flight.
    pub failed_migrations: usize,
    /// Total repaired downtime across evacuations, in seconds.
    pub recovery_time_s: u64,
}

/// Run the fault matrix: every paper algorithm × every fault preset, all
/// from one seed. Pure (no printing), so tests can assert determinism.
///
/// # Errors
///
/// Propagates score-book construction failures.
pub fn chaos_matrix(
    seed: u64,
    scans: usize,
    n_vms: usize,
) -> Result<Vec<ChaosRow>, pagerankvm::GraphError> {
    let book = prvm_sim::ec2_score_book()?;
    let base = SimConfig::default();
    let sim = SimConfig {
        horizon_s: scans as u64 * base.scan_interval_s,
        ..base
    };
    let wl = WorkloadConfig::sized_for(n_vms, TraceKind::PlanetLab);
    let mut rows = Vec::new();
    for algorithm in Algorithm::PAPER_SET {
        for fault in FaultPlan::preset_names() {
            let plan = FaultPlan::preset(fault, scans, seed).expect("known preset name");
            let workload = Workload::generate(&wl, sim.scans(), seed);
            let (mut placer, mut evictor) = algorithm.build(&book, seed);
            let o = simulate_faulty(
                &sim,
                build_cluster(&wl),
                &workload,
                placer.as_mut(),
                evictor.as_mut(),
                &plan,
            );
            rows.push(ChaosRow {
                algorithm: algorithm.name(),
                fault,
                pms_used: o.pms_used,
                energy_kwh: o.energy_kwh,
                migrations: o.migrations,
                slo_pct: o.slo_violation_pct,
                pm_failures: o.pm_failures,
                evacuations: o.evacuations,
                failed_migrations: o.failed_migrations,
                recovery_time_s: o.recovery_time_s,
            });
        }
    }
    Ok(rows)
}

/// The daemon half of `pagerankvm chaos`: every I/O fault preset run
/// through [`prvm_serve::run_io_chaos`] at the same seed.
pub fn io_chaos_matrix(seed: u64, requests: usize) -> Result<Vec<IoChaosOutcome>, String> {
    prvm_faults::IoFaultPlan::io_preset_names()
        .iter()
        .map(|preset| {
            prvm_serve::run_io_chaos(preset, seed, requests).map_err(|e| format!("{preset}: {e}"))
        })
        .collect()
}

/// `pagerankvm chaos --target serve`: the I/O fault table.
fn chaos_serve(seed: u64, requests: usize) -> Result<(), String> {
    let rows = io_chaos_matrix(seed, requests)?;
    println!(
        "serve chaos: {} I/O fault presets x {requests} requests (seed {seed})",
        rows.len()
    );
    println!(
        "\n{:<12} {:>6} {:>6} {:>8} {:>7} {:>5} {:>6} {:>7} {:<16}",
        "preset", "acked", "reject", "jrnl-err", "crashes", "lost", "ghost", "checks", "digest"
    );
    for row in &rows {
        println!(
            "{:<12} {:>6} {:>6} {:>8} {:>7} {:>5} {:>6} {:>7} {:<16}",
            row.preset,
            row.acked,
            row.rejected,
            row.journal_errors,
            row.crashes,
            row.lost_inflight,
            row.ghost_acks,
            row.digest_checks,
            &row.final_digest[..row.final_digest.len().min(16)]
        );
    }
    println!("\nevery crash recovery replayed to a digest-identical state");
    Ok(())
}

/// `pagerankvm chaos`.
pub fn chaos(args: &[String]) -> Result<(), String> {
    let f = flags(args)?;
    known(
        &f,
        &[
            "target", "vms", "seed", "scans", "requests", "threads", "log", "events", "metrics",
        ],
    )?;
    let n: usize = parse(&f, "vms", 60)?;
    let seed: u64 = parse(&f, "seed", 42)?;
    let scans: usize = parse(&f, "scans", 48)?;
    let requests: usize = parse(&f, "requests", 64)?;
    if n == 0 || scans == 0 || requests == 0 {
        return Err("--vms, --scans and --requests must be positive".into());
    }
    match value_of(&f, "target")?.unwrap_or("sim") {
        "sim" => {}
        "serve" => return chaos_serve(seed, requests),
        other => return Err(format!("bad value for --target: {other} (sim|serve)")),
    }
    threads_setup(&f)?;
    let metrics = obs_setup(&f)?;
    let run_span = Span::enter("chaos");

    let rows = chaos_matrix(seed, scans, n).map_err(|e| e.to_string())?;
    println!(
        "chaos matrix: {} algorithms x {} fault presets ({n} VMs, {scans} scans, seed {seed})",
        Algorithm::PAPER_SET.len(),
        FaultPlan::preset_names().len()
    );
    println!(
        "\n{:<17} {:<18} {:>4} {:>8} {:>5} {:>7} {:>6} {:>5} {:>8} {:>9}",
        "fault",
        "algorithm",
        "PMs",
        "kWh",
        "migr",
        "SLO%",
        "crash",
        "evac",
        "failmigr",
        "repair(s)"
    );
    for row in &rows {
        println!(
            "{:<17} {:<18} {:>4} {:>8.1} {:>5} {:>7.3} {:>6} {:>5} {:>8} {:>9}",
            row.fault,
            row.algorithm,
            row.pms_used,
            row.energy_kwh,
            row.migrations,
            row.slo_pct,
            row.pm_failures,
            row.evacuations,
            row.failed_migrations,
            row.recovery_time_s
        );
    }
    drop(run_span);
    obs_finish(metrics)
}

/// `pagerankvm audit`: run every invariant family and exit non-zero on
/// any violation.
pub fn audit(args: &[String]) -> Result<(), String> {
    let f = flags(args)?;
    known(&f, &["vms", "algo", "seed", "hours", "self-test"])?;
    if has(&f, "self-test") {
        return audit_self_test();
    }
    let n: usize = parse(&f, "vms", 100)?;
    let seed: u64 = parse(&f, "seed", 42)?;
    let hours: u64 = parse(&f, "hours", 4)?;
    let algorithm = algo(&f)?;

    // Static half: every profile-graph edge must be a legal single-VM
    // transition and every score vector a proper distribution.
    let book = prvm_sim::ec2_score_book().map_err(|e| e.to_string())?;
    let mut report = audit::check_book(&book);

    // Dynamic half: replay a simulation, re-checking capacity and
    // anti-collocation on the whole cluster after every placement,
    // eviction and migration step.
    let sim = SimConfig {
        horizon_s: hours * 3600,
        ..SimConfig::default()
    };
    let wl = WorkloadConfig::sized_for(n, TraceKind::PlanetLab);
    let workload = Workload::generate(&wl, sim.scans(), seed);
    let (mut placer, mut evictor) = algorithm.build(&book, seed);
    let (_, sim_report) = simulate_with_audit(
        &sim,
        build_cluster(&wl),
        &workload,
        placer.as_mut(),
        evictor.as_mut(),
    );
    report.merge(sim_report);

    println!(
        "audited {} over {hours} h, {n} VMs (seed {seed}):",
        algorithm.name()
    );
    println!("{report}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{} invariant violation(s)",
            report.violations.len()
        ))
    }
}

/// Feed the checker states the safe `Cluster` API refuses to build and
/// prove it flags them (and therefore that `audit` can exit non-zero).
fn audit_self_test() -> Result<(), String> {
    let mut report = AuditReport::default();
    // A collocated assignment: both vCPUs of an m3.large on core 0.
    audit::check_assignment_shape(
        &catalog::vm_m3_large(),
        &Assignment::new(vec![0, 0], vec![0]),
        16,
        4,
        "self-test collocated vm",
        &mut report,
    );
    // A score vector that is not a distribution.
    audit::check_score_vector(&[0.5, 0.7], "self-test scores", &mut report);
    println!("{report}");
    if report.is_clean() {
        Err("self-test FAILED: injected violations were not detected".into())
    } else {
        Err(format!(
            "self-test OK: checker flagged {} injected violation(s); exiting non-zero",
            report.violations.len()
        ))
    }
}

/// `pagerankvm bench`: the perf sweep behind `BENCH_PRVM.json`. The
/// flag grammar matches [`prvm_bench::perf::PerfArgs`] directly, so the
/// subcommand and the standalone `perf` binary accept identical
/// invocations.
pub fn bench(args: &[String]) -> Result<(), String> {
    let perf_args = prvm_bench::perf::PerfArgs::try_parse(args.iter().cloned())?;
    prvm_bench::perf::main_with(&perf_args)
}

/// Build the daemon's catalog: an EC2-mix cluster of `pms` machines,
/// optionally at coarse profile resolution (fast score-book build for
/// smoke tests; the daemon's durability contract is
/// resolution-independent).
fn serve_catalog(pms: usize, coarse: bool) -> CatalogSpec {
    let spec = CatalogSpec::ec2(pms);
    if coarse {
        spec.with_quantizer(Quantizer {
            core_slots: 2,
            mem_levels: 4,
            disk_levels: 2,
        })
    } else {
        spec
    }
}

/// `pagerankvm serve`: run the crash-safe placement daemon until a
/// SIGTERM/SIGINT drain.
pub fn serve(args: &[String]) -> Result<(), String> {
    let f = flags(args)?;
    known(
        &f,
        &[
            "store",
            "addr",
            "pms",
            "queue",
            "deadline-ms",
            "compact-every",
            "coarse",
        ],
    )?;
    let Some(store_dir) = value_of(&f, "store")?.map(str::to_owned) else {
        return Err("--store DIR is required (journal + snapshot directory)".into());
    };
    let addr = value_of(&f, "addr")?.unwrap_or("127.0.0.1:7791").to_owned();
    let pms: usize = parse(&f, "pms", 16)?;
    if pms == 0 {
        return Err("--pms must be positive".into());
    }
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        queue_capacity: parse(&f, "queue", defaults.queue_capacity)?,
        default_deadline_ms: parse(&f, "deadline-ms", defaults.default_deadline_ms)?,
        compact_every: parse(&f, "compact-every", defaults.compact_every)?,
    };
    let catalog_spec = serve_catalog(pms, has(&f, "coarse"));
    std::fs::create_dir_all(&store_dir).map_err(|e| format!("--store {store_dir}: {e}"))?;
    let store = Store::open(&store_dir).map_err(|e| format!("--store {store_dir}: {e}"))?;
    let handle = Server::start(&catalog_spec, store, config, &addr).map_err(|e| e.to_string())?;
    println!(
        "prvm-serve listening on {} (store {store_dir}, {pms} PMs); SIGTERM drains",
        handle.addr()
    );
    let stats = handle.drain_on_signals().map_err(|e| e.to_string())?;
    println!(
        "drained: {} requests ({} placed, {} evicted, {} migrated), {} shed, {} timeouts",
        stats.requests, stats.placed, stats.evicted, stats.migrated, stats.shed, stats.timeouts
    );
    Ok(())
}

/// `pagerankvm serve-req OP [ARG]`: one-shot client for CI and shell
/// scripting against a running daemon.
pub fn serve_req(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: pagerankvm serve-req OP [ARG] [--addr HOST:PORT] \
                         [--deadline-ms N]\n  OP: place TYPE | evict ID | migrate ID | stats | \
                         state | snapshot | drain";
    let Some((op, rest)) = args.split_first().filter(|(op, _)| !op.starts_with("--")) else {
        return Err(USAGE.into());
    };
    let (arg, rest) = match rest.split_first() {
        Some((a, tail)) if !a.starts_with("--") => (Some(a.as_str()), tail),
        _ => (None, rest),
    };
    let f = flags(rest)?;
    known(&f, &["addr", "deadline-ms"])?;
    let addr = value_of(&f, "addr")?.unwrap_or("127.0.0.1:7791");
    let mut client = Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    client.deadline_ms = parse(&f, "deadline-ms", client.deadline_ms)?;
    let id = |arg: Option<&str>| -> Result<u64, String> {
        arg.ok_or_else(|| format!("serve-req {op} needs a VM id\n{USAGE}"))?
            .parse()
            .map_err(|_| format!("serve-req {op}: VM id must be a number\n{USAGE}"))
    };
    match op.as_str() {
        "place" => {
            let ty = arg.ok_or_else(|| format!("serve-req place needs a VM type\n{USAGE}"))?;
            let placed = client.place(ty).map_err(|e| e.to_string())?;
            println!("placed vm {} ({ty}) on pm {}", placed.vm, placed.pm);
        }
        "evict" => {
            let evicted = client.evict(id(arg)?).map_err(|e| e.to_string())?;
            println!("evicted vm {} from pm {}", evicted.vm, evicted.pm);
        }
        "migrate" => {
            let moved = client.migrate(id(arg)?).map_err(|e| e.to_string())?;
            println!(
                "migrated vm {} from pm {} to pm {}",
                moved.vm, moved.from, moved.to
            );
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            let json = serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?;
            println!("{json}");
        }
        "state" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            let json = serde_json::to_string_pretty(&stats.state).map_err(|e| e.to_string())?;
            println!("{json}");
        }
        "snapshot" => {
            let version = client.snapshot().map_err(|e| e.to_string())?;
            println!("snapshot version {version}");
        }
        "drain" => {
            client.drain().map_err(|e| e.to_string())?;
            println!("drain acknowledged");
        }
        other => return Err(format!("unknown serve-req op `{other}`\n{USAGE}")),
    }
    Ok(())
}

/// `pagerankvm report FILE.jsonl [--format text|json]`.
pub fn report(args: &[String]) -> Result<(), String> {
    let Some((path, rest)) = args.split_first().filter(|(p, _)| !p.starts_with("--")) else {
        return Err("usage: pagerankvm report FILE.jsonl [--format text|json]".into());
    };
    let f = flags(rest)?;
    known(&f, &["format"])?;
    let format = value_of(&f, "format")?.unwrap_or("text");
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let summary = prvm_obs::summarize_events(std::io::BufReader::new(file))
        .map_err(|e| format!("{path}: {e}"))?;
    match format {
        "text" => print!("{}", prvm_obs::render_report(&summary)),
        "json" => {
            let json = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
            println!("{json}");
        }
        other => return Err(format!("bad value for --format: {other} (text|json)")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn flag_parsing() {
        let f = flags(&s(&["--vms", "10", "--fresh", "--seed", "7"])).unwrap();
        assert_eq!(value_of(&f, "vms").unwrap(), Some("10"));
        assert!(value_of(&f, "fresh").is_err(), "bare flag has no value");
        assert!(has(&f, "fresh"));
        assert_eq!(parse(&f, "seed", 0u64).unwrap(), 7);
        assert_eq!(parse(&f, "missing", 3u64).unwrap(), 3);
        assert!(flags(&s(&["vms"])).is_err());
    }

    #[test]
    fn algorithm_lookup() {
        let f = flags(&s(&["--algo", "compvm"])).unwrap();
        assert_eq!(algo(&f).unwrap(), Algorithm::CompVm);
        let f = flags(&s(&[])).unwrap();
        assert_eq!(algo(&f).unwrap(), Algorithm::PageRankVm);
        let f = flags(&s(&["--algo", "nope"])).unwrap();
        assert!(algo(&f).is_err());
    }

    #[test]
    fn rank_command_runs() {
        rank(&s(&["--dims", "4", "--cap", "4", "--profile", "3,3,2,2"])).unwrap();
        rank(&s(&["--dims", "3", "--cap", "3"])).unwrap();
        assert!(rank(&s(&["--profile", "1,2"])).is_err()); // wrong arity
        assert!(rank(&s(&["--cap", "0"])).is_err());
    }

    /// One test covers every command that touches the process-global
    /// event sink or timeline recorder, so parallel tests cannot
    /// re-initialize them mid-run.
    #[test]
    fn obs_flags_roundtrip_through_report() {
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("prvm-cli-test-{}-trace.json", std::process::id()));
        place(&s(&[
            "--vms",
            "12",
            "--algo",
            "ff",
            "--seed",
            "1",
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        // The `--trace` file is a schema-valid Chrome trace.
        let text = std::fs::read_to_string(&trace).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        let stats = prvm_obs::validate_chrome_trace(&parsed).unwrap();
        assert!(stats.intervals > 0);

        let events = dir.join(format!("prvm-cli-test-{}.jsonl", std::process::id()));
        let metrics = dir.join(format!("prvm-cli-test-{}.json", std::process::id()));
        simulate(&s(&[
            "--vms",
            "12",
            "--algo",
            "ff",
            "--seed",
            "1",
            "--hours",
            "1",
            "--events",
            events.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();

        // The events file replays through the report subcommand and
        // carries the per-phase spans.
        let log = std::fs::read_to_string(&events).unwrap();
        assert!(log.lines().count() > 0);
        let summary = prvm_obs::summarize_events(std::io::BufReader::new(log.as_bytes())).unwrap();
        let phases: Vec<&str> = summary.phases.iter().map(|p| p.name.as_str()).collect();
        assert!(phases.contains(&"simulate"), "{phases:?}");
        assert!(phases.contains(&"simulate/scan"), "{phases:?}");
        report(&s(&[events.to_str().unwrap()])).unwrap();
        report(&s(&[events.to_str().unwrap(), "--format", "json"])).unwrap();
        // The JSON form round-trips back into the same summary.
        let json = serde_json::to_string(&summary).unwrap();
        let back: prvm_obs::ReportSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
        assert!(report(&s(&["/nonexistent/events.jsonl"])).is_err());
        assert!(report(&s(&[])).is_err());
        let err = report(&s(&[events.to_str().unwrap(), "--format", "xml"])).unwrap_err();
        assert!(err.contains("--format"), "{err}");

        // The metrics dump is valid JSON with the expected sections.
        let dump = std::fs::read_to_string(&metrics).unwrap();
        let value: serde_json::Value = serde_json::from_str(&dump).unwrap();
        assert!(value.field("phases").is_ok());
        assert!(value.field("counters").is_ok());

        // Disable the sink again for any later test in this process.
        prvm_obs::init(ObsConfig::default()).unwrap();
        std::fs::remove_file(&events).ok();
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn bad_log_flag_is_rejected() {
        let err = simulate(&s(&["--vms", "4", "--log", "loud"])).unwrap_err();
        assert!(err.contains("--log"), "{err}");
    }

    #[test]
    fn malformed_flags_are_usage_errors() {
        // A value-taking flag with no value…
        let err = simulate(&s(&["--vms"])).unwrap_err();
        assert!(err.contains("--vms needs a value"), "{err}");
        let err = simulate(&s(&["--vms", "4", "--metrics", "--hours", "1"])).unwrap_err();
        assert!(err.contains("--metrics needs a value"), "{err}");
        // …a non-numeric count…
        let err = simulate(&s(&["--vms", "many"])).unwrap_err();
        assert!(err.contains("bad value for --vms"), "{err}");
        // …and a typo'd flag are all reported, not silently ignored.
        let err = simulate(&s(&["--vmz", "10"])).unwrap_err();
        assert!(err.contains("unknown flag --vmz"), "{err}");
        let err = audit(&s(&["--jobs", "10"])).unwrap_err();
        assert!(err.contains("unknown flag --jobs"), "{err}");
    }

    /// Small but real: the full algorithm × preset grid, run twice, must
    /// agree cell-for-cell; fault injection stays opt-in (the `none`
    /// column injects nothing) and the crash presets actually crash.
    #[test]
    fn chaos_matrix_is_deterministic_and_faults_are_opt_in() {
        let a = chaos_matrix(7, 4, 12).unwrap();
        let b = chaos_matrix(7, 4, 12).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.len(),
            Algorithm::PAPER_SET.len() * FaultPlan::preset_names().len()
        );
        for row in a.iter().filter(|r| r.fault == "none") {
            assert_eq!(row.pm_failures, 0, "{row:?}");
            assert_eq!(row.evacuations, 0, "{row:?}");
            assert_eq!(row.failed_migrations, 0, "{row:?}");
            assert_eq!(row.recovery_time_s, 0, "{row:?}");
        }
        assert!(
            a.iter()
                .filter(|r| r.fault == "pm-crash")
                .all(|r| r.pm_failures > 0),
            "the pm-crash preset must crash PMs"
        );
    }

    #[test]
    fn chaos_rejects_bad_flags() {
        let err = chaos(&s(&["--jobz", "10"])).unwrap_err();
        assert!(err.contains("unknown flag --jobz"), "{err}");
        let err = chaos(&s(&["--scans", "0"])).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn audit_self_test_fires_and_fails() {
        let err = audit(&s(&["--self-test"])).unwrap_err();
        assert!(err.contains("self-test OK"), "{err}");
    }

    /// The daemon chaos target runs every I/O preset deterministically:
    /// two invocations at the same seed produce identical outcome rows,
    /// the fault-free preset injects nothing, and the crash presets
    /// actually crash and recover.
    #[test]
    fn serve_chaos_target_is_deterministic_and_crashes_recover() {
        let a = io_chaos_matrix(7, 24).unwrap();
        let b = io_chaos_matrix(7, 24).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), prvm_faults::IoFaultPlan::io_preset_names().len());
        let none = &a[0];
        assert_eq!(none.preset, "none");
        assert_eq!(none.journal_errors, 0, "{none:?}");
        assert_eq!(none.crashes, 0, "{none:?}");
        for preset in ["torn-write", "lost-sync", "ghost-ack"] {
            let row = a.iter().find(|r| r.preset == preset).unwrap();
            assert!(row.crashes > 0, "{row:?}");
            assert!(row.digest_checks > row.crashes, "{row:?}");
        }
        chaos(&s(&[
            "--target",
            "serve",
            "--seed",
            "7",
            "--requests",
            "24",
        ]))
        .unwrap();
        let err = chaos(&s(&["--target", "cloud"])).unwrap_err();
        assert!(err.contains("--target"), "{err}");
        let err = chaos(&s(&["--target", "serve", "--requests", "0"])).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_flags_without_starting() {
        let err = serve(&s(&[])).unwrap_err();
        assert!(err.contains("--store"), "{err}");
        let err = serve(&s(&["--store", "/tmp/x", "--pms", "0"])).unwrap_err();
        assert!(err.contains("--pms"), "{err}");
        let err = serve(&s(&["--store", "/tmp/x", "--qeue", "4"])).unwrap_err();
        assert!(err.contains("unknown flag --qeue"), "{err}");
    }

    /// `serve-req` against a live daemon: every op round-trips, `state`
    /// prints the journal-backed JSON the CI smoke job diffs, and typed
    /// server errors surface as command errors.
    #[test]
    fn serve_req_drives_a_live_daemon() {
        let dir = std::env::temp_dir().join(format!("prvm-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = Store::open(&dir).unwrap();
        let handle = Server::start(
            &serve_catalog(6, true),
            store,
            ServerConfig::default(),
            "127.0.0.1:0",
        )
        .unwrap();
        let addr = handle.addr().to_string();

        serve_req(&s(&["place", "m3.medium", "--addr", &addr])).unwrap();
        serve_req(&s(&["place", "m3.large", "--addr", &addr])).unwrap();
        serve_req(&s(&["migrate", "0", "--addr", &addr])).unwrap();
        serve_req(&s(&["evict", "1", "--addr", &addr])).unwrap();
        serve_req(&s(&["stats", "--addr", &addr])).unwrap();
        serve_req(&s(&["state", "--addr", &addr])).unwrap();
        serve_req(&s(&["snapshot", "--addr", &addr])).unwrap();
        // A typed server error (eviction of a gone VM) is a CLI error.
        let err = serve_req(&s(&["evict", "1", "--addr", &addr])).unwrap_err();
        assert!(err.contains("UnknownVm"), "{err}");
        // Malformed invocations never touch the wire.
        assert!(serve_req(&s(&[])).unwrap_err().contains("usage"));
        let err = serve_req(&s(&["place", "--addr", &addr])).unwrap_err();
        assert!(err.contains("VM type"), "{err}");
        let err = serve_req(&s(&["evict", "soon", "--addr", &addr])).unwrap_err();
        assert!(err.contains("number"), "{err}");
        let err = serve_req(&s(&["reboot", "--addr", &addr])).unwrap_err();
        assert!(err.contains("unknown serve-req op"), "{err}");

        serve_req(&s(&["drain", "--addr", &addr])).unwrap();
        let stats = handle.join();
        assert_eq!(stats.placed, 2);
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.migrated, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
