//! `pagerankvm` — command-line front end for the reproduction.
//!
//! ```text
//! pagerankvm rank  [--profile 3,3,2,2] [--cap 4] [--dims 4]
//! pagerankvm place --vms 200 [--algo pagerankvm|ff|ffdsum|compvm] [--seed N]
//! pagerankvm simulate --vms 200 [--algo …] [--seed N] [--hours H] [--csv FILE]
//! pagerankvm testbed --jobs 150 [--algo …] [--seed N]
//! pagerankvm chaos [--target sim|serve] [--vms N] [--seed N] [--scans N]
//! pagerankvm serve --store DIR [--addr HOST:PORT] [--pms N] [--coarse]
//! pagerankvm serve-req OP [ARG] [--addr HOST:PORT]
//! pagerankvm report FILE.jsonl [--format text|json]
//! pagerankvm audit [--vms N] [--algo …] [--seed N] [--hours H] [--self-test]
//! pagerankvm bench [--vms a,b,c] [--threads a,b,c] [--repeats N] [--out FILE]
//!                  [--trace FILE.json] [--gate FILE] [--gate-threshold F]
//! ```
//!
//! `place`, `simulate` and `testbed` also take `--threads N`,
//! `--log off|pretty|json`, `--events FILE.jsonl` and
//! `--metrics FILE.json`; `place` and `simulate` additionally take
//! `--trace FILE.json` to record a Chrome trace of the per-worker span
//! timelines (see `--help`).

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "rank" => commands::rank(rest),
        "place" => commands::place(rest),
        "simulate" => commands::simulate(rest),
        "testbed" => commands::testbed(rest),
        "chaos" => commands::chaos(rest),
        "serve" => commands::serve(rest),
        "serve-req" => commands::serve_req(rest),
        "report" => commands::report(rest),
        "audit" => commands::audit(rest),
        "bench" => commands::bench(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
