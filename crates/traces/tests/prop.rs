//! Property-based tests over trace generation and statistics.

use proptest::prelude::*;
use prvm_traces::stats::{Percentiles, TraceStats};
use prvm_traces::{generate, Trace, TraceKind, TraceLibrary};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Generated traces are always within [0, 1], of the requested length,
    /// and deterministic under the RNG seed.
    #[test]
    fn generated_traces_are_bounded_and_deterministic(
        seed in 0u64..1000,
        samples in 1usize..600,
        google in any::<bool>(),
    ) {
        let kind = if google { TraceKind::GoogleCluster } else { TraceKind::PlanetLab };
        let a = generate(kind, samples, &mut StdRng::seed_from_u64(seed));
        let b = generate(kind, samples, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), samples);
        prop_assert!(a.samples().iter().all(|&s| (0.0..=1.0).contains(&s)));
        prop_assert!(a.mean() <= a.max() + 1e-12);
    }

    /// Scaling clamps into [0, 1] and never increases length.
    #[test]
    fn scaling_preserves_bounds(
        samples in prop::collection::vec(0.0f64..1.0, 1..100),
        factor in 0.0f64..5.0,
    ) {
        let t = Trace::new(samples).scaled(factor);
        prop_assert!(t.samples().iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    /// Indexing wraps modulo the trace length.
    #[test]
    fn indexing_wraps(
        samples in prop::collection::vec(0.0f64..1.0, 1..50),
        idx in 0usize..10_000,
    ) {
        let t = Trace::new(samples);
        prop_assert_eq!(t.at(idx), t.at(idx % t.len()));
    }

    /// Library statistics are consistent with their members.
    #[test]
    fn library_stats_bound_members(seed in 0u64..200) {
        let lib = TraceLibrary::generate(TraceKind::PlanetLab, 10, 64, seed);
        let stats: TraceStats = lib.stats();
        for i in 0..lib.len() {
            prop_assert!(lib.trace(i).max() <= stats.max + 1e-12);
        }
        prop_assert!(stats.mean >= 0.0 && stats.mean <= 1.0);
        prop_assert!(stats.peak_to_mean >= 1.0 - 1e-9);
    }

    /// Percentile summaries commute with affine shifts.
    #[test]
    fn percentiles_commute_with_shift(
        values in prop::collection::vec(-100.0f64..100.0, 1..100),
        shift in -50.0f64..50.0,
    ) {
        let p = Percentiles::of(&values);
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let q = Percentiles::of(&shifted);
        prop_assert!((q.median - (p.median + shift)).abs() < 1e-9);
        prop_assert!((q.p1 - (p.p1 + shift)).abs() < 1e-9);
        prop_assert!((q.p99 - (p.p99 + shift)).abs() < 1e-9);
    }
}
