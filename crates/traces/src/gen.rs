//! Trace generators. See the crate docs for how each family maps to its
//! real-world archive.

use crate::Trace;
use rand::Rng;
use rand_distr::{Distribution, Gamma, LogNormal};
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// Which workload family to synthesise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// PlanetLab node CPU utilization (CloudSim archive): 5-minute samples,
    /// mean ≈ 10–25 %, pronounced diurnal swing, correlated noise.
    PlanetLab,
    /// Google cluster task usage (2011 trace): lower baseline, heavy-tailed
    /// spikes, weaker daily rhythm.
    GoogleCluster,
}

impl TraceKind {
    /// Human-readable label used in experiment output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::PlanetLab => "PlanetLab",
            Self::GoogleCluster => "GoogleCluster",
        }
    }
}

/// Generate one trace of `samples` samples.
///
/// # Panics
///
/// Panics if `samples == 0`.
#[must_use]
pub fn generate<R: Rng + ?Sized>(kind: TraceKind, samples: usize, rng: &mut R) -> Trace {
    assert!(samples > 0, "trace needs at least one sample");
    match kind {
        TraceKind::PlanetLab => planetlab(samples, rng),
        TraceKind::GoogleCluster => google(samples, rng),
    }
}

/// The generators only call these constructors with positive constants, so
/// the parameter-validation errors can never fire.
fn gamma(shape: f64, scale: f64) -> Gamma {
    Gamma::new(shape, scale).unwrap_or_else(|e| panic!("gamma({shape}, {scale}): {e}"))
}

fn log_normal(mu: f64, sigma: f64) -> LogNormal {
    LogNormal::new(mu, sigma).unwrap_or_else(|e| panic!("lognormal({mu}, {sigma}): {e}"))
}

/// PlanetLab-like: baseline + diurnal sinusoid + AR(1) noise + rare bursts.
fn planetlab<R: Rng + ?Sized>(samples: usize, rng: &mut R) -> Trace {
    // Per-node character drawn once.
    let baseline = gamma(2.0, 0.05).sample(rng); // mean 0.10
    let diurnal_amp = rng.gen_range(0.02..0.15);
    let phase = rng.gen_range(0.0..TAU);
    let noise_sd = rng.gen_range(0.01..0.05);
    let burst_p = rng.gen_range(0.005..0.03);
    let burst = log_normal(-1.2, 0.5);

    let mut ar = 0.0f64;
    let mut out = Vec::with_capacity(samples);
    for i in 0..samples {
        // One simulated day spans 288 five-minute samples.
        let day_pos = i as f64 / 288.0 * TAU;
        let diurnal = diurnal_amp * (day_pos + phase).sin().max(-0.5);
        ar = 0.8 * ar + noise_sd * rng.sample::<f64, _>(rand_distr::StandardNormal);
        let mut u = baseline + diurnal + ar;
        if rng.gen_bool(burst_p) {
            u += burst.sample(rng);
        }
        out.push(u);
    }
    Trace::new(out)
}

/// Google-cluster-like: low plateau with heavy-tailed spikes and shifts.
fn google<R: Rng + ?Sized>(samples: usize, rng: &mut R) -> Trace {
    let baseline = gamma(1.5, 0.03).sample(rng); // mean 0.045
    let spike_p = rng.gen_range(0.01..0.05);
    let spike = log_normal(-0.9, 0.8);
    let noise_sd = rng.gen_range(0.005..0.03);
    // Occasional regime shifts: the task gets busier or quieter for a while.
    let mut regime = 0.0f64;
    let mut regime_left = 0usize;

    let mut ar = 0.0f64;
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        if regime_left == 0 && rng.gen_bool(0.006) {
            regime = rng.gen_range(0.0..0.15);
            regime_left = rng.gen_range(6..48);
        }
        if regime_left > 0 {
            regime_left -= 1;
            if regime_left == 0 {
                regime = 0.0;
            }
        }
        ar = 0.6 * ar + noise_sd * rng.sample::<f64, _>(rand_distr::StandardNormal);
        let mut u = baseline + regime + ar;
        if rng.gen_bool(spike_p) {
            u += spike.sample(rng);
        }
        out.push(u);
    }
    Trace::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of_library(kind: TraceKind, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let traces: Vec<Trace> = (0..200).map(|_| generate(kind, 288, &mut rng)).collect();
        traces.iter().map(Trace::mean).sum::<f64>() / traces.len() as f64
    }

    #[test]
    fn planetlab_mean_utilization_matches_archive_shape() {
        // Published PlanetLab/CloudSim workload means sit roughly in
        // 10–25 %; accept a generous band around it.
        let m = mean_of_library(TraceKind::PlanetLab, 7);
        assert!((0.06..=0.30).contains(&m), "mean = {m}");
    }

    #[test]
    fn google_is_lower_mean_and_spikier_than_planetlab() {
        let mut rng = StdRng::seed_from_u64(11);
        let pl: Vec<Trace> = (0..200)
            .map(|_| generate(TraceKind::PlanetLab, 288, &mut rng))
            .collect();
        let gg: Vec<Trace> = (0..200)
            .map(|_| generate(TraceKind::GoogleCluster, 288, &mut rng))
            .collect();
        let pl_mean = pl.iter().map(Trace::mean).sum::<f64>() / pl.len() as f64;
        let gg_mean = gg.iter().map(Trace::mean).sum::<f64>() / gg.len() as f64;
        assert!(gg_mean < pl_mean, "google {gg_mean} vs planetlab {pl_mean}");
        // Spikiness: peak-to-mean ratio is higher for Google.
        let p2m = |ts: &[Trace]| {
            ts.iter().map(|t| t.max() / t.mean().max(1e-6)).sum::<f64>() / ts.len() as f64
        };
        assert!(p2m(&gg) > p2m(&pl));
    }

    #[test]
    fn samples_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for kind in [TraceKind::PlanetLab, TraceKind::GoogleCluster] {
            let t = generate(kind, 1000, &mut rng);
            assert!(t.samples().iter().all(|&s| (0.0..=1.0).contains(&s)));
        }
    }

    #[test]
    fn traces_are_temporally_correlated() {
        // AR structure: lag-1 autocorrelation should be clearly positive.
        let mut rng = StdRng::seed_from_u64(5);
        let t = generate(TraceKind::PlanetLab, 288, &mut rng);
        let m = t.mean();
        let s = t.samples();
        let num: f64 = s.windows(2).map(|w| (w[0] - m) * (w[1] - m)).sum();
        let den: f64 = s.iter().map(|v| (v - m).powi(2)).sum();
        assert!(num / den > 0.2, "lag-1 autocorr = {}", num / den);
    }

    #[test]
    fn labels() {
        assert_eq!(TraceKind::PlanetLab.label(), "PlanetLab");
        assert_eq!(TraceKind::GoogleCluster.label(), "GoogleCluster");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = generate(TraceKind::PlanetLab, 0, &mut rng);
    }
}
