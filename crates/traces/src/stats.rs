//! Summary statistics over traces and experiment samples.

use crate::Trace;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one or more traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Mean utilization across all samples.
    pub mean: f64,
    /// Maximum sample observed.
    pub max: f64,
    /// Mean of per-trace peak-to-mean ratios (burstiness proxy).
    pub peak_to_mean: f64,
}

impl TraceStats {
    /// Statistics over a set of traces.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    #[must_use]
    pub fn of_many(traces: &[Trace]) -> Self {
        assert!(!traces.is_empty(), "need at least one trace");
        let total: f64 = traces.iter().map(Trace::mean).sum();
        let max = traces.iter().map(Trace::max).fold(0.0, f64::max);
        let p2m = traces
            .iter()
            .map(|t| t.max() / t.mean().max(1e-9))
            .sum::<f64>()
            / traces.len() as f64;
        Self {
            mean: total / traces.len() as f64,
            max,
            peak_to_mean: p2m,
        }
    }
}

/// Percentile summary used throughout the benches — matches the paper's
/// "median, 1st and 99th percentiles" error bars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// 1st percentile.
    pub p1: f64,
    /// Median.
    pub median: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Compute the paper's `(p1, median, p99)` summary of `values`.
    ///
    /// Uses the nearest-rank method, so for small sample counts `p1`/`p99`
    /// coincide with min/max, exactly like the paper's 100-repeat bars.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "need at least one value");
        let mut v = values.to_vec();
        v.sort_by(f64::total_cmp);
        let rank = |p: f64| -> f64 {
            let idx = ((p * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
            v[idx]
        };
        Self {
            p1: rank(0.01),
            median: rank(0.50),
            p99: rank(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_traces() {
        let ts = vec![Trace::constant(0.25, 10), Trace::constant(0.75, 10)];
        let s = TraceStats::of_many(&ts);
        assert!((s.mean - 0.5).abs() < 1e-12);
        assert!((s.max - 0.75).abs() < 1e-12);
        assert!((s.peak_to_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_of_uniform_sequence() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&v);
        assert_eq!(p.p1, 1.0);
        assert_eq!(p.median, 50.0);
        assert_eq!(p.p99, 99.0);
    }

    #[test]
    fn percentiles_of_single_value() {
        let p = Percentiles::of(&[7.0]);
        assert_eq!((p.p1, p.median, p.p99), (7.0, 7.0, 7.0));
    }

    #[test]
    fn percentiles_are_order_invariant() {
        let a = Percentiles::of(&[3.0, 1.0, 2.0]);
        let b = Percentiles::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_eq!(a.median, 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_percentiles_rejected() {
        let _ = Percentiles::of(&[]);
    }
}
