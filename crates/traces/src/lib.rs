//! Synthetic workload traces.
//!
//! The paper drives VM resource consumption with two real trace archives:
//! the **PlanetLab** CPU-utilization traces bundled with CloudSim (one
//! sample every 5 minutes for 24 hours per node) and the 2011 **Google
//! cluster usage trace**. Neither archive ships with this reproduction, so
//! this crate generates seeded synthetic equivalents that match the
//! archives' published shape (see DESIGN.md §4):
//!
//! * [`TraceKind::PlanetLab`] — low mean utilization (≈ 10–25 %), strong
//!   diurnal component, AR(1)-correlated noise, occasional bursts;
//! * [`TraceKind::GoogleCluster`] — lower baseline, heavier tail, spikier
//!   (log-normal bursts over a weak daily pattern).
//!
//! All generation is deterministic under a seed.
//!
//! ```
//! use prvm_traces::{TraceKind, TraceLibrary};
//!
//! let lib = TraceLibrary::generate(TraceKind::PlanetLab, 100, 288, 42);
//! let trace = lib.trace(7);
//! assert_eq!(trace.len(), 288);
//! assert!(trace.mean() > 0.02 && trace.mean() < 0.6);
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod stats;

pub use gen::{generate, TraceKind};
pub use stats::TraceStats;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A CPU-utilization time series for one VM: a fraction of the VM's
/// requested capacity per sampling interval, each in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    samples: Vec<f64>,
}

impl Trace {
    /// Wrap raw samples, clamping each into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains a non-finite value.
    #[must_use]
    pub fn new(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "a trace needs at least one sample");
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "trace samples must be finite"
        );
        Self {
            samples: samples.into_iter().map(|s| s.clamp(0.0, 1.0)).collect(),
        }
    }

    /// A constant-utilization trace (useful in tests and calibration).
    #[must_use]
    pub fn constant(value: f64, len: usize) -> Self {
        Self::new(vec![value; len])
    }

    /// Utilization at sample `idx`, wrapping past the end (experiments
    /// longer than the trace loop it, like CloudSim does).
    #[must_use]
    pub fn at(&self, idx: usize) -> f64 {
        self.samples[idx % self.samples.len()]
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the trace has no samples (cannot be constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean utilization.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum utilization.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Scale every sample by `factor`, re-clamping into `[0, 1]`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self::new(self.samples.iter().map(|s| s * factor).collect())
    }
}

/// A pool of traces VMs draw from — the role the PlanetLab node archive
/// plays in the paper ("We randomly chose traces of the VMs in our
/// experiments").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLibrary {
    kind: TraceKind,
    traces: Vec<Trace>,
}

impl TraceLibrary {
    /// Generate `count` traces of `samples` samples each.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    #[must_use]
    pub fn generate(kind: TraceKind, count: usize, samples: usize, seed: u64) -> Self {
        assert!(count > 0, "library needs at least one trace");
        let mut rng = StdRng::seed_from_u64(seed);
        let traces = (0..count)
            .map(|_| generate(kind, samples, &mut rng))
            .collect();
        Self { kind, traces }
    }

    /// Wrap explicit traces (tests, replaying recorded workloads).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    #[must_use]
    pub fn from_traces(kind: TraceKind, traces: Vec<Trace>) -> Self {
        assert!(!traces.is_empty(), "library needs at least one trace");
        Self { kind, traces }
    }

    /// The workload family this library models.
    #[must_use]
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// Trace by index (wrapping).
    #[must_use]
    pub fn trace(&self, idx: usize) -> &Trace {
        &self.traces[idx % self.traces.len()]
    }

    /// Draw a uniformly random trace.
    #[must_use]
    pub fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> &Trace {
        &self.traces[rng.gen_range(0..self.traces.len())]
    }

    /// Number of traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` if the library is empty (cannot be constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Aggregate statistics across the whole library.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats::of_many(&self.traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_clamps_and_wraps() {
        let t = Trace::new(vec![-0.5, 0.5, 1.5]);
        assert_eq!(t.samples(), &[0.0, 0.5, 1.0]);
        assert_eq!(t.at(4), 0.5);
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_rejected() {
        let _ = Trace::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Trace::new(vec![f64::NAN]);
    }

    #[test]
    fn scaled_reclamps() {
        let t = Trace::new(vec![0.4, 0.8]).scaled(2.0);
        assert_eq!(t.samples(), &[0.8, 1.0]);
    }

    #[test]
    fn library_is_deterministic_per_seed() {
        let a = TraceLibrary::generate(TraceKind::PlanetLab, 10, 288, 1);
        let b = TraceLibrary::generate(TraceKind::PlanetLab, 10, 288, 1);
        let c = TraceLibrary::generate(TraceKind::PlanetLab, 10, 288, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn library_lookup_wraps() {
        let lib = TraceLibrary::generate(TraceKind::GoogleCluster, 3, 10, 9);
        assert_eq!(lib.trace(0), lib.trace(3));
        assert_eq!(lib.len(), 3);
    }

    #[test]
    fn choose_draws_member() {
        let lib = TraceLibrary::generate(TraceKind::PlanetLab, 5, 16, 3);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let t = lib.choose(&mut rng);
            assert!((0..lib.len()).any(|i| lib.trace(i) == t));
        }
    }
}
