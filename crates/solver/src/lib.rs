//! Exact branch-and-bound solver for the paper's placement model (§IV).
//!
//! The paper formulates initial VM allocation as a mixed-integer program —
//! Equ. (1)–(10) are the assignment, anti-collocation and capacity
//! constraints; Equ. (11) minimises the number of powered-on PMs — and
//! argues that branch-and-bound \[22\] is hopeless at datacenter scale,
//! which motivates the PageRankVM heuristic. This crate implements that
//! exact solver for *small* instances so the heuristics can be validated
//! against the true optimum (and so the paper's intractability claim can be
//! demonstrated empirically: see the `solver_scaling` bench).
//!
//! ```
//! use prvm_solver::{solve_min_pms, SolverConfig};
//! use prvm_model::catalog;
//!
//! let pms = vec![catalog::pm_m3(); 3];
//! let vms = vec![catalog::vm_m3_large(); 4];
//! let solution = solve_min_pms(&pms, &vms, &SolverConfig::default()).unwrap();
//! assert_eq!(solution.pm_count, 1); // four m3.large fit one M3
//! assert!(solution.optimal);
//! ```

#![warn(missing_docs)]

use prvm_model::{Assignment, Cluster, PmId, PmSpec, VmSpec};
use std::time::{Duration, Instant};

/// Search limits. The solver is exact when it finishes within them;
/// otherwise it reports the best solution found with `optimal = false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Maximum branch-and-bound nodes to expand.
    pub max_nodes: u64,
    /// Wall-clock budget.
    pub time_limit: Duration,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            max_nodes: 2_000_000,
            time_limit: Duration::from_secs(10),
        }
    }
}

/// An exact (or best-found) solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Number of PMs powered on — the objective of Equ. (11) with unit
    /// costs.
    pub pm_count: usize,
    /// Placement per VM, in input order.
    pub placements: Vec<(PmId, Assignment)>,
    /// `true` if the search space was exhausted (proven optimal).
    pub optimal: bool,
    /// Branch-and-bound nodes expanded.
    pub nodes_explored: u64,
}

/// Minimise the number of PMs hosting `vms`, subject to per-core,
/// per-disk, memory and anti-collocation constraints.
///
/// Returns `None` when no feasible assignment exists at all.
#[must_use]
pub fn solve_min_pms(
    pm_specs: &[PmSpec],
    vms: &[VmSpec],
    config: &SolverConfig,
) -> Option<Solution> {
    // Order VMs by decreasing footprint: large items first prunes earlier.
    let mut order: Vec<usize> = (0..vms.len()).collect();
    order.sort_by(|&a, &b| {
        let key = |v: &VmSpec| {
            v.total_cpu().get() as f64 / 1000.0
                + v.memory.get() as f64 / 1024.0
                + v.total_disk().get() as f64 / 100.0
        };
        key(&vms[b]).total_cmp(&key(&vms[a]))
    });

    let mut search = Search {
        vms,
        order,
        cluster: Cluster::from_specs(pm_specs.iter().cloned()),
        best: None,
        best_count: pm_specs.len() + 1,
        nodes: 0,
        config: *config,
        started: Instant::now(),
        exhausted: true,
        current: vec![None; vms.len()],
    };
    search.greedy_incumbent();
    search.dfs(0);

    let best = search.best?;
    Some(Solution {
        pm_count: search.best_count,
        placements: best,
        optimal: search.exhausted,
        nodes_explored: search.nodes,
    })
}

struct Search<'a> {
    vms: &'a [VmSpec],
    order: Vec<usize>,
    cluster: Cluster,
    best: Option<Vec<(PmId, Assignment)>>,
    best_count: usize,
    nodes: u64,
    config: SolverConfig,
    started: Instant,
    exhausted: bool,
    current: Vec<Option<(PmId, Assignment)>>,
}

impl Search<'_> {
    /// Seed the incumbent with a first-fit solution so pruning bites
    /// immediately.
    fn greedy_incumbent(&mut self) {
        let mut cluster = Cluster::from_specs(self.cluster.pms().iter().map(|p| p.spec().clone()));
        let mut placements = vec![None; self.vms.len()];
        for &vi in &self.order.clone() {
            let vm = &self.vms[vi];
            let found = cluster
                .used_pms()
                .chain(cluster.unused_pms())
                .find_map(|pm| cluster.pm(pm).first_feasible(vm).map(|a| (pm, a)));
            match found {
                Some((pm, a)) => {
                    let placed = cluster.place(pm, vm.clone(), a.clone());
                    if placed.is_err() {
                        debug_assert!(false, "first_feasible assignment places");
                        return; // no incumbent; search decides feasibility
                    }
                    placements[vi] = Some((pm, a));
                }
                None => return, // no incumbent; search decides feasibility
            }
        }
        let Some(best) = placements.into_iter().collect::<Option<Vec<_>>>() else {
            debug_assert!(false, "the loop above placed every VM");
            return;
        };
        self.best_count = cluster.active_pm_count();
        self.best = Some(best);
    }

    fn out_of_budget(&mut self) -> bool {
        if self.nodes >= self.config.max_nodes || self.started.elapsed() >= self.config.time_limit {
            self.exhausted = false;
            true
        } else {
            false
        }
    }

    /// A valid lower bound on additional PMs: remaining aggregate demand
    /// over the largest single-PM capacity, by the loosest dimension.
    fn lower_bound(&self, depth: usize) -> usize {
        let mut cpu = 0u64;
        let mut mem = 0u64;
        let mut disk = 0u64;
        for &vi in &self.order[depth..] {
            let vm = &self.vms[vi];
            cpu += vm.total_cpu().get();
            mem += vm.memory.get();
            disk += vm.total_disk().get();
        }
        // Free capacity on already-used PMs counts toward the remainder.
        let mut free_cpu = 0u64;
        let mut free_mem = 0u64;
        let mut free_disk = 0u64;
        for pm in self.cluster.used_pms() {
            let pm = self.cluster.pm(pm);
            free_cpu += pm.spec().total_cpu().get() - pm.total_cpu_used().get();
            free_mem += pm.spec().memory.get() - pm.mem_used().get();
            free_disk += pm.spec().total_disk().get() - pm.total_disk_used().get();
        }
        let (mut max_cpu, mut max_mem, mut max_disk) = (0u64, 0u64, 0u64);
        for pm in self.cluster.unused_pms() {
            let spec = self.cluster.pm(pm).spec();
            max_cpu = max_cpu.max(spec.total_cpu().get());
            max_mem = max_mem.max(spec.memory.get());
            max_disk = max_disk.max(spec.total_disk().get());
        }
        let need = |demand: u64, free: u64, per_pm: u64| -> usize {
            let rem = demand.saturating_sub(free);
            if rem == 0 {
                0
            } else if per_pm == 0 {
                usize::MAX / 2
            } else {
                rem.div_ceil(per_pm) as usize
            }
        };
        need(cpu, free_cpu, max_cpu)
            .max(need(mem, free_mem, max_mem))
            .max(need(disk, free_disk, max_disk))
    }

    fn dfs(&mut self, depth: usize) {
        if self.out_of_budget() {
            return;
        }
        self.nodes += 1;

        let used = self.cluster.active_pm_count();
        if used + self.lower_bound(depth) >= self.best_count {
            return; // cannot beat the incumbent
        }
        if depth == self.order.len() {
            // All placed: strictly better by the bound check above.
            let Some(best) = self.current.iter().cloned().collect::<Option<Vec<_>>>() else {
                debug_assert!(false, "assignment is complete at full depth");
                return;
            };
            self.best_count = used;
            self.best = Some(best);
            return;
        }

        let vi = self.order[depth];
        let vm = self.vms[vi].clone();

        // Candidates: every used PM, plus ONE unused PM per distinct spec
        // (unused PMs of equal spec are interchangeable — symmetry break).
        let mut candidates: Vec<PmId> = self.cluster.used_pms().collect();
        let mut seen_specs: Vec<PmSpec> = Vec::new();
        for pm in self.cluster.unused_pms() {
            let spec = self.cluster.pm(pm).spec().clone();
            if !seen_specs.contains(&spec) {
                seen_specs.push(spec);
                candidates.push(pm);
            }
        }

        for pm in candidates {
            for assignment in self.cluster.pm(pm).distinct_feasible(&vm) {
                let Ok(id) = self.cluster.place(pm, vm.clone(), assignment.clone()) else {
                    debug_assert!(false, "enumerated assignment is valid");
                    continue;
                };
                self.current[vi] = Some((pm, assignment));
                self.dfs(depth + 1);
                self.current[vi] = None;
                let removed = self.cluster.remove(id);
                debug_assert!(removed.is_ok(), "just-placed VM removes cleanly");
                if self.out_of_budget() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_model::catalog;

    #[test]
    fn single_vm_uses_one_pm() {
        let s = solve_min_pms(
            [catalog::pm_m3(); 1].as_ref(),
            &[catalog::vm_m3_medium()],
            &SolverConfig::default(),
        )
        .unwrap();
        assert_eq!(s.pm_count, 1);
        assert!(s.optimal);
        assert_eq!(s.placements.len(), 1);
    }

    #[test]
    fn memory_forces_two_pms() {
        // Three m3.2xlarge: 30 GiB each, M3 holds 64 GiB -> two per PM.
        let s = solve_min_pms(
            &vec![catalog::pm_m3(); 3],
            &vec![catalog::vm_m3_2xlarge(); 3],
            &SolverConfig::default(),
        )
        .unwrap();
        assert_eq!(s.pm_count, 2);
        assert!(s.optimal);
    }

    #[test]
    fn infeasible_returns_none_solution_with_no_placements() {
        // An m3.xlarge (15 GiB) cannot fit a C3 (7.5 GiB).
        let s = solve_min_pms(
            &vec![catalog::pm_c3(); 2],
            &[catalog::vm_m3_xlarge()],
            &SolverConfig::default(),
        );
        assert!(s.is_none());
    }

    #[test]
    fn solution_respects_anti_collocation() {
        let pms = vec![catalog::pm_m3(); 2];
        let vms = vec![catalog::vm_c3_xlarge(), catalog::vm_m3_large()];
        let s = solve_min_pms(&pms, &vms, &SolverConfig::default()).unwrap();
        let mut cluster = Cluster::from_specs(pms);
        for (i, (pm, a)) in s.placements.iter().enumerate() {
            assert!(a.is_anti_collocated());
            cluster
                .place(*pm, vms[i].clone(), a.clone())
                .expect("solver placements replay cleanly");
        }
        assert_eq!(cluster.active_pm_count(), s.pm_count);
    }

    #[test]
    fn optimum_beats_or_matches_greedy() {
        // A mix where first-fit wastes a PM: big VMs after small ones.
        let pms = vec![catalog::pm_m3(); 4];
        let vms = vec![
            catalog::vm_m3_medium(),
            catalog::vm_m3_2xlarge(),
            catalog::vm_m3_medium(),
            catalog::vm_m3_2xlarge(),
            catalog::vm_m3_medium(),
        ];
        let s = solve_min_pms(&pms, &vms, &SolverConfig::default()).unwrap();
        // Memory: 2 x 30 + 3 x 3.75 = 71.25 GiB > 64 -> at least 2 PMs;
        // exactly 2 suffice.
        assert_eq!(s.pm_count, 2);
        assert!(s.optimal);
    }

    #[test]
    fn budget_exhaustion_reports_non_optimal() {
        // 14 c3.large need 2 M3s (per-core vCPU slots), but the aggregate
        // lower bound says 1 — the bound gap forces real search, which the
        // 5-node budget cuts short.
        let pms = vec![catalog::pm_m3(); 3];
        let vms = vec![catalog::vm_c3_large(); 14];
        let s = solve_min_pms(
            &pms,
            &vms,
            &SolverConfig {
                max_nodes: 5,
                time_limit: Duration::from_secs(10),
            },
        )
        .unwrap();
        assert!(!s.optimal);
        assert!(s.pm_count >= 2, "greedy incumbent still reported");
    }

    #[test]
    fn heterogeneous_pool_prefers_fewer_pms_not_specific_types() {
        // One C3 + one M3; two c3.large fit the C3 exactly (memory), or
        // the M3 — either way one PM suffices.
        let pms = vec![catalog::pm_c3(), catalog::pm_m3()];
        let vms = vec![catalog::vm_c3_large(); 2];
        let s = solve_min_pms(&pms, &vms, &SolverConfig::default()).unwrap();
        assert_eq!(s.pm_count, 1);
    }
}
