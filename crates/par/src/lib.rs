//! Deterministic data parallelism for the PageRankVM workspace.
//!
//! This crate is the workspace's only threading substrate for CPU-bound
//! work (the testbed's node agents are actors, a different shape). It
//! has no external dependencies — no rayon, matching the vendored/
//! offline dependency policy; its only workspace dependency is
//! `prvm-obs`, whose opt-in timeline recorder the pool feeds — and it
//! is built entirely on [`std::thread::scope`], so it contains no
//! `unsafe` and no global executor state beyond one atomic.
//!
//! # The determinism contract
//!
//! Every combinator here is **bit-for-bit deterministic regardless of
//! thread count**:
//!
//! * work is split into *chunks* whose boundaries depend only on the
//!   input length ([`chunk_size`]), never on how many workers exist;
//! * workers *claim* chunks dynamically (an atomic cursor), but results
//!   are stitched back together **in chunk-index order**;
//! * [`Pool::fold_chunks`] therefore merges partial accumulators in a
//!   fixed left-to-right order, so even non-associative reductions
//!   (IEEE 754 addition!) produce the same bits at 1, 2 or 64 threads.
//!
//! The contract is what lets the profile-graph builder and the PageRank
//! sweep go parallel while the golden f64 bit-pattern tests stay green
//! (see DESIGN.md §10).
//!
//! # Profiling
//!
//! When the `prvm-obs` timeline recorder is enabled (`--trace`), every
//! chunk a worker claims is recorded as `(lane, label, chunk, start,
//! end)` — label is the enclosing span path plus `/chunk` — and each
//! spawned worker additionally records its whole lifetime on its lane,
//! so a worker that claimed zero chunks still shows up as a track.
//! Recording is observation-only: it never changes chunk boundaries or
//! stitch order, so the determinism contract is untouched; when the
//! recorder is off, the pool's only overhead is one relaxed atomic
//! load per combinator call.
//!
//! # Example
//!
//! ```
//! use prvm_par::Pool;
//!
//! let squares = Pool::new(4).map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Same bits at any thread count.
//! assert_eq!(squares, Pool::sequential().map(&[1u64, 2, 3, 4], |&x| x * x));
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global worker-count override: 0 means "not set, use the hardware
/// default". Set once at process start by CLI `--threads` flags.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide default worker count used by [`Pool::global`].
///
/// `0` resets to the hardware default
/// ([`std::thread::available_parallelism`]). Results of every pool
/// combinator are identical at any setting — this knob trades wall-clock
/// only, which is why a process-wide default is safe.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count [`Pool::global`] currently resolves to.
#[must_use]
pub fn global_threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
}

/// Fixed chunk size for `len` items: a function of the input length
/// **only**, so chunk boundaries — and with them every merge order —
/// are independent of the worker count.
///
/// The divisor 64 gives enough chunks for dynamic load balancing on any
/// realistic core count while keeping per-chunk overhead negligible.
#[must_use]
pub fn chunk_size(len: usize) -> usize {
    (len / 64).max(1)
}

/// A scoped worker pool of a fixed width.
///
/// `Pool` is a plain value (no spawned-at-construction threads): each
/// combinator call opens a [`std::thread::scope`], runs, and joins
/// before returning, so borrows of the caller's data need no `'static`
/// lifetime and a panicking task propagates to the caller on join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single-worker pool: every combinator runs inline on the
    /// calling thread, with no spawning at all.
    #[must_use]
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// A pool sized by [`global_threads`] — the hardware default unless
    /// overridden via [`set_global_threads`].
    #[must_use]
    pub fn global() -> Self {
        Self::new(global_threads())
    }

    /// Worker count of this pool.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `work(chunk_index)` for every chunk index in `0..n_chunks`,
    /// returning the results **in chunk-index order**. Chunks are
    /// claimed dynamically by whichever worker is free; ordering is
    /// restored before returning, so scheduling never leaks into the
    /// output.
    fn run_chunks<R, F>(&self, n_chunks: usize, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        // Timeline recording is observation-only: chunk claiming and
        // result stitching are identical whether it is on or off.
        let profiling = prvm_obs::timeline::is_enabled();
        let chunk_label = if profiling {
            let path = prvm_obs::span::current_path().unwrap_or_else(|| "par".to_owned());
            format!("{path}/chunk")
        } else {
            String::new()
        };
        if self.threads == 1 || n_chunks <= 1 {
            if !profiling {
                return (0..n_chunks).map(work).collect();
            }
            // Inline on the caller's lane (0 unless nested in a worker).
            return (0..n_chunks)
                .map(|c| {
                    let t0 = prvm_obs::timeline::stamp();
                    let r = work(c);
                    prvm_obs::timeline::record(
                        &chunk_label,
                        Some(c as u64),
                        t0,
                        prvm_obs::timeline::stamp(),
                    );
                    r
                })
                .collect();
        }
        let worker_label = chunk_label
            .strip_suffix("chunk")
            .map(|prefix| format!("{prefix}worker"))
            .unwrap_or_default();
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
        let workers = self.threads.min(n_chunks);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let cursor = &cursor;
                let results = &results;
                let work = &work;
                let chunk_label = &chunk_label;
                let worker_label = &worker_label;
                scope.spawn(move || {
                    // Lane 0 is the orchestrating thread; workers take
                    // 1..=workers. Entering the lane registers the track
                    // even if this worker ends up claiming zero chunks.
                    let _lane = profiling.then(|| prvm_obs::timeline::enter_lane(w as u32 + 1));
                    let spawned = prvm_obs::timeline::stamp();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let t0 = prvm_obs::timeline::stamp();
                        let r = work(c);
                        if profiling {
                            prvm_obs::timeline::record(
                                chunk_label,
                                Some(c as u64),
                                t0,
                                prvm_obs::timeline::stamp(),
                            );
                        }
                        // A poisoned lock only means another worker panicked
                        // mid-push; the scope will re-raise that panic after
                        // join, so recovering the guard here is sound.
                        let mut guard = match results.lock() {
                            Ok(guard) => guard,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        guard.push((c, r));
                    }
                    if profiling {
                        prvm_obs::timeline::record(
                            worker_label,
                            None,
                            spawned,
                            prvm_obs::timeline::stamp(),
                        );
                    }
                });
            }
        });
        let mut collected = match results.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        };
        collected.sort_unstable_by_key(|&(c, _)| c);
        collected.into_iter().map(|(_, r)| r).collect()
    }

    /// Parallel map: `items.iter().map(f).collect()`, chunked across
    /// the pool. Output order always matches input order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let chunk = chunk_size(items.len());
        let chunks: Vec<&[T]> = items.chunks(chunk).collect();
        let parts = self.run_chunks(chunks.len(), |c| {
            chunks[c].iter().map(&f).collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(items.len());
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Parallel indexed map over `0..len`: like
    /// `(0..len).map(f).collect()`. Output index `i` always holds
    /// `f(i)`.
    pub fn map_index<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let chunk = chunk_size(len);
        let n_chunks = len.div_ceil(chunk);
        let parts = self.run_chunks(n_chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(len);
            (lo..hi).map(&f).collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(len);
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Parallel fold with a **fixed merge order**: each chunk is folded
    /// left-to-right with `fold` starting from `init()`, and the
    /// per-chunk accumulators are merged left-to-right in chunk-index
    /// order with `merge`. Because chunk boundaries come from
    /// [`chunk_size`] (input length only), the full operation tree —
    /// and therefore the result bits, even for floating-point sums —
    /// is identical at any thread count.
    pub fn fold_chunks<T, A, I, F, M>(&self, items: &[T], init: I, fold: F, merge: M) -> A
    where
        T: Sync,
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(A, &T) -> A + Sync,
        M: Fn(A, A) -> A,
    {
        let chunk = chunk_size(items.len());
        let chunks: Vec<&[T]> = items.chunks(chunk).collect();
        let parts = self.run_chunks(chunks.len(), |c| chunks[c].iter().fold(init(), &fold));
        let mut acc = init();
        for part in parts {
            acc = merge(acc, part);
        }
        acc
    }
}

impl Default for Pool {
    /// Same as [`Pool::global`].
    fn default() -> Self {
        Self::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_every_width() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 7, 16] {
            let got = Pool::new(threads).map(&items, |&x| x * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_index_matches_sequential() {
        for len in [0usize, 1, 5, 63, 64, 65, 1000] {
            let expect: Vec<usize> = (0..len).map(|i| i * i).collect();
            for threads in [1, 2, 4] {
                assert_eq!(
                    Pool::new(threads).map_index(len, |i| i * i),
                    expect,
                    "len={len} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn float_fold_is_bit_identical_across_widths() {
        // Sums engineered to be order-sensitive: magnitudes spanning
        // ~16 decimal orders make IEEE 754 addition non-associative.
        let items: Vec<f64> = (0..4097)
            .map(|i| (f64::from(i) * 1.000_000_1).powi(3) * if i % 2 == 0 { 1.0 } else { -1e-12 })
            .collect();
        let reference =
            Pool::sequential().fold_chunks(&items, || 0.0f64, |acc, &x| acc + x, |a, b| a + b);
        for threads in [2, 3, 4, 8, 32] {
            let got =
                Pool::new(threads).fold_chunks(&items, || 0.0f64, |acc, &x| acc + x, |a, b| a + b);
            assert_eq!(
                got.to_bits(),
                reference.to_bits(),
                "threads={threads}: {got:e} vs {reference:e}"
            );
        }
    }

    #[test]
    fn empty_inputs() {
        let empty: [u32; 0] = [];
        assert!(Pool::new(4).map(&empty, |&x| x).is_empty());
        assert!(Pool::new(4).map_index(0, |i| i).is_empty());
        let sum = Pool::new(4).fold_chunks(&empty, || 7u32, |a, &x| a + x, |a, b| a + b);
        assert_eq!(sum, 7, "merge starts from one extra init()");
    }

    #[test]
    fn chunk_size_ignores_thread_count() {
        assert_eq!(chunk_size(0), 1);
        assert_eq!(chunk_size(63), 1);
        assert_eq!(chunk_size(64), 1);
        assert_eq!(chunk_size(128), 2);
        assert_eq!(chunk_size(6400), 100);
    }

    #[test]
    fn global_override_round_trips() {
        let before = global_threads();
        set_global_threads(3);
        assert_eq!(global_threads(), 3);
        assert_eq!(Pool::global().threads(), 3);
        set_global_threads(0);
        assert!(global_threads() >= 1);
        set_global_threads(before);
    }

    /// Single test owning the process-global timeline recorder inside
    /// this test binary (the other tests never enable it): a 2-thread
    /// run must produce at least two worker lanes, per-chunk records
    /// labelled from the enclosing span path, and — recorder on or off —
    /// bit-identical results.
    #[test]
    fn timeline_records_worker_lanes_without_changing_results() {
        let items: Vec<u64> = (0..4096).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(31)).collect();
        prvm_obs::timeline::enable();
        let got = {
            let _span = prvm_obs::Span::enter("par_timeline_test");
            Pool::new(2).map(&items, |&x| x.wrapping_mul(31))
        };
        let timeline = prvm_obs::timeline::disable();
        assert_eq!(got, expect, "profiling must not change results");
        assert!(
            timeline.worker_lanes().len() >= 2,
            "2-thread run produced lanes {:?}",
            timeline.lanes
        );
        let chunk_records: Vec<_> = timeline
            .records
            .iter()
            .filter(|r| r.label == "par_timeline_test/chunk")
            .collect();
        // 4096 items -> chunk_size 64 -> 64 chunks, each recorded once.
        assert_eq!(chunk_records.len(), 64);
        assert!(chunk_records.iter().all(|r| r.lane >= 1));
        let mut chunks: Vec<u64> = chunk_records.iter().filter_map(|r| r.chunk).collect();
        chunks.sort_unstable();
        assert_eq!(chunks, (0..64).collect::<Vec<u64>>());
        // Every spawned worker also records its lifetime on its lane.
        let worker_records = timeline
            .records
            .iter()
            .filter(|r| r.label == "par_timeline_test/worker")
            .count();
        assert_eq!(worker_records, 2);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(2).map_index(500, |i| {
                assert!(i != 250, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
