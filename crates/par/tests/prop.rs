//! Property tests for the determinism contract: `map`/`map_index`
//! preserve order and length for arbitrary inputs at arbitrary widths,
//! and `fold_chunks` over f64 is bit-identical across widths.

use proptest::prelude::*;
use prvm_par::Pool;

proptest! {
    #[test]
    fn par_map_preserves_order_and_length(
        items in proptest::collection::vec(0u64..1_000_000, 0..600),
        threads in 1usize..9,
    ) {
        let got = Pool::new(threads).map(&items, |&x| x.wrapping_mul(2654435761).rotate_left(7));
        let expect: Vec<u64> =
            items.iter().map(|&x| x.wrapping_mul(2654435761).rotate_left(7)).collect();
        prop_assert_eq!(got.len(), items.len());
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn par_map_index_is_identity_on_indices(
        len in 0usize..700,
        threads in 1usize..9,
    ) {
        let got = Pool::new(threads).map_index(len, |i| i);
        let expect: Vec<usize> = (0..len).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn par_fold_f64_bits_match_sequential(
        items in proptest::collection::vec(-1.0e9f64..1.0e9, 0..600),
        threads in 2usize..9,
    ) {
        let seq = Pool::sequential()
            .fold_chunks(&items, || 0.0f64, |a, &x| a + x, |a, b| a + b);
        let par = Pool::new(threads)
            .fold_chunks(&items, || 0.0f64, |a, &x| a + x, |a, b| a + b);
        prop_assert_eq!(par.to_bits(), seq.to_bits());
    }
}
