//! Deterministic fault injection for the PageRankVM reproduction.
//!
//! A [`FaultPlan`] is a seeded schedule of things that go wrong in a run:
//! PM crashes and recoveries at fixed scans, transient migration failures
//! with probability `p`, node-agent kills and stalls at fixed ticks, and
//! trace-reading corruption. A [`FaultClock`] answers point queries about
//! the plan ("does this migration attempt fail?", "which PMs crash at
//! scan t?") so the sim engine and testbed controller can consult it
//! inline without threading any RNG state through their loops.
//!
//! Two properties are load-bearing:
//!
//! - **Determinism**: every probabilistic decision is a pure hash of
//!   `(seed, domain, operands)` — a splitmix64-style coin, not a shared
//!   RNG stream. The same plan and seed always fail the same migration
//!   attempts, in any call order.
//! - **Zero drift when empty**: [`FaultPlan::none`] injects nothing and
//!   perturbs no RNG stream, so runs with the empty plan are byte-identical
//!   to runs without fault support at all. Fault injection is strictly
//!   opt-in; the paper-reproduction numbers never move.

#![warn(missing_docs)]

pub mod io;

pub use io::{CrashSite, FaultFile, IoCrash, IoFaultPlan, StorageFile};

use serde::{Deserialize, Serialize};

/// One scheduled PM failure: the PM crashes at the start of scan `at`
/// and, if `recover_at` is set, comes back at the start of that scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmCrash {
    /// Index of the PM that fails.
    pub pm: usize,
    /// Scan (virtual time step) at which it fails.
    pub at: usize,
    /// Scan at which it recovers, if ever. Must be `> at` to take effect.
    pub recover_at: Option<usize>,
}

/// Faults applied to one testbed node agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentFault {
    /// The agent's thread exits when it receives the tick for this time
    /// step — a hard, permanent node loss from the controller's view.
    pub die_at_tick: Option<usize>,
    /// The agent swallows ticks in `[from, from + ticks)` without
    /// responding, then resumes — a transient stall/partition.
    pub stall: Option<StallWindow>,
}

/// A half-open window of ticks during which a node agent stays silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallWindow {
    /// First silent tick.
    pub from: usize,
    /// Number of consecutive silent ticks.
    pub ticks: usize,
}

impl StallWindow {
    /// True when tick `t` falls inside the silent window.
    #[must_use]
    pub fn covers(&self, t: usize) -> bool {
        t >= self.from && t < self.from + self.ticks
    }
}

/// A complete seeded fault schedule for one run. The default plan is
/// empty: nothing fails, and every consumer behaves exactly as if fault
/// injection did not exist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[must_use]
pub struct FaultPlan {
    /// Seed for the hash-based probabilistic decisions.
    pub seed: u64,
    /// Scheduled PM crash/recover events (sim and testbed mirror PMs).
    pub pm_crashes: Vec<PmCrash>,
    /// Probability that any single migration or evacuation attempt fails
    /// in flight (the VM stays where it was; the attempt is re-tried or
    /// accounted as failed).
    pub migration_failure_prob: f64,
    /// Probability that one `(vm, scan)` trace read returns garbage
    /// instead of the recorded utilization.
    pub trace_corruption_prob: f64,
    /// Per-node testbed agent faults as `(node index, fault)` pairs.
    pub agent_faults: Vec<(usize, AgentFault)>,
}

impl FaultPlan {
    /// The empty plan: injects nothing, guarantees byte-identical runs.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan can never inject anything. Consumers use this
    /// to skip fault processing entirely on the paper-reproduction path.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pm_crashes.is_empty()
            && self.agent_faults.is_empty()
            && self.migration_failure_prob <= 0.0
            && self.trace_corruption_prob <= 0.0
    }

    /// Set the hash seed (builder style).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedule a PM crash (builder style).
    pub fn with_pm_crash(mut self, pm: usize, at: usize, recover_at: Option<usize>) -> Self {
        self.pm_crashes.push(PmCrash { pm, at, recover_at });
        self
    }

    /// Set the per-attempt migration failure probability (builder style).
    pub fn with_migration_failures(mut self, prob: f64) -> Self {
        self.migration_failure_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Set the per-read trace corruption probability (builder style).
    pub fn with_trace_corruption(mut self, prob: f64) -> Self {
        self.trace_corruption_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Kill a node agent's thread at a tick (builder style).
    pub fn with_agent_kill(mut self, node: usize, at_tick: usize) -> Self {
        self.agent_faults.push((
            node,
            AgentFault {
                die_at_tick: Some(at_tick),
                stall: None,
            },
        ));
        self
    }

    /// Stall a node agent for `ticks` ticks starting at `from` (builder
    /// style).
    pub fn with_agent_stall(mut self, node: usize, from: usize, ticks: usize) -> Self {
        self.agent_faults.push((
            node,
            AgentFault {
                die_at_tick: None,
                stall: Some(StallWindow { from, ticks }),
            },
        ));
        self
    }

    /// The fault (if any) configured for one testbed node. Multiple
    /// entries for the same node merge; the earliest kill wins.
    #[must_use]
    pub fn agent_fault(&self, node: usize) -> Option<AgentFault> {
        let mut merged: Option<AgentFault> = None;
        for (n, fault) in &self.agent_faults {
            if *n != node {
                continue;
            }
            let slot = merged.get_or_insert(AgentFault {
                die_at_tick: None,
                stall: None,
            });
            slot.die_at_tick = match (slot.die_at_tick, fault.die_at_tick) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            if slot.stall.is_none() {
                slot.stall = fault.stall;
            }
        }
        merged
    }

    /// The named preset plans the `pagerankvm chaos` matrix runs, scaled
    /// to a horizon of `scans` scans. `None` for an unknown name.
    #[must_use]
    pub fn preset(name: &str, scans: usize, seed: u64) -> Option<Self> {
        let mid = scans / 2;
        let plan = match name {
            "none" => Self::none(),
            "pm-crash" => Self::none()
                .with_pm_crash(0, scans / 4, Some(mid.max(scans / 4 + 1)))
                .with_pm_crash(1, mid, None),
            "flaky-migrations" => Self::none().with_migration_failures(0.3),
            "trace-noise" => Self::none().with_trace_corruption(0.05),
            "all" => Self::none()
                .with_pm_crash(0, scans / 4, Some(mid.max(scans / 4 + 1)))
                .with_migration_failures(0.2)
                .with_trace_corruption(0.02),
            _ => return None,
        };
        Some(plan.seeded(seed))
    }

    /// Names accepted by [`FaultPlan::preset`], in matrix order.
    #[must_use]
    pub fn preset_names() -> &'static [&'static str] {
        &["none", "pm-crash", "flaky-migrations", "trace-noise", "all"]
    }
}

/// splitmix64 finalizer: a strong 64-bit mix.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Decision domains keep independent coins independent: the same
/// `(scan, vm)` pair must not correlate across fault kinds.
const DOMAIN_MIGRATION: u64 = 0x4d49_4752; // "MIGR"
const DOMAIN_TRACE: u64 = 0x5452_4143; // "TRAC"

/// Point-query view over a [`FaultPlan`]: the object the sim engine and
/// testbed controller consult each scan. Stateless — all answers are
/// pure functions of the plan, so consulting it in any order (or twice)
/// changes nothing.
#[derive(Debug, Clone)]
pub struct FaultClock<'a> {
    plan: &'a FaultPlan,
}

impl<'a> FaultClock<'a> {
    /// View a plan.
    #[must_use]
    pub fn new(plan: &'a FaultPlan) -> Self {
        Self { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        self.plan
    }

    /// PMs that crash at the start of scan `t`, in schedule order.
    pub fn crashes_at(&self, t: usize) -> impl Iterator<Item = usize> + '_ {
        self.plan
            .pm_crashes
            .iter()
            .filter(move |c| c.at == t)
            .map(|c| c.pm)
    }

    /// PMs that recover at the start of scan `t`, in schedule order.
    pub fn recoveries_at(&self, t: usize) -> impl Iterator<Item = usize> + '_ {
        self.plan
            .pm_crashes
            .iter()
            .filter(move |c| c.recover_at == Some(t) && c.at < t)
            .map(|c| c.pm)
    }

    /// A deterministic coin in `[0, 1)` for one decision.
    fn unit(&self, domain: u64, a: u64, b: u64) -> f64 {
        let h = mix(self.plan.seed ^ domain.rotate_left(32) ^ mix(a) ^ mix(b).rotate_left(17));
        // 53 high bits → uniform double in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Does the migration/evacuation attempt for `vm` at scan `t` fail
    /// in flight? Keyed by attempt ordinal so retries re-toss the coin.
    #[must_use]
    pub fn migration_fails(&self, scan: usize, vm: u64, attempt: u32) -> bool {
        let p = self.plan.migration_failure_prob;
        p > 0.0
            && self.unit(
                DOMAIN_MIGRATION,
                scan as u64,
                vm ^ (u64::from(attempt) << 48),
            ) < p
    }

    /// Corrupted utilization for `(vm, scan)`, if this read is corrupted:
    /// a deterministic garbage value in `[0, 1]` replacing the trace's.
    #[must_use]
    pub fn corrupt_utilization(&self, scan: usize, vm: u64) -> Option<f64> {
        let p = self.plan.trace_corruption_prob;
        if p > 0.0 && self.unit(DOMAIN_TRACE, scan as u64, vm) < p {
            // An independent draw for the garbage value itself.
            Some(self.unit(DOMAIN_TRACE, vm.wrapping_add(1), scan as u64))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let clock = FaultClock::new(&plan);
        for t in 0..100 {
            assert_eq!(clock.crashes_at(t).count(), 0);
            assert_eq!(clock.recoveries_at(t).count(), 0);
            for vm in 0..20 {
                assert!(!clock.migration_fails(t, vm, 1));
                assert!(clock.corrupt_utilization(t, vm).is_none());
            }
        }
    }

    #[test]
    fn crash_and_recovery_schedules_resolve() {
        let plan = FaultPlan::none()
            .with_pm_crash(3, 5, Some(9))
            .with_pm_crash(7, 5, None);
        let clock = FaultClock::new(&plan);
        assert_eq!(clock.crashes_at(5).collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(clock.crashes_at(6).count(), 0);
        assert_eq!(clock.recoveries_at(9).collect::<Vec<_>>(), vec![3]);
        assert_eq!(clock.recoveries_at(5).count(), 0);
    }

    #[test]
    fn recovery_before_crash_is_ignored() {
        // recover_at <= at is a degenerate schedule; it must never fire.
        let plan = FaultPlan::none().with_pm_crash(0, 5, Some(5));
        let clock = FaultClock::new(&plan);
        assert_eq!(clock.recoveries_at(5).count(), 0);
    }

    #[test]
    fn coins_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::none().with_migration_failures(0.5).seeded(1);
        let b = FaultPlan::none().with_migration_failures(0.5).seeded(2);
        let ca = FaultClock::new(&a);
        let ca2 = FaultClock::new(&a);
        let cb = FaultClock::new(&b);
        let mut differs = false;
        for t in 0..200 {
            assert_eq!(
                ca.migration_fails(t, 7, 1),
                ca2.migration_fails(t, 7, 1),
                "same seed must agree"
            );
            differs |= ca.migration_fails(t, 7, 1) != cb.migration_fails(t, 7, 1);
        }
        assert!(differs, "different seeds must eventually disagree");
    }

    #[test]
    fn coin_rates_approximate_probability() {
        let plan = FaultPlan::none().with_migration_failures(0.3).seeded(42);
        let clock = FaultClock::new(&plan);
        let n = 20_000u64;
        let fails = (0..n)
            .filter(|&i| clock.migration_fails((i / 100) as usize, i % 100, 1))
            .count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn retries_retoss_the_coin() {
        let plan = FaultPlan::none().with_migration_failures(0.5).seeded(9);
        let clock = FaultClock::new(&plan);
        let differs =
            (0..100).any(|vm| clock.migration_fails(3, vm, 1) != clock.migration_fails(3, vm, 2));
        assert!(differs, "attempt ordinal must vary the coin");
    }

    #[test]
    fn corrupted_utilization_is_bounded() {
        let plan = FaultPlan::none().with_trace_corruption(1.0).seeded(3);
        let clock = FaultClock::new(&plan);
        for t in 0..50 {
            for vm in 0..10 {
                let u = clock.corrupt_utilization(t, vm).expect("p = 1");
                assert!((0.0..=1.0).contains(&u), "{u}");
            }
        }
    }

    #[test]
    fn agent_faults_merge_per_node() {
        let plan = FaultPlan::none()
            .with_agent_kill(2, 9)
            .with_agent_kill(2, 4)
            .with_agent_stall(2, 1, 2)
            .with_agent_stall(5, 3, 4);
        let f = plan.agent_fault(2).expect("node 2 has faults");
        assert_eq!(f.die_at_tick, Some(4), "earliest kill wins");
        assert_eq!(f.stall, Some(StallWindow { from: 1, ticks: 2 }));
        assert!(plan.agent_fault(0).is_none());
        let s = plan.agent_fault(5).expect("node 5 stalls");
        assert!(s.stall.expect("stall").covers(3));
        assert!(!s.stall.expect("stall").covers(7));
    }

    #[test]
    fn presets_cover_the_matrix() {
        for name in FaultPlan::preset_names() {
            let plan = FaultPlan::preset(name, 8, 42).expect("known preset");
            if *name == "none" {
                assert!(plan.is_empty());
            } else {
                assert!(!plan.is_empty(), "{name} must inject something");
            }
        }
        assert!(FaultPlan::preset("earthquake", 8, 42).is_none());
    }

    #[test]
    fn plan_roundtrips_through_serde() {
        let plan = FaultPlan::preset("all", 16, 7).expect("preset");
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(plan, back);
    }
}
