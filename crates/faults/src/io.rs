//! Deterministic I/O fault injection: a seeded [`IoFaultPlan`] plus the
//! [`FaultFile`] wrapper that applies it to any storage backend.
//!
//! The serve-layer journal (and anything else that persists state) is
//! written against the [`StorageFile`] trait instead of `std::fs::File`
//! directly, so tests can swap in `FaultFile<Cursor<Vec<u8>>>` and drive
//! the exact failure modes a disk exhibits:
//!
//! - **short writes / short reads** — `write` and `read` legally return
//!   fewer bytes than asked; callers must loop.
//! - **ENOSPC** — a write fails with `os error 28` and nothing lands.
//! - **read bit-flips** — one bit of a read buffer is corrupted,
//!   exercising checksum verification on the replay path.
//! - **crash points** — the process "dies" at a chosen write or sync
//!   ordinal. [`FaultFile`] buffers writes until `sync` (modelling the
//!   page cache), so a crash leaves exactly the durable prefix behind:
//!   a torn record ([`CrashSite::DuringWrite`]), a lost-but-acked-nothing
//!   record ([`CrashSite::BeforeSync`]), or a durable-but-unacknowledged
//!   record ([`CrashSite::AfterSync`]). After a crash fires, every
//!   subsequent operation fails — the handle is poisoned, like a dead
//!   process's fd.
//!
//! All probabilistic choices are splitmix64 coins keyed by
//! `(seed, domain, op ordinal)`, matching the rest of this crate: the
//! same plan replays the same faults in the same order, always.

use crate::mix;
use serde::{Deserialize, Serialize};
use std::io::{self, Cursor, Read, Seek, SeekFrom, Write};

/// Where, relative to one `(write, sync)` pair, an injected crash lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashSite {
    /// Mid-`write`: previously buffered bytes plus a coin-chosen strict
    /// prefix of the current buffer reach the backend (a torn record).
    DuringWrite,
    /// At the next `sync`: every byte buffered since the last sync is
    /// lost, as if the page cache never hit the platter.
    BeforeSync,
    /// At the next `sync`, after it durably completes: the bytes are on
    /// disk but the caller never observes success (unacknowledged work).
    AfterSync,
}

/// One scheduled crash: fires at the `ordinal`-th write call
/// ([`CrashSite::DuringWrite`]) or the `ordinal`-th sync call
/// (the two sync sites). Ordinals are 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoCrash {
    /// Which side of the write/sync pair dies.
    pub site: CrashSite,
    /// 1-based ordinal of the write or sync call that triggers it.
    pub ordinal: u64,
}

/// A seeded schedule of storage faults. The default plan is empty:
/// [`FaultFile`] with an empty plan is a transparent pass-through.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[must_use]
pub struct IoFaultPlan {
    /// Seed for the hash-based coins.
    pub seed: u64,
    /// Probability that a `write` accepts only a strict prefix.
    pub short_write_prob: f64,
    /// Probability that a `read` fills only a strict prefix.
    pub short_read_prob: f64,
    /// Probability that a `write` fails with ENOSPC (os error 28).
    pub enospc_prob: f64,
    /// Probability that one bit of a read buffer is flipped.
    pub read_bitflip_prob: f64,
    /// The scheduled crash, if any. At most one per plan: a process
    /// only dies once.
    pub crash: Option<IoCrash>,
}

impl IoFaultPlan {
    /// The empty plan: no faults, byte-transparent wrapping.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan can never inject anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.short_write_prob <= 0.0
            && self.short_read_prob <= 0.0
            && self.enospc_prob <= 0.0
            && self.read_bitflip_prob <= 0.0
            && self.crash.is_none()
    }

    /// Set the coin seed (builder style).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the short-write probability (builder style).
    pub fn with_short_writes(mut self, prob: f64) -> Self {
        self.short_write_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Set the short-read probability (builder style).
    pub fn with_short_reads(mut self, prob: f64) -> Self {
        self.short_read_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Set the ENOSPC probability (builder style).
    pub fn with_enospc(mut self, prob: f64) -> Self {
        self.enospc_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Set the read bit-flip probability (builder style).
    pub fn with_read_bitflips(mut self, prob: f64) -> Self {
        self.read_bitflip_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Schedule a crash at a 1-based write/sync ordinal (builder style).
    pub fn with_crash(mut self, site: CrashSite, ordinal: u64) -> Self {
        self.crash = Some(IoCrash { site, ordinal });
        self
    }

    /// Named presets the chaos matrix iterates. `None` for unknown names.
    #[must_use]
    pub fn io_preset(name: &str, seed: u64) -> Option<Self> {
        let plan = match name {
            "none" => Self::none(),
            "short-io" => Self::none().with_short_writes(0.4).with_short_reads(0.4),
            "disk-full" => Self::none().with_enospc(0.15),
            "bit-rot" => Self::none().with_read_bitflips(0.05),
            "torn-write" => Self::none().with_crash(CrashSite::DuringWrite, 3),
            "lost-sync" => Self::none().with_crash(CrashSite::BeforeSync, 3),
            "ghost-ack" => Self::none().with_crash(CrashSite::AfterSync, 3),
            _ => return None,
        };
        Some(plan.seeded(seed))
    }

    /// Names accepted by [`IoFaultPlan::io_preset`], in matrix order.
    #[must_use]
    pub fn io_preset_names() -> &'static [&'static str] {
        &[
            "none",
            "short-io",
            "disk-full",
            "bit-rot",
            "torn-write",
            "lost-sync",
            "ghost-ack",
        ]
    }
}

/// Independent coin domains per fault kind (see the crate docs).
const DOMAIN_IO_SHORT_WRITE: u64 = 0x494f_5357; // "IOSW"
const DOMAIN_IO_SHORT_READ: u64 = 0x494f_5352; // "IOSR"
const DOMAIN_IO_ENOSPC: u64 = 0x494f_4653; // "IOFS"
const DOMAIN_IO_BITFLIP: u64 = 0x494f_4246; // "IOBF"
const DOMAIN_IO_DRAW: u64 = 0x494f_4457; // "IODW"

/// The message carried by every error a poisoned (post-crash) handle
/// returns, and by the error the crash itself surfaces. Callers match on
/// this to distinguish an injected death from a real I/O failure.
pub const CRASH_MSG: &str = "injected crash: storage handle is dead";

fn crash_error() -> io::Error {
    io::Error::other(CRASH_MSG)
}

/// True when `err` is an injected crash from a [`FaultFile`].
#[must_use]
pub fn is_injected_crash(err: &io::Error) -> bool {
    err.to_string().contains(CRASH_MSG)
}

/// The storage surface the journal layer is written against: positioned
/// reads/writes plus explicit durability (`sync`) and truncation.
pub trait StorageFile: Read + Write + Seek {
    /// Force everything written so far to durable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Truncate the durable bytes to `len`.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

impl StorageFile for std::fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_all()
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.set_len(len)
    }
}

impl StorageFile for Cursor<Vec<u8>> {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "truncate length exceeds usize")
        })?;
        self.get_mut().truncate(len);
        if self.position() > len as u64 {
            self.set_position(len as u64);
        }
        Ok(())
    }
}

/// A fault-injecting wrapper over any [`StorageFile`].
///
/// Writes are buffered internally and only reach the inner backend on
/// `sync` — the wrapper's model of the OS page cache. This is what makes
/// the crash sites meaningful: [`FaultFile::into_inner`] after a crash
/// yields exactly the bytes a machine would find on disk after reboot.
///
/// Reads and seeks address the *durable* bytes only; the wrapper is for
/// append-oriented files (like a journal) that scan on open and append
/// afterwards, not for general read-after-unsynced-write patterns.
#[derive(Debug)]
pub struct FaultFile<T> {
    inner: T,
    plan: IoFaultPlan,
    /// Bytes written but not yet synced (the simulated page cache).
    pending: Vec<u8>,
    writes: u64,
    reads: u64,
    syncs: u64,
    crashed: bool,
}

impl<T: StorageFile> FaultFile<T> {
    /// Wrap a backend with a fault plan.
    pub fn new(inner: T, plan: IoFaultPlan) -> Self {
        Self {
            inner,
            plan,
            pending: Vec::new(),
            writes: 0,
            reads: 0,
            syncs: 0,
            crashed: true,
        }
        .revive()
    }

    fn revive(mut self) -> Self {
        self.crashed = false;
        self
    }

    /// True once an injected crash has fired; every later op fails.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Operation counts so far: `(writes, reads, syncs)`.
    #[must_use]
    pub fn ops(&self) -> (u64, u64, u64) {
        (self.writes, self.reads, self.syncs)
    }

    /// Unwrap, discarding unsynced bytes — the post-reboot view of the
    /// storage. This is the "pull the plug" primitive recovery tests use.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// A coin in `[0, 1)` keyed by `(domain, ordinal)`.
    fn unit(&self, domain: u64, ordinal: u64) -> f64 {
        let h = mix(self.plan.seed ^ domain.rotate_left(32) ^ mix(ordinal));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A draw in `[0, bound)` for fault parameters (tear length, flip
    /// position), independent of the fire/no-fire coins.
    fn draw(&self, ordinal: u64, salt: u64, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        let h = mix(self.plan.seed ^ DOMAIN_IO_DRAW.rotate_left(32) ^ mix(ordinal) ^ salt);
        (h % bound as u64) as usize
    }

    fn flush_pending(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.inner.seek(SeekFrom::End(0))?;
        self.inner.write_all(&self.pending)?;
        self.pending.clear();
        Ok(())
    }

    fn guard(&self) -> io::Result<()> {
        if self.crashed {
            Err(crash_error())
        } else {
            Ok(())
        }
    }
}

impl<T: StorageFile> Read for FaultFile<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.guard()?;
        self.reads += 1;
        let ord = self.reads;
        let want = buf.len();
        let limit = if want > 1 && self.unit(DOMAIN_IO_SHORT_READ, ord) < self.plan.short_read_prob
        {
            1 + self.draw(ord, 1, want - 1)
        } else {
            want
        };
        let n = self.inner.read(&mut buf[..limit])?;
        if n > 0 && self.unit(DOMAIN_IO_BITFLIP, ord) < self.plan.read_bitflip_prob {
            let pos = self.draw(ord, 2, n);
            let bit = self.draw(ord, 3, 8) as u32;
            buf[pos] ^= 1u8 << bit;
        }
        Ok(n)
    }
}

impl<T: StorageFile> Write for FaultFile<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.guard()?;
        self.writes += 1;
        let ord = self.writes;
        if let Some(IoCrash {
            site: CrashSite::DuringWrite,
            ordinal,
        }) = self.plan.crash
        {
            if ordinal == ord {
                // The kernel persisted everything buffered plus a strict
                // prefix of this write, then the machine died.
                self.flush_pending()?;
                let keep = self.draw(ord, 4, buf.len());
                self.inner.seek(SeekFrom::End(0))?;
                self.inner.write_all(&buf[..keep])?;
                self.inner.sync()?;
                self.crashed = true;
                return Err(crash_error());
            }
        }
        if self.unit(DOMAIN_IO_ENOSPC, ord) < self.plan.enospc_prob {
            return Err(io::Error::from_raw_os_error(28));
        }
        let take = if buf.len() > 1
            && self.unit(DOMAIN_IO_SHORT_WRITE, ord) < self.plan.short_write_prob
        {
            1 + self.draw(ord, 5, buf.len() - 1)
        } else {
            buf.len()
        };
        self.pending.extend_from_slice(&buf[..take]);
        Ok(take)
    }

    fn flush(&mut self) -> io::Result<()> {
        // Durability comes from `sync`; flush is a no-op like libc's.
        self.guard()
    }
}

impl<T: StorageFile> Seek for FaultFile<T> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.guard()?;
        self.inner.seek(pos)
    }
}

impl<T: StorageFile> StorageFile for FaultFile<T> {
    fn sync(&mut self) -> io::Result<()> {
        self.guard()?;
        self.syncs += 1;
        let ord = self.syncs;
        match self.plan.crash {
            Some(IoCrash {
                site: CrashSite::BeforeSync,
                ordinal,
            }) if ordinal == ord => {
                // Page cache lost wholesale: nothing since the last sync
                // survives.
                self.pending.clear();
                self.crashed = true;
                Err(crash_error())
            }
            Some(IoCrash {
                site: CrashSite::AfterSync,
                ordinal,
            }) if ordinal == ord => {
                // Durable, but the caller never hears back.
                self.flush_pending()?;
                self.inner.sync()?;
                self.crashed = true;
                Err(crash_error())
            }
            _ => {
                self.flush_pending()?;
                self.inner.sync()
            }
        }
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.guard()?;
        self.pending.clear();
        self.inner.truncate(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Cursor<Vec<u8>> {
        Cursor::new(Vec::new())
    }

    fn write_record(f: &mut impl StorageFile, payload: &[u8]) -> io::Result<()> {
        f.write_all(payload)?;
        f.sync()
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut f = FaultFile::new(mem(), IoFaultPlan::none());
        write_record(&mut f, b"hello ").expect("write");
        write_record(&mut f, b"world").expect("write");
        assert!(!f.crashed());
        assert_eq!(f.into_inner().into_inner(), b"hello world");
    }

    #[test]
    fn writes_are_invisible_until_sync() {
        let mut f = FaultFile::new(mem(), IoFaultPlan::none());
        f.write_all(b"buffered").expect("write");
        assert!(f.inner.get_ref().is_empty(), "unsynced bytes stay pending");
        f.sync().expect("sync");
        assert_eq!(f.into_inner().into_inner(), b"buffered");
    }

    #[test]
    fn short_writes_deliver_all_bytes_through_write_all() {
        let plan = IoFaultPlan::none().with_short_writes(0.9).seeded(7);
        let mut f = FaultFile::new(mem(), plan);
        let payload: Vec<u8> = (0u16..600).map(|i| (i % 251) as u8).collect();
        write_record(&mut f, &payload).expect("write_all loops over shorts");
        let (writes, _, _) = f.ops();
        assert!(writes > 1, "short writes must split the call");
        assert_eq!(f.into_inner().into_inner(), payload);
    }

    #[test]
    fn short_reads_deliver_all_bytes_through_read_exact() {
        let payload: Vec<u8> = (0u16..600).map(|i| (i % 253) as u8).collect();
        let plan = IoFaultPlan::none().with_short_reads(0.9).seeded(11);
        let mut f = FaultFile::new(Cursor::new(payload.clone()), plan);
        let mut back = vec![0u8; payload.len()];
        f.read_exact(&mut back).expect("read_exact loops");
        let (_, reads, _) = f.ops();
        assert!(reads > 1, "short reads must split the call");
        assert_eq!(back, payload);
    }

    #[test]
    fn enospc_is_os_error_28_and_nothing_lands() {
        let plan = IoFaultPlan::none().with_enospc(1.0).seeded(3);
        let mut f = FaultFile::new(mem(), plan);
        let err = f.write(b"doomed").expect_err("full disk");
        assert_eq!(err.raw_os_error(), Some(28));
        assert!(!f.crashed(), "ENOSPC is an error, not a death");
        f.sync().expect("sync of nothing succeeds");
        assert!(f.into_inner().into_inner().is_empty());
    }

    #[test]
    fn bitflips_corrupt_exactly_one_bit() {
        let payload = vec![0u8; 64];
        let plan = IoFaultPlan::none().with_read_bitflips(1.0).seeded(5);
        let mut f = FaultFile::new(Cursor::new(payload), plan);
        let mut back = vec![0u8; 64];
        f.read_exact(&mut back).expect("read");
        let flipped: u32 = back.iter().map(|b| b.count_ones()).sum();
        assert!(flipped >= 1, "at least one bit must flip");
    }

    #[test]
    fn crash_during_write_leaves_a_strict_prefix() {
        let plan = IoFaultPlan::none()
            .with_crash(CrashSite::DuringWrite, 2)
            .seeded(9);
        let mut f = FaultFile::new(mem(), plan);
        write_record(&mut f, b"record-one|").expect("first record lands");
        let err = f.write(b"record-two|").expect_err("dies mid-write");
        assert!(is_injected_crash(&err));
        assert!(f.crashed());
        let bytes = f.into_inner().into_inner();
        assert!(bytes.starts_with(b"record-one|"));
        let tail = &bytes[b"record-one|".len()..];
        assert!(
            tail.len() < b"record-two|".len(),
            "second record must be torn, got {} bytes",
            tail.len()
        );
        assert_eq!(tail, &b"record-two|"[..tail.len()]);
    }

    #[test]
    fn crash_before_sync_loses_the_record() {
        let plan = IoFaultPlan::none()
            .with_crash(CrashSite::BeforeSync, 2)
            .seeded(1);
        let mut f = FaultFile::new(mem(), plan);
        write_record(&mut f, b"durable|").expect("first record lands");
        f.write_all(b"lost|").expect("write buffers fine");
        let err = f.sync().expect_err("dies before the platter");
        assert!(is_injected_crash(&err));
        assert_eq!(f.into_inner().into_inner(), b"durable|");
    }

    #[test]
    fn crash_after_sync_keeps_the_record() {
        let plan = IoFaultPlan::none()
            .with_crash(CrashSite::AfterSync, 2)
            .seeded(1);
        let mut f = FaultFile::new(mem(), plan);
        write_record(&mut f, b"durable|").expect("first record lands");
        f.write_all(b"unacked|").expect("write buffers fine");
        let err = f.sync().expect_err("dies after the platter");
        assert!(is_injected_crash(&err));
        assert_eq!(f.into_inner().into_inner(), b"durable|unacked|");
    }

    #[test]
    fn poisoned_handle_fails_every_operation() {
        let plan = IoFaultPlan::none()
            .with_crash(CrashSite::BeforeSync, 1)
            .seeded(1);
        let mut f = FaultFile::new(mem(), plan);
        f.write_all(b"x").expect("buffers");
        assert!(f.sync().is_err());
        assert!(is_injected_crash(&f.write(b"y").expect_err("dead")));
        assert!(is_injected_crash(&f.read(&mut [0u8]).expect_err("dead")));
        assert!(is_injected_crash(
            &f.seek(SeekFrom::Start(0)).expect_err("dead")
        ));
        assert!(is_injected_crash(&f.sync().expect_err("dead")));
        assert!(is_injected_crash(&f.truncate(0).expect_err("dead")));
    }

    #[test]
    fn coins_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = IoFaultPlan::none()
                .with_short_writes(0.5)
                .with_enospc(0.1)
                .seeded(seed);
            let mut f = FaultFile::new(mem(), plan);
            let mut journal = Vec::new();
            for i in 0..50u8 {
                match f.write(&[i; 16]) {
                    Ok(n) => journal.push(n as i64),
                    Err(e) => journal.push(-i64::from(e.raw_os_error().unwrap_or(0))),
                }
            }
            journal
        };
        assert_eq!(run(42), run(42), "same seed, same faults");
        assert_ne!(run(42), run(43), "different seed, different faults");
    }

    #[test]
    fn cursor_truncate_clamps_position() {
        let mut c = Cursor::new(b"0123456789".to_vec());
        c.set_position(8);
        StorageFile::truncate(&mut c, 4).expect("truncate");
        assert_eq!(c.get_ref().len(), 4);
        assert!(c.position() <= 4);
    }

    #[test]
    fn io_presets_cover_the_matrix() {
        for name in IoFaultPlan::io_preset_names() {
            let plan = IoFaultPlan::io_preset(name, 42).expect("known preset");
            if *name == "none" {
                assert!(plan.is_empty());
            } else {
                assert!(!plan.is_empty(), "{name} must inject something");
            }
        }
        assert!(IoFaultPlan::io_preset("meteor", 42).is_none());
    }

    #[test]
    fn plan_roundtrips_through_serde() {
        let plan = IoFaultPlan::none()
            .with_short_writes(0.2)
            .with_crash(CrashSite::AfterSync, 7)
            .seeded(99);
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: IoFaultPlan = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(plan, back);
    }
}
