//! The token/call-graph rule families: D (determinism), P (panic
//! surface) and L008 (`#[must_use]` on builder/score types).
//!
//! Unlike L001–L007, which pattern-match masked lines file-locally,
//! these rules walk the extracted items (`items.rs`) and the same-crate
//! call graph (`callgraph.rs`), scoped by `lint.toml`:
//!
//! * **D001** — no iteration over `HashMap`/`HashSet` in functions
//!   reachable from the configured determinism roots (`[rule.D001]
//!   roots`). Hash iteration order varies per process; result-affecting
//!   paths must use `BTreeMap` or sorted vecs.
//! * **D002** — no `Instant::now` / `SystemTime` / `RandomState` in
//!   result-affecting crates (`[rule.D002] exempt_crates` carves out
//!   the observability layers).
//! * **D003** — no float `.sum()` / `.product()` in functions reachable
//!   from the hot-path roots: reductions go through the blessed
//!   `prvm-par` fixed-order fold or an explicit sequential loop whose
//!   order is visible in the source.
//! * **D004** — no branching on worker count (`global_threads`,
//!   `.threads()`, `available_parallelism`) outside `crates/par`
//!   (`[rule.D004] home_crate`).
//! * **P001** — panic-surface report: every panicking construct
//!   (`unwrap`/`expect`, panic-family macros, slice indexing, integer
//!   division by a non-literal) reachable from a `pub fn` of the
//!   configured root crates, with the offending call chain in the
//!   finding. Supersedes the file-local view of L001/L004 with a
//!   whole-crate one; `assert!` family is excluded by design (contract
//!   panics, covered by L005's documentation rule).
//! * **L008** — the types listed in `[rule.L008] types` must carry
//!   `#[must_use]`: score books, registry handles, fault-plan builders
//!   and bench configs are all values that only matter if consumed.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::items::{FnItem, Items};
use crate::lex::{Kind, Token};
use crate::rules::Finding;
use crate::scan::SourceFile;
use std::collections::BTreeMap;

/// Methods whose hash-container receivers leak iteration order.
const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Macros that always panic when reached.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Assertion macros whose argument lists are contract checks, not
/// incidental panic surface; their interiors are skipped by P001.
const ASSERT_MACROS: [&str; 6] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Run all token/call-graph rules.
pub fn check(
    files: &[SourceFile],
    items: &Items,
    graph: &CallGraph,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    let excerpts = Excerpts::new(files);
    d001_no_hash_iteration(items, graph, cfg, &excerpts, out);
    d002_no_wall_clock(items, cfg, &excerpts, out);
    d003_no_float_reductions(items, graph, cfg, &excerpts, out);
    d004_no_thread_count_branching(items, cfg, &excerpts, out);
    p001_panic_surface(items, graph, cfg, &excerpts, out);
    l008_must_use_types(items, cfg, &excerpts, out);
}

/// Raw source lines by file, for finding excerpts.
struct Excerpts<'a> {
    files: BTreeMap<&'a str, &'a SourceFile>,
}

impl<'a> Excerpts<'a> {
    fn new(files: &'a [SourceFile]) -> Self {
        Excerpts {
            files: files.iter().map(|f| (f.rel.as_str(), f)).collect(),
        }
    }

    fn line(&self, rel: &str, line: usize) -> String {
        self.files
            .get(rel)
            .and_then(|f| f.lines.get(line.saturating_sub(1)))
            .map_or_else(String::new, |l| l.raw.trim().to_string())
    }
}

/// Fn ids matching the configured roots (by qualified or bare name),
/// optionally restricted to the configured crates.
fn resolve_roots(items: &Items, roots: &[String], crates: &[String]) -> Vec<usize> {
    items
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.in_test)
        .filter(|(_, f)| crates.is_empty() || crates.iter().any(|c| c == &f.krate))
        .filter(|(_, f)| roots.iter().any(|r| r == &f.qual || r == &f.name))
        .map(|(id, _)| id)
        .collect()
}

/// Type of the value feeding a `.method(…)` chain or a `for … in`
/// head: a plain local/param, or a `self.field` projection.
fn value_type<'a>(f: &'a FnItem, items: &'a Items, body: &[Token], at: usize) -> Option<String> {
    let tok = body.get(at)?;
    if tok.kind != Kind::Ident {
        return None;
    }
    // `self . field` — type comes from the impl's struct definition.
    if at >= 2 && body[at - 1].is_punct('.') && body[at - 2].is_ident("self") {
        let self_ty = f.self_type.as_deref()?;
        return items.field_type(self_ty, &tok.text).map(str::to_string);
    }
    // A chain base of `self` with a field projection just ahead
    // (`self.vals.iter()…` resolved from the left end).
    if tok.is_ident("self")
        && body.get(at + 1).is_some_and(|t| t.is_punct('.'))
        && body.get(at + 2).is_some_and(|t| t.kind == Kind::Ident)
    {
        let self_ty = f.self_type.as_deref()?;
        return items
            .field_type(self_ty, &body[at + 2].text)
            .map(str::to_string);
    }
    f.types.get(&tok.text).cloned()
}

fn is_hash_type(ty: &str) -> bool {
    ty.contains("HashMap") || ty.contains("HashSet")
}

fn is_float_type(ty: &str) -> bool {
    ty.contains("f64") || ty.contains("f32")
}

fn push(
    out: &mut Vec<Finding>,
    excerpts: &Excerpts,
    rule: &'static str,
    rel: &str,
    line: usize,
    hint: &'static str,
    detail: String,
) {
    out.push(Finding {
        rule,
        rel: rel.to_string(),
        line,
        excerpt: excerpts.line(rel, line),
        hint,
        detail,
    });
}

/// D001: hash-container iteration on determinism-critical paths.
fn d001_no_hash_iteration(
    items: &Items,
    graph: &CallGraph,
    cfg: &Config,
    excerpts: &Excerpts,
    out: &mut Vec<Finding>,
) {
    let roots = resolve_roots(items, cfg.list("D001", "roots"), cfg.list("D001", "crates"));
    if roots.is_empty() {
        return;
    }
    let reach = graph.reach(&roots);
    for (id, f) in items.fns.iter().enumerate() {
        if !reach.contains(id) || f.in_test {
            continue;
        }
        for site in hash_iteration_sites(f, items) {
            push(
                out,
                excerpts,
                "D001",
                &f.rel,
                site,
                "hash iteration order is nondeterministic on a result-affecting path: use BTreeMap/BTreeSet or a sorted vec",
                format!("reachable via {}", reach.chain(items, id)),
            );
        }
    }
}

/// Lines inside `f` where a known hash container is iterated.
fn hash_iteration_sites(f: &FnItem, items: &Items) -> Vec<usize> {
    let body = &f.body;
    let mut sites = Vec::new();
    for i in 0..body.len() {
        // `recv . method (` where method leaks iteration order.
        if body[i].kind == Kind::Ident
            && HASH_ITER_METHODS.contains(&body[i].text.as_str())
            && i >= 2
            && body[i - 1].is_punct('.')
            && body.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            if let Some(ty) = value_type(f, items, body, i - 2) {
                if is_hash_type(&ty) {
                    sites.push(body[i].line);
                }
            }
        }
        // `for pat in [&[mut]] head {` — direct iteration.
        if body[i].is_ident("in") {
            let mut j = i + 1;
            while body
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                j += 1;
            }
            // `self . field {` or `head {`.
            let head = if body.get(j).is_some_and(|t| t.is_ident("self"))
                && body.get(j + 1).is_some_and(|t| t.is_punct('.'))
            {
                j + 2
            } else {
                j
            };
            if body.get(head + 1).is_some_and(|t| t.is_punct('{')) {
                if let Some(ty) = value_type(f, items, body, head) {
                    if is_hash_type(&ty) {
                        sites.push(body[head].line);
                    }
                }
            }
        }
    }
    sites.sort_unstable();
    sites.dedup();
    sites
}

/// D002: wall-clock and randomized-hash constructors in covered crates.
fn d002_no_wall_clock(items: &Items, cfg: &Config, excerpts: &Excerpts, out: &mut Vec<Finding>) {
    let exempt = cfg.list("D002", "exempt_crates");
    for f in &items.fns {
        if f.in_test || exempt.iter().any(|c| c == &f.krate) {
            continue;
        }
        let body = &f.body;
        for i in 0..body.len() {
            let bad = (body[i].is_ident("Instant")
                && body.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && body.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && body.get(i + 3).is_some_and(|t| t.is_ident("now")))
                || body[i].is_ident("SystemTime")
                || body[i].is_ident("RandomState");
            if bad {
                push(
                    out,
                    excerpts,
                    "D002",
                    &f.rel,
                    body[i].line,
                    "wall-clock reads and randomized hashers belong in the observability layer: route through prvm-obs (timeline::stamp) or move the code to an exempt scope",
                    format!("in {}", f.qual),
                );
            }
        }
    }
}

/// D003: float reductions on hot paths.
fn d003_no_float_reductions(
    items: &Items,
    graph: &CallGraph,
    cfg: &Config,
    excerpts: &Excerpts,
    out: &mut Vec<Finding>,
) {
    let roots = resolve_roots(items, cfg.list("D003", "roots"), cfg.list("D003", "crates"));
    if roots.is_empty() {
        return;
    }
    let reach = graph.reach(&roots);
    for (id, f) in items.fns.iter().enumerate() {
        if !reach.contains(id) || f.in_test {
            continue;
        }
        let body = &f.body;
        for i in 0..body.len() {
            if !(body[i].is_ident("sum") || body[i].is_ident("product"))
                || !body.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct('.'))
            {
                continue;
            }
            // `.sum::<f64>()` — explicit float turbofish.
            let turbofish_float = body.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && body.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && body.get(i + 3).is_some_and(|t| t.is_punct('<'))
                && body
                    .get(i + 4)
                    .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"));
            // Bare `.sum()` whose receiver chain starts from a value of
            // known float element type.
            let bare_float = body.get(i + 1).is_some_and(|t| t.is_punct('('))
                && chain_base(body, i.saturating_sub(2))
                    .and_then(|b| value_type(f, items, body, b))
                    .is_some_and(|ty| is_float_type(&ty));
            if turbofish_float || bare_float {
                push(
                    out,
                    excerpts,
                    "D003",
                    &f.rel,
                    body[i].line,
                    "float reduction on a hot path: use the prvm-par fixed-order fold or an explicit sequential loop so the summation order is pinned",
                    format!("reachable via {}", reach.chain(items, id)),
                );
            }
        }
    }
}

/// Walk a method chain leftwards from `r` (the token just before the
/// final `.`) to the base value: skips balanced groups, `.name` links
/// and `path::` segments. Returns the base ident's index.
fn chain_base(body: &[Token], mut r: usize) -> Option<usize> {
    loop {
        let t = body.get(r)?;
        match t.text.as_str() {
            ")" | "]" => {
                // Skip the balanced group, then the callee name if any.
                let open = match t.text.as_str() {
                    ")" => "(",
                    _ => "[",
                };
                let mut depth = 0i32;
                loop {
                    let u = body.get(r)?;
                    if u.text == t.text {
                        depth += 1;
                    } else if u.text == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    r = r.checked_sub(1)?;
                }
                r = r.checked_sub(1)?;
            }
            _ if t.kind == Kind::Ident => {
                let Some(prev) = r.checked_sub(1).and_then(|p| body.get(p)) else {
                    return Some(r);
                };
                if prev.is_punct('.') {
                    r = r.checked_sub(2)?;
                } else if prev.is_punct(':') {
                    // `path::seg` — step over the `::`.
                    r = r.checked_sub(3)?;
                } else {
                    return Some(r);
                }
            }
            _ => return None,
        }
    }
}

/// D004: worker-count branching outside the parallel runtime.
fn d004_no_thread_count_branching(
    items: &Items,
    cfg: &Config,
    excerpts: &Excerpts,
    out: &mut Vec<Finding>,
) {
    let home = cfg.list("D004", "home_crate");
    let exempt = cfg.list("D004", "exempt_crates");
    for f in &items.fns {
        if f.in_test || home.contains(&f.krate) || exempt.contains(&f.krate) {
            continue;
        }
        let body = &f.body;
        for i in 0..body.len() {
            let bad = body[i].is_ident("global_threads")
                || body[i].is_ident("available_parallelism")
                || (body[i].is_ident("threads")
                    && body.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct('.'))
                    && body.get(i + 1).is_some_and(|t| t.is_punct('(')));
            if bad {
                push(
                    out,
                    excerpts,
                    "D004",
                    &f.rel,
                    body[i].line,
                    "worker-count decisions live in crates/par: branching on thread count elsewhere forks behaviour between runs at different -j",
                    format!("in {}", f.qual),
                );
            }
        }
    }
}

/// P001: panic-surface reachability from the public API of the
/// configured crates.
fn p001_panic_surface(
    items: &Items,
    graph: &CallGraph,
    cfg: &Config,
    excerpts: &Excerpts,
    out: &mut Vec<Finding>,
) {
    let root_crates = cfg.list("P001", "root_crates");
    let exempt_files = cfg.list("P001", "exempt_files");
    let roots: Vec<usize> = items
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_pub && !f.in_test && root_crates.iter().any(|c| c == &f.krate))
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return;
    }
    let reach = graph.reach(&roots);
    let mut seen = std::collections::BTreeSet::new();
    for (id, f) in items.fns.iter().enumerate() {
        if !reach.contains(id) || f.in_test {
            continue;
        }
        if exempt_files.iter().any(|e| f.rel.ends_with(e.as_str())) {
            continue;
        }
        for (line, what) in panic_sites(f) {
            if seen.insert((f.rel.clone(), line, what)) {
                push(
                    out,
                    excerpts,
                    "P001",
                    &f.rel,
                    line,
                    "panicking construct reachable from the public API: return an error, use .get()/checked ops, or justify the audited invariant in lint.toml",
                    format!("{what} reachable via {}", reach.chain(items, id)),
                );
            }
        }
    }
}

/// Panicking constructs in one fn body: `(line, kind)` pairs.
fn panic_sites(f: &FnItem) -> Vec<(usize, &'static str)> {
    let body = &f.body;
    let mut sites = Vec::new();
    let mut skip_until = 0usize; // end of an assertion-macro argument list
    let mut i = 0usize;
    while i < body.len() {
        if i < skip_until {
            i += 1;
            continue;
        }
        let t = &body[i];
        // Assertion macros: contract checks, skip their argument group.
        if t.kind == Kind::Ident
            && ASSERT_MACROS.contains(&t.text.as_str())
            && body.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            skip_until = group_end(body, i + 2);
            i += 1;
            continue;
        }
        if t.kind == Kind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && body.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            sites.push((t.line, "panic macro"));
        }
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && body.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'))
            && body.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            sites.push((t.line, "unwrap/expect"));
        }
        if t.is_punct('[') {
            if let Some(prev) = i.checked_sub(1).and_then(|p| body.get(p)) {
                if prev.kind == Kind::Ident && !is_keyword(&prev.text)
                    || prev.is_punct(')')
                    || prev.is_punct(']')
                {
                    sites.push((t.line, "slice indexing"));
                }
            }
        }
        if t.is_punct('/') {
            // Division where the divisor is a value of known integer
            // type: can panic on zero. Literal divisors are exempt.
            let lhs_ok = i.checked_sub(1).and_then(|p| body.get(p)).is_some_and(|p| {
                p.kind == Kind::Ident
                    || p.kind == Kind::Number
                    || p.is_punct(')')
                    || p.is_punct(']')
            });
            let rhs_int = body.get(i + 1).is_some_and(|n| {
                n.kind == Kind::Ident
                    && f.types
                        .get(&n.text)
                        .is_some_and(|ty| INT_TYPES.iter().any(|t| ty == t))
            });
            if lhs_ok && rhs_int {
                sites.push((t.line, "integer division"));
            }
        }
        i += 1;
    }
    sites
}

/// Index one past the end of the group starting at `open` (which must
/// be a delimiter token); `open` itself when it is not a delimiter.
fn group_end(body: &[Token], open: usize) -> usize {
    let Some(t) = body.get(open) else {
        return open;
    };
    let (o, c) = match t.text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return open,
    };
    let mut depth = 0i32;
    for (j, u) in body.iter().enumerate().skip(open) {
        if u.is_punct(o) {
            depth += 1;
        } else if u.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    body.len()
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "in" | "as" | "mut" | "return" | "break" | "else" | "if" | "match" | "dyn" | "impl"
    )
}

/// L008: the configured builder/score types must be `#[must_use]`.
fn l008_must_use_types(items: &Items, cfg: &Config, excerpts: &Excerpts, out: &mut Vec<Finding>) {
    let wanted = cfg.list("L008", "types");
    for ty in &items.types {
        if ty.is_pub && wanted.iter().any(|w| w == &ty.name) && !ty.must_use {
            push(
                out,
                excerpts,
                "L008",
                &ty.rel,
                ty.line,
                "builder/score types only matter when consumed: add #[must_use] so a dropped value warns",
                format!("type {}", ty.name),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::scan::SourceFile;

    fn run_on(krate: &str, src: &str, cfg: &Config) -> Vec<(String, usize, String)> {
        let file = SourceFile::scan(
            format!("crates/{krate}/src/lib.rs"),
            krate.to_string(),
            false,
            src,
        );
        let files = vec![file];
        let items = items::extract(&files);
        let graph = CallGraph::build(&items);
        let mut out = Vec::new();
        check(&files, &items, &graph, cfg, &mut out);
        out.into_iter()
            .map(|f| (f.rule.to_string(), f.line, f.detail))
            .collect()
    }

    fn base_cfg() -> Config {
        let mut cfg = Config::default();
        cfg.set("D001", "roots", &["entry"]);
        cfg.set("D003", "roots", &["entry"]);
        cfg.set("D002", "exempt_crates", &["obs", "bench"]);
        cfg.set("D004", "home_crate", &["par"]);
        cfg.set("D004", "exempt_crates", &["bench", "cli"]);
        cfg.set("P001", "root_crates", &["core"]);
        cfg.set("L008", "types", &["ScoreBook"]);
        cfg
    }

    #[test]
    fn d001_flags_hash_iteration_reachable_from_roots() {
        let src = "\
use std::collections::HashMap;
pub fn entry(map: HashMap<u32, u32>) { helper(&map); }
fn helper(map: &HashMap<u32, u32>) {
    for (k, v) in map.iter() { drop((k, v)); }
}
fn unreachable_fn(map: &HashMap<u32, u32>) {
    for (k, v) in map.iter() { drop((k, v)); }
}
";
        let fired = run_on("x", src, &base_cfg());
        let d001: Vec<_> = fired.iter().filter(|f| f.0 == "D001").collect();
        assert_eq!(d001.len(), 1, "{fired:?}");
        assert_eq!(d001[0].1, 4);
        assert!(d001[0].2.contains("entry → helper"), "{:?}", d001[0].2);
    }

    #[test]
    fn d001_flags_direct_for_loops_and_self_fields() {
        let src = "\
use std::collections::HashSet;
pub struct S { seen: HashSet<u64> }
impl S {
    pub fn entry(&self) {
        for v in &self.seen { drop(v); }
    }
}
";
        let mut cfg = base_cfg();
        cfg.set("D001", "roots", &["S::entry"]);
        let fired = run_on("x", src, &cfg);
        assert!(fired.iter().any(|f| f.0 == "D001" && f.1 == 5), "{fired:?}");
    }

    #[test]
    fn d001_ignores_btree_and_unreached_code() {
        let src = "\
use std::collections::BTreeMap;
pub fn entry(map: BTreeMap<u32, u32>) {
    for (k, v) in map.iter() { drop((k, v)); }
}
";
        let fired = run_on("x", src, &base_cfg());
        assert!(fired.iter().all(|f| f.0 != "D001"), "{fired:?}");
    }

    #[test]
    fn d002_flags_wall_clock_outside_exempt_crates() {
        let src = "pub fn f() { let t = std::time::Instant::now(); drop(t); }\n";
        let fired = run_on("sim", src, &base_cfg());
        assert!(fired.iter().any(|f| f.0 == "D002"), "{fired:?}");
        // Observability crates are exempt by scope.
        let fired = run_on("obs", src, &base_cfg());
        assert!(fired.iter().all(|f| f.0 != "D002"), "{fired:?}");
        // Mentions of the Instant *type* (not ::now) are fine.
        let typed = "pub fn record(start: Instant, end: Instant) { drop((start, end)); }\n";
        let fired = run_on("sim", typed, &base_cfg());
        assert!(fired.iter().all(|f| f.0 != "D002"), "{fired:?}");
    }

    #[test]
    fn d003_flags_float_reductions_on_hot_paths() {
        let src = "\
pub fn entry(xs: Vec<f64>) -> f64 {
    let explicit: f64 = xs.iter().sum::<f64>();
    let bare: f64 = xs.iter().sum();
    explicit + bare
}
pub fn counts(ns: Vec<u64>) -> u64 { ns.iter().sum::<u64>() }
";
        let fired = run_on("x", src, &base_cfg());
        let d003: Vec<_> = fired.iter().filter(|f| f.0 == "D003").collect();
        assert_eq!(d003.len(), 2, "{fired:?}");
        assert_eq!(d003[0].1, 2);
        assert_eq!(d003[1].1, 3);
    }

    #[test]
    fn d004_flags_thread_count_branching_outside_par() {
        let src = "pub fn f(pool: &Pool) -> bool { pool.threads() > 1 }\n";
        assert!(run_on("sim", src, &base_cfg())
            .iter()
            .any(|f| f.0 == "D004"));
        assert!(run_on("par", src, &base_cfg())
            .iter()
            .all(|f| f.0 != "D004"));
        assert!(run_on("cli", src, &base_cfg())
            .iter()
            .all(|f| f.0 != "D004"));
        // `set_global_threads` must not match `global_threads`.
        let setter = "pub fn f() { set_global_threads(2); }\n";
        assert!(run_on("sim", setter, &base_cfg())
            .iter()
            .all(|f| f.0 != "D004"));
    }

    #[test]
    fn p001_reports_constructs_with_call_chains() {
        let src = "\
pub fn api(v: &[u64], i: usize) -> u64 { inner(v, i) }
fn inner(v: &[u64], i: usize) -> u64 {
    if v.is_empty() { panic!(\"empty\"); }
    v[i]
}
fn not_reached(v: &[u64]) -> u64 { v[0] }
";
        let fired = run_on("core", src, &base_cfg());
        let p: Vec<_> = fired.iter().filter(|f| f.0 == "P001").collect();
        // panic! at line 3 and v[i] at line 4; v[0] at 6 is unreached
        // from any pub fn — but `not_reached` resolves nothing… it IS
        // unreachable, so exactly two findings.
        assert_eq!(p.len(), 2, "{fired:?}");
        assert!(p.iter().any(|f| f.1 == 3 && f.2.contains("api → inner")));
        assert!(p.iter().any(|f| f.1 == 4));
    }

    #[test]
    fn p001_skips_assert_macros_and_tests() {
        let src = "\
pub fn api(n: usize) -> usize {
    assert!(n > 0, \"contract\");
    debug_assert_eq!(n % 2, 0);
    n
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Vec::<u8>::new()[0]; }
}
";
        let fired = run_on("core", src, &base_cfg());
        assert!(fired.iter().all(|f| f.0 != "P001"), "{fired:?}");
    }

    #[test]
    fn p001_integer_division_needs_known_int_divisor() {
        let src = "\
pub fn mean(total: u64, n: u64) -> u64 { total / n }
pub fn halve(total: u64) -> u64 { total / 2 }
pub fn ratio(a: f64, b: f64) -> f64 { a / b }
";
        let fired = run_on("core", src, &base_cfg());
        let p: Vec<_> = fired.iter().filter(|f| f.0 == "P001").collect();
        assert_eq!(p.len(), 1, "{fired:?}");
        assert_eq!(p[0].1, 1);
        assert!(p[0].2.contains("integer division"));
    }

    #[test]
    fn l008_requires_must_use_on_listed_types() {
        let src = "pub struct ScoreBook { n: u32 }\npub struct Other;\n";
        let fired = run_on("core", src, &base_cfg());
        assert!(fired.iter().any(|f| f.0 == "L008" && f.1 == 1), "{fired:?}");
        let ok = "#[must_use]\npub struct ScoreBook { n: u32 }\n";
        let fired = run_on("core", ok, &base_cfg());
        assert!(fired.iter().all(|f| f.0 != "L008"), "{fired:?}");
    }
}
