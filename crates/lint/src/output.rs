//! Machine-readable finding output: `--format json` and `--format sarif`.
//!
//! Both formats are built as `serde::Value` trees (the vendored offline
//! serde stand-in) and encoded by `serde_json` — hand-assembled rather
//! than derived so keys like `$schema` and the SARIF nesting don't
//! depend on derive-macro features the stub lacks. The SARIF output is
//! the minimal 2.1.0 subset GitHub code scanning ingests for PR
//! annotations: tool driver + rule metadata, and one result per finding
//! with a physical location.

use crate::rules::Finding;
use serde::Value;

/// Rule catalog: id → one-line description. Shared by `--rules`, the
/// SARIF rule metadata, and the self-test's coverage check.
pub const CATALOG: &[(&str, &str)] = &[
    (
        "L001",
        "no unwrap()/expect() outside tests and binary targets",
    ),
    (
        "L002",
        "no lossy `as` numeric casts in core/model (units.rs is the sanctioned layer)",
    ),
    (
        "L003",
        "no raw f64 resource arithmetic in core/sim bypassing the units.rs newtypes",
    ),
    (
        "L004",
        "no unchecked slice indexing in hot paths (graph.rs, pagerank.rs, placer.rs)",
    ),
    (
        "L005",
        "every pub fn in core documents a `# Panics` section when it can panic",
    ),
    (
        "L006",
        "no bare .recv() / .send().unwrap() on crossbeam channels outside tests",
    ),
    (
        "L007",
        "non-trivial pub fns on hot paths open a profiling span (Span::enter/timed)",
    ),
    ("L008", "configured builder/score types carry #[must_use]"),
    (
        "D001",
        "no HashMap/HashSet iteration reachable from the determinism roots",
    ),
    (
        "D002",
        "no Instant::now/SystemTime/RandomState in result-affecting crates",
    ),
    (
        "D003",
        "no float .sum()/.product() on hot paths (use the fixed-order fold)",
    ),
    ("D004", "no branching on worker count outside crates/par"),
    (
        "P001",
        "panic-surface report: panicking constructs reachable from pub fns in core/sim",
    ),
];

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

fn finding_value(f: &Finding) -> Value {
    obj(vec![
        ("rule", s(f.rule)),
        ("file", s(&f.rel)),
        ("line", Value::UInt(f.line as u64)),
        ("excerpt", s(&f.excerpt)),
        ("hint", s(f.hint)),
        ("detail", s(&f.detail)),
    ])
}

/// The `--format json` document.
pub fn to_json(findings: &[Finding], scanned: usize, allowlisted: usize) -> String {
    let doc = obj(vec![
        ("schema", s("prvm-lint/v1")),
        (
            "findings",
            Value::Array(findings.iter().map(finding_value).collect()),
        ),
        ("scanned", Value::UInt(scanned as u64)),
        ("allowlisted", Value::UInt(allowlisted as u64)),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|e| {
        // The Value tree contains no NaN/Inf; encoding cannot fail.
        unreachable!("JSON encoding of a finite Value tree failed: {e}")
    })
}

/// The `--format sarif` document (SARIF 2.1.0, GitHub-ingestible).
pub fn to_sarif(findings: &[Finding]) -> String {
    let rules: Vec<Value> = CATALOG
        .iter()
        .map(|(id, desc)| {
            obj(vec![
                ("id", s(id)),
                ("shortDescription", obj(vec![("text", s(desc))])),
            ])
        })
        .collect();
    let results: Vec<Value> = findings
        .iter()
        .map(|f| {
            let message = if f.detail.is_empty() {
                format!("{} — {}", f.excerpt, f.hint)
            } else {
                format!("{} — {} ({})", f.excerpt, f.hint, f.detail)
            };
            obj(vec![
                ("ruleId", s(f.rule)),
                ("level", s("error")),
                ("message", obj(vec![("text", s(&message))])),
                (
                    "locations",
                    Value::Array(vec![obj(vec![(
                        "physicalLocation",
                        obj(vec![
                            ("artifactLocation", obj(vec![("uri", s(&f.rel))])),
                            (
                                "region",
                                obj(vec![("startLine", Value::UInt(f.line as u64))]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    let doc = obj(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        (
            "runs",
            Value::Array(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("prvm-lint")),
                            ("version", s(env!("CARGO_PKG_VERSION"))),
                            ("rules", Value::Array(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Array(results)),
            ])]),
        ),
    ]);
    serde_json::to_string_pretty(&doc)
        .unwrap_or_else(|e| unreachable!("SARIF encoding of a finite Value tree failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> Vec<Finding> {
        vec![
            Finding {
                rule: "D001",
                rel: "crates/core/src/graph.rs".into(),
                line: 42,
                excerpt: "for (k, v) in self.index.iter() {".into(),
                hint: "use BTreeMap",
                detail: "reachable via ProfileGraph::build → walk".into(),
            },
            Finding {
                rule: "P001",
                rel: "crates/sim/src/engine.rs".into(),
                line: 7,
                excerpt: "let x = v[i];".into(),
                hint: "use .get()",
                detail: "slice indexing reachable via simulate".into(),
            },
        ]
    }

    #[test]
    fn json_round_trips_through_the_vendored_parser() {
        let text = to_json(&synthetic(), 80, 9);
        let doc: Value = serde_json::from_str(&text).expect("parse back");
        assert_eq!(doc.field("schema").unwrap(), &s("prvm-lint/v1"));
        assert_eq!(doc.field("scanned").unwrap().as_u64().unwrap(), 80);
        assert_eq!(doc.field("allowlisted").unwrap().as_u64().unwrap(), 9);
        let Value::Array(findings) = doc.field("findings").unwrap() else {
            panic!("findings must be an array");
        };
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].field("rule").unwrap(), &s("D001"));
        assert_eq!(findings[0].field("line").unwrap().as_u64().unwrap(), 42);
        assert!(matches!(
            findings[1].field("detail").unwrap(),
            Value::Str(d) if d.contains("simulate")
        ));
    }

    #[test]
    fn sarif_round_trips_with_schema_and_locations() {
        let text = to_sarif(&synthetic());
        let doc: Value = serde_json::from_str(&text).expect("parse back");
        assert!(matches!(
            doc.field("$schema").unwrap(),
            Value::Str(u) if u.contains("sarif-2.1.0")
        ));
        assert_eq!(doc.field("version").unwrap(), &s("2.1.0"));
        let Value::Array(runs) = doc.field("runs").unwrap() else {
            panic!("runs must be an array");
        };
        let driver = runs[0].field("tool").unwrap().field("driver").unwrap();
        assert_eq!(driver.field("name").unwrap(), &s("prvm-lint"));
        let Value::Array(rules) = driver.field("rules").unwrap() else {
            panic!("rules must be an array");
        };
        assert_eq!(rules.len(), CATALOG.len());
        let Value::Array(results) = runs[0].field("results").unwrap() else {
            panic!("results must be an array");
        };
        assert_eq!(results.len(), 2);
        let loc = &results[1].field("locations").unwrap();
        let Value::Array(locs) = loc else {
            panic!("locations must be an array")
        };
        let phys = locs[0].field("physicalLocation").unwrap();
        assert_eq!(
            phys.field("artifactLocation")
                .unwrap()
                .field("uri")
                .unwrap(),
            &s("crates/sim/src/engine.rs")
        );
        assert_eq!(
            phys.field("region")
                .unwrap()
                .field("startLine")
                .unwrap()
                .as_u64()
                .unwrap(),
            7
        );
    }

    #[test]
    fn empty_finding_set_is_valid_output() {
        let json = to_json(&[], 80, 9);
        let doc: Value = serde_json::from_str(&json).expect("parse");
        assert!(matches!(doc.field("findings").unwrap(), Value::Array(a) if a.is_empty()));
        let sarif = to_sarif(&[]);
        let doc: Value = serde_json::from_str(&sarif).expect("parse");
        let Value::Array(runs) = doc.field("runs").unwrap() else {
            panic!()
        };
        assert!(matches!(runs[0].field("results").unwrap(), Value::Array(a) if a.is_empty()));
    }
}
