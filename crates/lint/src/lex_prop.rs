//! Property tests for the lexer's losslessness invariant.
//!
//! Everything downstream — masking, token trees, item extraction, the
//! call graph — assumes that concatenating `Token::text` in order
//! reproduces the input byte-for-byte. These properties hammer that
//! invariant from two directions: structured soup built from the
//! trickiest Rust fragments (raw strings, nested block comments,
//! lifetimes vs char literals), and fully random character streams
//! where quote/comment openers appear in broken, unterminated
//! positions. The lexer must stay total and lossless on *any* input; on
//! garbage it may classify poorly, but it may never drop a byte.
//! (`main.rs` has the companion test running the same check over every
//! real workspace source file.)

use crate::lex;
use proptest::prelude::*;

/// Fragments chosen to collide interestingly when concatenated:
/// prefixes of one token kind that are valid starts of another.
const FRAGMENTS: &[&str] = &[
    "fn f() { }\n",
    "r#\"raw \"quoted\" text\"#",
    "r##\"nested \"# hash\"##",
    "br#\"byte raw\"#",
    "b\"bytes\\\"esc\"",
    "/* outer /* inner */ still outer */",
    "/** doc block */",
    "//! inner doc\n",
    "/// outer doc\n",
    "// plain trailing\n",
    "'a",
    "'static",
    "'x'",
    "'\\n'",
    "b'q'",
    "r#match",
    "0..5",
    "1.5e-3",
    "0x_ff",
    "1_000_000u64",
    "::",
    "->",
    "=>",
    "<<=",
    "\"str with \\\" escape\"",
    "\"multi\nline\"",
    "#![allow(dead_code)]\n",
    "#[cfg(test)]",
    "let x: Vec<u8> = vec![1, 2];\n",
    "m!{ weird $tokens }",
    " ",
    "\t",
    "\n",
    "日本語",
    "€",
];

/// Characters for the unstructured stream: heavy on token-opener
/// ambiguity (quotes, slashes, hashes, `r`/`b` prefixes, backslashes).
const CHARS: &[char] = &[
    'r',
    'b',
    '#',
    '"',
    '\'',
    '/',
    '*',
    '\\',
    'a',
    'z',
    '_',
    '0',
    '9',
    '.',
    'e',
    '+',
    '-',
    '<',
    '>',
    ':',
    ';',
    '(',
    ')',
    '{',
    '}',
    '[',
    ']',
    ' ',
    '\n',
    '\t',
    '!',
    '&',
    '|',
    '=',
    ',',
    'é',
    '\u{1F600}',
];

fn reassemble(src: &str) -> String {
    lex::lex(src).iter().map(|t| t.text.as_str()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structured soup: random concatenations of tricky fragments.
    #[test]
    fn fragment_soup_is_lossless(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..40)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        prop_assert_eq!(reassemble(&src), src);
    }

    /// Unstructured streams: arbitrary character sequences, including
    /// unterminated strings, half-open comments and stray prefixes.
    #[test]
    fn random_char_stream_is_lossless(
        picks in prop::collection::vec(0usize..CHARS.len(), 0..120)
    ) {
        let src: String = picks.iter().map(|&i| CHARS[i]).collect();
        prop_assert_eq!(reassemble(&src), src);
    }

    /// Raw strings with arbitrary hash counts and embedded terminator
    /// look-alikes survive round-tripping, surrounded by junk.
    #[test]
    fn raw_strings_with_hashes_are_lossless(
        hashes in 0usize..5,
        byte in any::<bool>(),
        tail in 0usize..FRAGMENTS.len(),
    ) {
        let h = "#".repeat(hashes);
        let inner = format!("a\"{}b", "#".repeat(hashes.saturating_sub(1)));
        let prefix = if byte { "br" } else { "r" };
        let src = format!("let s = {prefix}{h}\"{inner}\"{h};{}", FRAGMENTS[tail]);
        prop_assert_eq!(reassemble(&src), src);
    }
}
