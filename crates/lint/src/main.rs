//! `prvm-lint` — workspace-native static analysis for the PageRankVM
//! reproduction.
//!
//! Two rule layers share one engine (see DESIGN.md §8 and §12):
//!
//! * the masked-line rules L001–L007 (`rules.rs`), now running on the
//!   lossless lexer (`lex.rs`) instead of the old char state machine;
//! * the token/call-graph rules D001–D004, P001 and L008
//!   (`rules_v2.rs`), built on item extraction (`items.rs`) and a
//!   same-crate call graph (`callgraph.rs`), scoped via `lint.toml`.
//!
//! ```text
//! cargo run -p prvm-lint                     # lint the workspace
//! cargo run -p prvm-lint -- --rules          # print the rule table
//! cargo run -p prvm-lint -- --format json    # machine-readable findings
//! cargo run -p prvm-lint -- --format sarif   # GitHub PR annotations
//! cargo run -p prvm-lint -- --self-test      # prove seeded violations fire
//! cargo run -p prvm-lint -- --allow-stale    # downgrade stale allowlist entries
//! ```
//!
//! No network, no registry: the only dependencies are the vendored
//! offline serde stand-ins already in-tree, so the linter runs in
//! sandboxes and CI unchanged.

mod allowlist;
mod callgraph;
mod config;
mod items;
mod lex;
#[cfg(test)]
mod lex_prop;
mod output;
mod rules;
mod rules_v2;
mod scan;
mod selftest;
mod tokens;

use callgraph::CallGraph;
use rules::Finding;
use scan::SourceFile;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut allow_stale = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rules" => {
                for (id, desc) in output::CATALOG {
                    println!("{id}  {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--self-test" => {
                return match selftest::run() {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("prvm-lint: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            "--allow-stale" => allow_stale = true,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    return usage_error(&format!("--format expects text|json|sarif, got {other:?}"))
                }
            },
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root requires a directory argument"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return usage_error("--allowlist requires a file argument"),
            },
            other => {
                return usage_error(&format!("unknown argument `{other}`"));
            }
        }
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("prvm-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint.toml"));

    let report = match run_lint(&root, &allowlist_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("prvm-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Stale allowlist entries are themselves findings about lint.toml:
    // errors by default, warnings under --allow-stale.
    let stale_ok = report.stale.is_empty() || allow_stale;
    for s in &report.stale {
        let sev = if allow_stale { "warning" } else { "error" };
        eprintln!("{sev}: {s}");
    }

    match format {
        Format::Text => print_text(&report),
        Format::Json => println!(
            "{}",
            output::to_json(&report.findings, report.scanned, report.allowed)
        ),
        Format::Sarif => println!("{}", output::to_sarif(&report.findings)),
    }

    if report.findings.is_empty() && stale_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("prvm-lint: {msg}");
    eprintln!(
        "usage: prvm-lint [--root DIR] [--allowlist FILE] [--format text|json|sarif] \
         [--allow-stale] [--rules] [--self-test]"
    );
    ExitCode::FAILURE
}

/// Outcome of one lint run.
pub(crate) struct Report {
    /// Unallowlisted findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub scanned: usize,
    /// Findings suppressed by the allowlist.
    pub allowed: usize,
    /// Allowlist entries in lint.toml.
    pub entries: usize,
    /// Rendered descriptions of allowlist entries that matched nothing.
    pub stale: Vec<String>,
}

/// Lint the tree under `root` against `allowlist_path`.
pub(crate) fn run_lint(root: &Path, allowlist_path: &Path) -> Result<Report, String> {
    let (cfg, mut entries) = match std::fs::read_to_string(allowlist_path) {
        Ok(text) => config::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            (config::Config::default(), Vec::new())
        }
        Err(e) => return Err(format!("{}: {e}", allowlist_path.display())),
    };

    let mut files = collect_sources(root)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));

    let extracted = items::extract(&files);
    let graph = CallGraph::build(&extracted);

    let mut findings: Vec<Finding> = Vec::new();
    for file in &files {
        rules::check(file, &mut findings);
    }
    rules_v2::check(&files, &extracted, &graph, &cfg, &mut findings);
    findings.sort_by(|a, b| (&a.rel, a.line, a.rule).cmp(&(&b.rel, b.line, b.rule)));

    let mut reported = Vec::new();
    let mut allowed = 0usize;
    for f in findings {
        if allowlist::allows(&mut entries, &f) {
            allowed += 1;
        } else {
            reported.push(f);
        }
    }

    let stale = allowlist::stale(&entries)
        .into_iter()
        .map(|e| {
            format!(
                "lint.toml:{}: stale allowlist entry ({} | {} | {}) matches no finding — \
                 reason was: {} (pass --allow-stale to downgrade while refactoring)",
                e.line, e.rule, e.file, e.contains, e.reason
            )
        })
        .collect();

    Ok(Report {
        findings: reported,
        scanned: files.len(),
        allowed,
        entries: entries.len(),
        stale,
    })
}

fn print_text(report: &Report) {
    let mut per_rule = std::collections::BTreeMap::<&str, usize>::new();
    for f in &report.findings {
        *per_rule.entry(f.rule).or_default() += 1;
        println!("{}:{}: {}: {}", f.rel, f.line, f.rule, f.excerpt);
        if !f.detail.is_empty() {
            println!("    {}", f.detail);
        }
        println!("    hint: {}", f.hint);
    }
    if report.findings.is_empty() {
        println!(
            "prvm-lint: clean — {} files scanned, {} finding(s) allowlisted ({} entries)",
            report.scanned, report.allowed, report.entries
        );
    } else {
        let by_rule: Vec<String> = per_rule.iter().map(|(r, c)| format!("{r}×{c}")).collect();
        println!(
            "prvm-lint: {} finding(s) [{}] in {} files ({} allowlisted); see `--rules` and lint.toml",
            report.findings.len(),
            by_rule.join(", "),
            report.scanned,
            report.allowed
        );
    }
}

/// Locate the workspace root: walk up from the current directory until a
/// `Cargo.toml` containing `[workspace]` appears.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory \
                 (run from the repo or pass --root)"
                .to_string());
        }
    }
}

/// Read, lex and mask every `.rs` file under `crates/*/src`.
fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    for krate in read_dir_sorted(&crates_dir)? {
        let src = krate.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name = krate
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let crate_is_lib = src.join("lib.rs").is_file();
        let mut stack = vec![src.clone()];
        while let Some(dir) = stack.pop() {
            for path in read_dir_sorted(&dir)? {
                if path.is_dir() {
                    stack.push(path);
                    continue;
                }
                if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                    continue;
                }
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let is_bin =
                    !crate_is_lib || rel.ends_with("/src/main.rs") || rel.contains("/src/bin/");
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                out.push(SourceFile::scan(rel, crate_name.clone(), is_bin, &text));
            }
        }
    }
    Ok(out)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in rd {
        paths.push(entry.map_err(|e| e.to_string())?.path());
    }
    paths.sort();
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_table_lists_all_rules() {
        for rule in [
            "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "D001", "D002", "D003",
            "D004", "P001",
        ] {
            assert!(
                output::CATALOG.iter().any(|(id, _)| *id == rule),
                "{rule} missing from catalog"
            );
        }
    }

    #[test]
    fn lint_run_on_this_workspace_is_clean() {
        // The repo's own acceptance criterion: the shipped tree lints
        // clean against the shipped allowlist, with no stale entries.
        let root = find_workspace_root().expect("workspace root");
        let report = run_lint(&root, &root.join("lint.toml")).expect("lint run");
        let rendered: Vec<String> = report
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{}:{}: {}: {} [{}]",
                    f.rel, f.line, f.rule, f.excerpt, f.detail
                )
            })
            .collect();
        assert!(
            report.findings.is_empty(),
            "prvm-lint reports findings on the shipped tree:\n{}",
            rendered.join("\n")
        );
        assert!(
            report.stale.is_empty(),
            "stale allowlist entries:\n{}",
            report.stale.join("\n")
        );
    }

    #[test]
    fn lexer_reassembly_is_lossless_on_every_workspace_file() {
        // Satellite guarantee: lex → reassemble reproduces every real
        // source file byte-for-byte (the proptest in lex_lossless.rs
        // covers synthetic inputs; this covers the shipped tree).
        let root = find_workspace_root().expect("workspace root");
        let files = collect_sources(&root).expect("collect");
        assert!(files.len() > 40, "workspace scan looks truncated");
        for f in &files {
            let path = root.join(&f.rel);
            let text = std::fs::read_to_string(&path).expect("read");
            let reassembled: String = f.tokens.iter().map(|t| t.text.as_str()).collect();
            assert!(
                reassembled == text,
                "lossless reassembly failed for {}",
                f.rel
            );
        }
    }
}
