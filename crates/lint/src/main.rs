//! `prvm-lint` — workspace-native static analysis for the PageRankVM
//! reproduction.
//!
//! Walks `crates/*/src`, applies the project lint rules L001–L007 (see
//! `rules.rs` and DESIGN.md §8), subtracts the justified exceptions in
//! `lint.toml`, and exits non-zero when unallowlisted findings remain.
//!
//! ```text
//! cargo run -p prvm-lint              # lint the workspace
//! cargo run -p prvm-lint -- --rules   # print the rule table
//! ```
//!
//! Pure std, no external dependencies: the linter must run in offline
//! sandboxes and CI without touching a registry.

mod allowlist;
mod rules;
mod scan;

use rules::Finding;
use scan::SourceFile;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const RULE_TABLE: &str = "\
L001  no unwrap()/expect() outside tests and binary targets
L002  no lossy `as` numeric casts in core/model (units.rs is the sanctioned layer)
L003  no raw f64 resource arithmetic in core/sim bypassing the units.rs newtypes
L004  no unchecked slice indexing in hot paths (graph.rs, pagerank.rs, placer.rs)
L005  every pub fn in core documents a `# Panics` section when it can panic
L006  no bare .recv() / .send().unwrap() on crossbeam channels outside tests
L007  non-trivial pub fns on hot paths open a profiling span (Span::enter/timed)";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rules" => {
                println!("{RULE_TABLE}");
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root requires a directory argument"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return usage_error("--allowlist requires a file argument"),
            },
            other => {
                return usage_error(&format!("unknown argument `{other}`"));
            }
        }
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("prvm-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint.toml"));

    match run(&root, &allowlist_path) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("prvm-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("prvm-lint: {msg}");
    eprintln!("usage: prvm-lint [--root DIR] [--allowlist FILE] [--rules]");
    ExitCode::FAILURE
}

/// Lint the tree under `root`; returns `Ok(true)` when clean.
fn run(root: &Path, allowlist_path: &Path) -> Result<bool, String> {
    let mut entries = match std::fs::read_to_string(allowlist_path) {
        Ok(text) => allowlist::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("{}: {e}", allowlist_path.display())),
    };

    let mut files = collect_sources(root)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));

    let mut findings: Vec<Finding> = Vec::new();
    for file in &files {
        rules::check(file, &mut findings);
    }

    let mut reported = 0usize;
    let mut allowed = 0usize;
    let mut per_rule = std::collections::BTreeMap::<&str, usize>::new();
    for f in &findings {
        if allowlist::allows(&mut entries, f) {
            allowed += 1;
            continue;
        }
        reported += 1;
        *per_rule.entry(f.rule).or_default() += 1;
        println!("{}:{}: {}: {}", f.rel, f.line, f.rule, f.excerpt);
        println!("    hint: {}", f.hint);
    }

    for e in entries.iter().filter(|e| e.hits == 0) {
        eprintln!(
            "warning: lint.toml:{}: unused allowlist entry ({} | {} | {}) — reason was: {}",
            e.line, e.rule, e.file, e.contains, e.reason
        );
    }

    let scanned = files.len();
    if reported == 0 {
        println!(
            "prvm-lint: clean — {scanned} files scanned, {allowed} finding(s) allowlisted ({} entries)",
            entries.len()
        );
        Ok(true)
    } else {
        let by_rule: Vec<String> = per_rule.iter().map(|(r, c)| format!("{r}×{c}")).collect();
        println!(
            "prvm-lint: {reported} finding(s) [{}] in {scanned} files ({allowed} allowlisted); see `--rules` and lint.toml",
            by_rule.join(", ")
        );
        Ok(false)
    }
}

/// Locate the workspace root: walk up from the current directory until a
/// `Cargo.toml` containing `[workspace]` appears.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory \
                 (run from the repo or pass --root)"
                .to_string());
        }
    }
}

/// Read and mask every `.rs` file under `crates/*/src`.
fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    for krate in read_dir_sorted(&crates_dir)? {
        let src = krate.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_is_lib = src.join("lib.rs").is_file();
        let mut stack = vec![src.clone()];
        while let Some(dir) = stack.pop() {
            for path in read_dir_sorted(&dir)? {
                if path.is_dir() {
                    stack.push(path);
                    continue;
                }
                if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                    continue;
                }
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let is_bin =
                    !crate_is_lib || rel.ends_with("/src/main.rs") || rel.contains("/src/bin/");
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                out.push(SourceFile {
                    rel,
                    is_bin,
                    lines: scan::mask(&text),
                });
            }
        }
    }
    Ok(out)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in rd {
        paths.push(entry.map_err(|e| e.to_string())?.path());
    }
    paths.sort();
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_table_lists_all_rules() {
        for rule in ["L001", "L002", "L003", "L004", "L005", "L006", "L007"] {
            assert!(RULE_TABLE.contains(rule));
        }
    }

    #[test]
    fn lint_run_on_this_workspace_is_clean() {
        // The repo's own acceptance criterion: the shipped tree lints clean
        // against the shipped allowlist.
        let root = find_workspace_root().expect("workspace root");
        let clean = run(&root, &root.join("lint.toml")).expect("lint run");
        assert!(clean, "prvm-lint reports findings on the shipped tree");
    }
}
