//! `lint.toml` parsing: rule configuration sections plus the allowlist.
//!
//! The file stays hand-parseable (no TOML dependency) with two line
//! shapes:
//!
//! ```text
//! [rule.D001]                      # opens a rule's config section
//! roots = pagerank, Placer::choose # comma-separated value list
//!
//! L004 | crates/core/src/graph.rs | &self.nodes[ix(id)] | reason…
//! ```
//!
//! Pipe lines are allowlist entries wherever they appear; `key = v, v`
//! lines belong to the most recent `[rule.XXX]` header. Scoped roots
//! and exemptions therefore live next to the exceptions they justify,
//! and rules never hardcode paths.

use crate::allowlist::{self, Entry};
use std::collections::BTreeMap;

/// Parsed rule configuration: `rule id → key → values`.
#[derive(Debug, Default)]
pub struct Config {
    sections: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

impl Config {
    /// The value list for `rule.key`, empty when absent.
    pub fn list(&self, rule: &str, key: &str) -> &[String] {
        self.sections
            .get(rule)
            .and_then(|s| s.get(key))
            .map_or(&[], Vec::as_slice)
    }

    /// Membership test against `rule.key`.
    #[cfg(test)]
    pub fn contains(&self, rule: &str, key: &str, value: &str) -> bool {
        self.list(rule, key).iter().any(|v| v == value)
    }

    #[cfg(test)]
    pub fn set(&mut self, rule: &str, key: &str, values: &[&str]) {
        self.sections.entry(rule.to_string()).or_default().insert(
            key.to_string(),
            values.iter().map(|v| (*v).to_string()).collect(),
        );
    }
}

/// Parse the full `lint.toml`: config sections and allowlist entries.
pub fn parse(text: &str) -> Result<(Config, Vec<Entry>), String> {
    let mut config = Config::default();
    let mut entries = Vec::new();
    let mut section: Option<String> = None;
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let rule = header.strip_prefix("rule.").ok_or_else(|| {
                format!(
                    "lint.toml:{}: section `[{header}]` must be `[rule.XXX]`",
                    n + 1
                )
            })?;
            section = Some(rule.to_string());
            config.sections.entry(rule.to_string()).or_default();
            continue;
        }
        if line.contains('|') {
            entries.push(allowlist::parse_entry(line, n + 1)?);
            continue;
        }
        if let Some((key, values)) = line.split_once('=') {
            let Some(rule) = &section else {
                return Err(format!(
                    "lint.toml:{}: `key = values` outside any [rule.XXX] section",
                    n + 1
                ));
            };
            let values: Vec<String> = values
                .split(',')
                .map(str::trim)
                .filter(|v| !v.is_empty())
                .map(str::to_string)
                .collect();
            config
                .sections
                .get_mut(rule)
                .expect("section inserted at header")
                .insert(key.trim().to_string(), values);
            continue;
        }
        return Err(format!(
            "lint.toml:{}: expected a `[rule.XXX]` header, `key = values`, or a \
             `RULE | file | substring | reason` allowlist line",
            n + 1
        ));
    }
    allowlist::check_duplicates(&entries)?;
    Ok((config, entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_and_allowlist_coexist() {
        let text = "\
# comment
[rule.D001]
roots = pagerank, ProfileGraph::build
crates = core

[rule.D002]
exempt_crates = obs, bench

L004 | crates/core/src/graph.rs | nodes[ix(id)] | audited accessor
";
        let (cfg, entries) = parse(text).unwrap();
        assert_eq!(
            cfg.list("D001", "roots"),
            ["pagerank", "ProfileGraph::build"]
        );
        assert!(cfg.contains("D002", "exempt_crates", "obs"));
        assert!(!cfg.contains("D002", "exempt_crates", "core"));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "L004");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse("[wrong-section]\n").is_err());
        assert!(parse("key = value\n").is_err()); // outside a section
        assert!(parse("free text\n").is_err());
        assert!(parse("L001 | a | b\n").is_err()); // 3 fields
    }

    #[test]
    fn missing_keys_read_as_empty() {
        let (cfg, _) = parse("[rule.D004]\n").unwrap();
        assert!(cfg.list("D004", "roots").is_empty());
        assert!(cfg.list("P001", "root_crates").is_empty());
    }
}
