//! Item extraction: `fn`, `struct`, `enum`, `impl` and `mod` structure
//! recovered from token trees.
//!
//! This is a *linter's* view, not a compiler's: name resolution is
//! same-crate and text-based, generics are skipped rather than
//! understood, and anything unrecognised is stepped over. The output
//! feeds the call graph (`callgraph.rs`) and the D/P rule families
//! (`rules_v2.rs`), which are written to tolerate over-approximation:
//! an extra edge or an unknown type makes a rule quieter or an
//! allowlist entry longer, never a wrong program.

use crate::lex::{Kind, Token};
use crate::scan::SourceFile;
use crate::tokens::{self, Tree};
use std::collections::BTreeMap;

/// One extracted function (free fn, inherent/trait method, or trait
/// default method).
#[derive(Debug)]
pub struct FnItem {
    /// Crate directory name (`core`, `sim`, …).
    pub krate: String,
    /// Workspace-relative file path.
    pub rel: String,
    /// Bare function name.
    pub name: String,
    /// `SelfType::name` inside an `impl`/`trait` block, else `name`.
    pub qual: String,
    pub is_pub: bool,
    /// Under `#[cfg(test)]` or carrying `#[test]`.
    pub in_test: bool,
    /// Flattened body tokens (group delimiters materialised).
    pub body: Vec<Token>,
    /// Known value types in scope: parameters and annotated `let`
    /// bindings, by name. Unannotated bindings are absent (unknown).
    pub types: BTreeMap<String, String>,
    /// The surrounding `impl`/`trait` self type, if any.
    pub self_type: Option<String>,
}

/// One extracted nominal type (struct or enum).
#[derive(Debug)]
pub struct TypeItem {
    pub rel: String,
    /// 1-based line of the `struct`/`enum` keyword.
    pub line: usize,
    pub name: String,
    pub is_pub: bool,
    /// Carries `#[must_use]` (directly, any payload).
    pub must_use: bool,
    /// Named fields and their type text (structs only).
    pub fields: BTreeMap<String, String>,
}

/// Everything extracted from a set of source files.
#[derive(Debug, Default)]
pub struct Items {
    pub fns: Vec<FnItem>,
    pub types: Vec<TypeItem>,
}

impl Items {
    /// Field type of `type_name.field`, if both are known.
    pub fn field_type(&self, type_name: &str, field: &str) -> Option<&str> {
        self.types
            .iter()
            .find(|t| t.name == type_name)
            .and_then(|t| t.fields.get(field))
            .map(String::as_str)
    }
}

/// Extract items from `files` (already scanned) into one table.
pub fn extract(files: &[SourceFile]) -> Items {
    let mut items = Items::default();
    for file in files {
        let trees = tokens::build(&file.tokens);
        walk(
            &trees,
            &Ctx {
                krate: &file.krate,
                rel: &file.rel,
            },
            None,
            false,
            &mut items,
        );
    }
    items
}

struct Ctx<'a> {
    krate: &'a str,
    rel: &'a str,
}

/// Walk one brace level: a file, `mod` body, or `impl`/`trait` body.
fn walk(trees: &[Tree], ctx: &Ctx, self_type: Option<&str>, in_test: bool, items: &mut Items) {
    let mut i = 0usize;
    while i < trees.len() {
        i = parse_one(trees, i, ctx, self_type, in_test, items);
    }
}

/// Parse the item starting at `trees[i]`; returns the index just past it.
/// Unrecognised constructs advance by one node (graceful degradation).
#[allow(clippy::too_many_lines)]
fn parse_one(
    trees: &[Tree],
    mut i: usize,
    ctx: &Ctx,
    self_type: Option<&str>,
    in_test: bool,
    items: &mut Items,
) -> usize {
    // Attributes: `#[…]` (outer) and `#![…]` (inner).
    let mut attrs: Vec<String> = Vec::new();
    while is_punct(trees.get(i), '#') {
        let mut j = i + 1;
        if is_punct(trees.get(j), '!') {
            j += 1;
        }
        if let Some(Tree::Group {
            open: '[',
            children,
            ..
        }) = trees.get(j)
        {
            // Spaces stripped so `cfg (test)` renderings match `cfg(test…)`.
            attrs.push(tokens::to_text(children).replace(' ', ""));
            i = j + 1;
        } else {
            return i + 1;
        }
    }
    let here_in_test = in_test
        || attrs
            .iter()
            .any(|a| a.starts_with("cfg(test") || a.starts_with("cfg(all(test") || a == "test");

    // Visibility.
    let mut is_pub = false;
    if is_ident(trees.get(i), "pub") {
        is_pub = true;
        i += 1;
        if matches!(trees.get(i), Some(Tree::Group { open: '(', .. })) {
            i += 1;
        }
    }

    // Modifiers before `fn` (const fn / unsafe fn / async fn / extern fn).
    loop {
        match leaf_text(trees.get(i)) {
            Some("unsafe" | "async" | "default") => i += 1,
            Some("const")
                if matches!(
                    leaf_text(trees.get(i + 1)),
                    Some("fn" | "unsafe" | "async" | "extern")
                ) =>
            {
                i += 1;
            }
            Some("extern") => {
                i += 1;
                if matches!(trees.get(i), Some(Tree::Leaf(t)) if t.kind == Kind::Str) {
                    i += 1;
                }
            }
            _ => break,
        }
    }

    match leaf_text(trees.get(i)) {
        Some("fn") => parse_fn(trees, i, ctx, self_type, here_in_test, is_pub, items),
        Some("mod") => {
            // `mod name { … }` or `mod name;`.
            let mut j = i + 2;
            if let Some(Tree::Group {
                open: '{',
                children,
                ..
            }) = trees.get(j)
            {
                walk(children, ctx, None, here_in_test, items);
                j += 1;
            } else if is_punct(trees.get(j), ';') {
                j += 1;
            }
            j
        }
        Some("impl") => {
            let (ty, body_at) = impl_self_type(trees, i + 1);
            if let Some(Tree::Group {
                open: '{',
                children,
                ..
            }) = trees.get(body_at)
            {
                walk(children, ctx, ty.as_deref(), here_in_test, items);
                body_at + 1
            } else {
                body_at
            }
        }
        Some("trait") => {
            let name = leaf_text(trees.get(i + 1)).unwrap_or("").to_string();
            let mut j = i + 2;
            while j < trees.len() && !matches!(trees.get(j), Some(Tree::Group { open: '{', .. })) {
                j += 1;
            }
            if let Some(Tree::Group { children, .. }) = trees.get(j) {
                walk(children, ctx, Some(&name), here_in_test, items);
            }
            j + 1
        }
        Some(kw @ ("struct" | "enum" | "union")) => {
            parse_type(trees, i, ctx, kw, here_in_test, is_pub, &attrs, items)
        }
        Some("macro_rules") => {
            // `macro_rules! name { … }` — never descend into macro soup.
            let mut j = i + 1;
            while j < trees.len() && !matches!(trees.get(j), Some(Tree::Group { open: '{', .. })) {
                j += 1;
            }
            j + 1
        }
        Some("use" | "type" | "static" | "const") => {
            // Skip to the terminating semicolon at this level.
            let mut j = i;
            while j < trees.len() && !is_punct(trees.get(j), ';') {
                j += 1;
            }
            j + 1
        }
        _ => i + 1,
    }
}

/// Parse a `fn` item at `trees[i]` (the `fn` keyword).
fn parse_fn(
    trees: &[Tree],
    i: usize,
    ctx: &Ctx,
    self_type: Option<&str>,
    in_test: bool,
    is_pub: bool,
    items: &mut Items,
) -> usize {
    let Some(name) = leaf_text(trees.get(i + 1)).map(str::to_string) else {
        return i + 1;
    };
    let mut j = i + 2;
    // Generic parameter list `<…>` (leaves; `>>` lexes as two puncts).
    if is_punct(trees.get(j), '<') {
        let mut depth = 0i32;
        while j < trees.len() {
            if is_punct(trees.get(j), '<') {
                depth += 1;
            } else if is_punct(trees.get(j), '>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    let mut types = BTreeMap::new();
    if let Some(Tree::Group {
        open: '(',
        children,
        ..
    }) = trees.get(j)
    {
        param_types(children, self_type, &mut types);
        j += 1;
    }
    // Return type / where clause: anything up to the body `{…}` or `;`.
    let mut body = Vec::new();
    while let Some(node) = trees.get(j) {
        match node {
            Tree::Group {
                open: '{',
                children,
                ..
            } => {
                tokens::flatten(children, &mut body);
                j += 1;
                break;
            }
            Tree::Leaf(t) if t.text == ";" => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    let_annotations(&body, &mut types);
    let qual = match self_type {
        Some(ty) => format!("{ty}::{name}"),
        None => name.clone(),
    };
    items.fns.push(FnItem {
        krate: ctx.krate.to_string(),
        rel: ctx.rel.to_string(),
        name,
        qual,
        is_pub,
        in_test,
        body,
        types,
        self_type: self_type.map(str::to_string),
    });
    j
}

/// Parse `struct`/`enum`/`union` at `trees[i]` (the keyword).
#[allow(clippy::too_many_arguments)]
fn parse_type(
    trees: &[Tree],
    i: usize,
    ctx: &Ctx,
    kw: &str,
    _in_test: bool,
    is_pub: bool,
    attrs: &[String],
    items: &mut Items,
) -> usize {
    let line = trees[i].line();
    let Some(name) = leaf_text(trees.get(i + 1)).map(str::to_string) else {
        return i + 1;
    };
    let mut fields = BTreeMap::new();
    // Scan to the body or terminating `;`, skipping generics/where.
    let mut j = i + 2;
    while let Some(node) = trees.get(j) {
        match node {
            Tree::Group {
                open: '{',
                children,
                ..
            } => {
                if kw == "struct" {
                    struct_fields(children, &mut fields);
                }
                j += 1;
                break;
            }
            Tree::Group { open: '(', .. } => {
                // Tuple struct: skip the field list, then the `;`.
                j += 1;
            }
            Tree::Leaf(t) if t.text == ";" => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    items.types.push(TypeItem {
        rel: ctx.rel.to_string(),
        line,
        name,
        is_pub,
        must_use: attrs.iter().any(|a| a.starts_with("must_use")),
        fields,
    });
    j
}

/// Self type of an `impl` header starting just past the `impl` keyword:
/// `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`. Returns the type
/// name and the index of the body group.
fn impl_self_type(trees: &[Tree], mut i: usize) -> (Option<String>, usize) {
    let mut angle = 0i32;
    let mut after_for: Option<String> = None;
    let mut first: Option<String> = None;
    while let Some(node) = trees.get(i) {
        match node {
            Tree::Group { open: '{', .. } => break,
            Tree::Leaf(t) if t.text == "<" => angle += 1,
            Tree::Leaf(t) if t.text == ">" => angle -= 1,
            Tree::Leaf(t) if angle == 0 && t.text == "for" => {
                // The self type follows; reset so its first ident wins.
                after_for = None;
                i += 1;
                while let Some(n2) = trees.get(i) {
                    match n2 {
                        Tree::Group { open: '{', .. } => break,
                        Tree::Leaf(t2) if t2.kind == Kind::Ident && after_for.is_none() => {
                            after_for = Some(t2.text.clone());
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                break;
            }
            Tree::Leaf(t) if angle == 0 && t.kind == Kind::Ident && first.is_none() => {
                first = Some(t.text.clone());
            }
            _ => {}
        }
        i += 1;
    }
    (after_for.or(first), i)
}

/// Record `name → type text` for each parameter in a fn's `(…)` group.
fn param_types(children: &[Tree], self_type: Option<&str>, out: &mut BTreeMap<String, String>) {
    for chunk in split_commas(children) {
        // `self`, `&self`, `&mut self`, `mut self`.
        if chunk
            .iter()
            .any(|n| matches!(n, Tree::Leaf(t) if t.text == "self"))
            && !chunk
                .iter()
                .any(|n| matches!(n, Tree::Leaf(t) if t.text == ":"))
        {
            if let Some(ty) = self_type {
                out.insert("self".to_string(), ty.to_string());
            }
            continue;
        }
        // `name: Type` (with optional `mut` / attrs before the name).
        let Some(colon) = chunk
            .iter()
            .position(|n| matches!(n, Tree::Leaf(t) if t.text == ":"))
        else {
            continue;
        };
        let name = chunk[..colon].iter().rev().find_map(|n| match n {
            Tree::Leaf(t) if t.kind == Kind::Ident && t.text != "mut" => Some(t.text.clone()),
            _ => None,
        });
        if let Some(name) = name {
            out.insert(name, type_text(&chunk[colon + 1..]));
        }
    }
}

/// Record `name → type text` for named struct fields.
fn struct_fields(children: &[Tree], out: &mut BTreeMap<String, String>) {
    for chunk in split_commas(children) {
        // Skip per-field attributes and visibility.
        let mut start = 0usize;
        while start < chunk.len() {
            match &chunk[start] {
                Tree::Leaf(t) if t.text == "#" => start += 2,
                Tree::Leaf(t) if t.text == "pub" => {
                    start += 1;
                    if matches!(chunk.get(start), Some(Tree::Group { open: '(', .. })) {
                        start += 1;
                    }
                }
                _ => break,
            }
        }
        let rest = &chunk[start.min(chunk.len())..];
        let Some(colon) = rest
            .iter()
            .position(|n| matches!(n, Tree::Leaf(t) if t.text == ":"))
        else {
            continue;
        };
        if let Some(Tree::Leaf(t)) = rest.first() {
            if t.kind == Kind::Ident {
                out.insert(t.text.clone(), type_text(&rest[colon + 1..]));
            }
        }
    }
}

/// Harvest `let [mut] name: Type = …;` annotations from a flattened
/// body. Unannotated lets are skipped — types stay unknown.
fn let_annotations(body: &[Token], out: &mut BTreeMap<String, String>) {
    let mut i = 0usize;
    while i < body.len() {
        if !body[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if body.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = body.get(j).filter(|t| t.kind == Kind::Ident) else {
            i = j + 1;
            continue;
        };
        if body.get(j + 1).is_some_and(|t| t.is_punct(':')) {
            // Collect type tokens until the top-level `=` or `;`.
            let mut k = j + 2;
            let mut angle = 0i32;
            let mut group = 0i32;
            let mut ty = Vec::new();
            while let Some(t) = body.get(k) {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "(" | "[" | "{" => group += 1,
                    ")" | "]" | "}" => group -= 1,
                    "=" | ";" if angle <= 0 && group <= 0 => break,
                    _ => {}
                }
                ty.push(t.clone());
                k += 1;
            }
            out.insert(name.text.clone(), tokens::join_tokens(&ty));
            i = k;
        } else {
            i = j + 1;
        }
    }
}

/// Split a group's children on top-level commas (angle-depth aware).
fn split_commas(children: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut angle = 0i32;
    let mut start = 0usize;
    for (i, node) in children.iter().enumerate() {
        if let Tree::Leaf(t) = node {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "," if angle <= 0 => {
                    out.push(&children[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
    }
    if start < children.len() {
        out.push(&children[start..]);
    }
    out
}

fn type_text(trees: &[Tree]) -> String {
    tokens::to_text(trees)
}

fn leaf_text(node: Option<&Tree>) -> Option<&str> {
    match node {
        Some(Tree::Leaf(t)) if t.kind == Kind::Ident => Some(t.text.as_str()),
        _ => None,
    }
}

fn is_punct(node: Option<&Tree>, c: char) -> bool {
    matches!(node, Some(Tree::Leaf(t)) if t.is_punct(c))
}

fn is_ident(node: Option<&Tree>, s: &str) -> bool {
    matches!(node, Some(Tree::Leaf(t)) if t.is_ident(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn extract_src(src: &str) -> Items {
        let file = SourceFile::scan("crates/x/src/lib.rs".into(), "x".into(), false, src);
        extract(&[file])
    }

    #[test]
    fn free_fn_and_method_qualification() {
        let items = extract_src(
            "pub fn top(n: usize) {}\n\
             struct Foo { map: HashMap<u32, u32> }\n\
             impl Foo {\n    pub fn get(&self, k: u32) -> u32 { self.map[&k] }\n}\n\
             impl Display for Foo {\n    fn fmt(&self) {}\n}\n",
        );
        let quals: Vec<&str> = items.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["top", "Foo::get", "Foo::fmt"]);
        assert!(items.fns[0].is_pub);
        assert_eq!(
            items.fns[0].types.get("n").map(String::as_str),
            Some("usize")
        );
        assert_eq!(
            items.fns[1].types.get("self").map(String::as_str),
            Some("Foo")
        );
        assert_eq!(items.field_type("Foo", "map"), Some("HashMap<u32, u32>"));
    }

    #[test]
    fn cfg_test_and_test_attr_mark_fns() {
        let items = extract_src(
            "fn real() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n    fn helper() {}\n}\n",
        );
        let by_name = |n: &str| items.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("real").in_test);
        assert!(by_name("t").in_test);
        assert!(by_name("helper").in_test);
    }

    #[test]
    fn let_annotations_are_harvested() {
        let items = extract_src(
            "fn f() {\n    let xs: Vec<f64> = Vec::new();\n    let n = 3;\n    let m: std::collections::HashMap<u32, u32> = Default::default();\n}\n",
        );
        let f = &items.fns[0];
        assert_eq!(f.types.get("xs").map(String::as_str), Some("Vec<f64>"));
        assert!(!f.types.contains_key("n"));
        assert!(f.types.get("m").is_some_and(|t| t.contains("HashMap")));
    }

    #[test]
    fn type_items_record_must_use() {
        let items = extract_src(
            "#[must_use]\npub struct A;\npub struct B { x: u32 }\npub enum E { One, Two }\n",
        );
        let by_name = |n: &str| items.types.iter().find(|t| t.name == n).unwrap();
        assert!(by_name("A").must_use);
        assert!(!by_name("B").must_use);
        assert!(!by_name("E").must_use);
        assert!(by_name("E").is_pub);
    }

    #[test]
    fn generic_fn_params_are_found_past_generics() {
        let items = extract_src("fn g<T: Clone, U>(map: HashSet<T>, n: usize) -> usize { n }\n");
        let f = &items.fns[0];
        assert!(f.types.get("map").is_some_and(|t| t.contains("HashSet")));
        assert_eq!(f.types.get("n").map(String::as_str), Some("usize"));
    }
}
