//! The `lint.toml` allowlist: plain-text, one justified finding per line.
//!
//! Format (pipe-separated, `#` starts a comment line):
//!
//! ```text
//! L001 | crates/model/src/cluster.rs | location map and PM state agree | struct invariant …
//! ```
//!
//! Fields: rule id, file path (suffix match), a substring of the offending
//! source line (robust to line-number drift), and a mandatory one-line
//! reason. An entry suppresses every finding it matches. Entries that
//! match nothing are **errors** (see [`stale`]) so the file cannot
//! accumulate dead exceptions — `--allow-stale` downgrades them to
//! warnings for mid-refactor runs. Duplicate entries are rejected at
//! parse time.

use crate::rules::Finding;

/// One parsed allowlist entry.
#[derive(Debug)]
pub struct Entry {
    /// Rule id the entry applies to (`L001` … `L008`, `D…`, `P…`).
    pub rule: String,
    /// Path suffix the finding's file must match.
    pub file: String,
    /// Substring of the raw source line.
    pub contains: String,
    /// Human justification (mandatory).
    pub reason: String,
    /// 1-based line in lint.toml, for diagnostics.
    pub line: usize,
    /// How many findings this entry suppressed.
    pub hits: usize,
}

/// Parse one `RULE | file | substring | reason` line (`n` is 1-based).
pub fn parse_entry(line: &str, n: usize) -> Result<Entry, String> {
    let parts: Vec<&str> = line.split('|').map(str::trim).collect();
    if parts.len() != 4 {
        return Err(format!(
            "lint.toml:{n}: expected `RULE | file | line-substring | reason`, got {} field(s)",
            parts.len()
        ));
    }
    if parts.iter().any(|p| p.is_empty()) {
        return Err(format!(
            "lint.toml:{n}: all four fields (including the reason) must be non-empty"
        ));
    }
    Ok(Entry {
        rule: parts[0].to_string(),
        file: parts[1].to_string(),
        contains: parts[2].to_string(),
        reason: parts[3].to_string(),
        line: n,
        hits: 0,
    })
}

/// Parse allowlist-only text (entries and comments, no config sections).
#[cfg(test)]
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        entries.push(parse_entry(line, n + 1)?);
    }
    check_duplicates(&entries)?;
    Ok(entries)
}

/// Reject entries whose (rule, file, substring) triple repeats: the
/// second copy can only ever be stale.
pub fn check_duplicates(entries: &[Entry]) -> Result<(), String> {
    for (i, a) in entries.iter().enumerate() {
        for b in &entries[i + 1..] {
            if a.rule == b.rule && a.file == b.file && a.contains == b.contains {
                return Err(format!(
                    "lint.toml:{}: duplicate of entry at line {} ({} | {} | {})",
                    b.line, a.line, a.rule, a.file, a.contains
                ));
            }
        }
    }
    Ok(())
}

/// True (and records the hit) if some entry covers `finding`.
pub fn allows(entries: &mut [Entry], finding: &Finding) -> bool {
    for e in entries.iter_mut() {
        if e.rule == finding.rule
            && finding.rel.ends_with(&e.file)
            && finding.excerpt.contains(&e.contains)
        {
            e.hits += 1;
            return true;
        }
    }
    false
}

/// Entries that suppressed nothing this run — each one is a dead
/// exception and (without `--allow-stale`) an error.
pub fn stale(entries: &[Entry]) -> Vec<&Entry> {
    entries.iter().filter(|e| e.hits == 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, rel: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            rel: rel.to_string(),
            line: 1,
            excerpt: excerpt.to_string(),
            hint: "",
            detail: String::new(),
        }
    }

    #[test]
    fn parses_and_matches() {
        let text =
            "# comment\n\nL001 | crates/model/src/cluster.rs | state agree | struct invariant\n";
        let mut entries = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        let f = finding(
            "L001",
            "crates/model/src/cluster.rs",
            ".expect(\"location map and PM state agree\")",
        );
        assert!(allows(&mut entries, &f));
        assert_eq!(entries[0].hits, 1);
        let other = finding("L002", "crates/model/src/cluster.rs", "state agree");
        assert!(!allows(&mut entries, &other));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("L001 | file | substring\n").is_err());
        assert!(parse("L001 | file | substring | \n").is_err());
    }

    #[test]
    fn used_entries_are_not_stale() {
        let mut entries = parse("L004 | graph.rs | nodes[ix(id)] | audited\n").unwrap();
        let f = finding("L004", "crates/core/src/graph.rs", "&self.nodes[ix(id)]");
        assert!(allows(&mut entries, &f));
        assert!(stale(&entries).is_empty());
    }

    #[test]
    fn unused_entries_are_stale() {
        let mut entries = parse(
            "L004 | graph.rs | nodes[ix(id)] | audited\n\
             L004 | graph.rs | long_gone_line | removed in a refactor\n",
        )
        .unwrap();
        let f = finding("L004", "crates/core/src/graph.rs", "&self.nodes[ix(id)]");
        assert!(allows(&mut entries, &f));
        let dead = stale(&entries);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].contains, "long_gone_line");
        assert_eq!(dead[0].line, 2);
    }

    #[test]
    fn duplicate_entries_are_a_parse_error() {
        let err = parse(
            "L004 | graph.rs | nodes[ix(id)] | audited\n\
             L004 | graph.rs | nodes[ix(id)] | audited again\n",
        )
        .unwrap_err();
        assert!(err.contains("duplicate"), "got: {err}");
        assert!(err.contains("lint.toml:2"), "got: {err}");
    }

    #[test]
    fn same_substring_for_different_rules_is_not_duplicate() {
        let entries = parse(
            "L004 | graph.rs | nodes[ix(id)] | audited indexing\n\
             P001 | graph.rs | nodes[ix(id)] | audited panic surface\n",
        )
        .unwrap();
        assert_eq!(entries.len(), 2);
    }
}
