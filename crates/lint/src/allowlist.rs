//! The `lint.toml` allowlist: plain-text, one justified finding per line.
//!
//! Format (pipe-separated, `#` starts a comment line):
//!
//! ```text
//! L001 | crates/model/src/cluster.rs | location map and PM state agree | struct invariant …
//! ```
//!
//! Fields: rule id, file path (suffix match), a substring of the offending
//! source line (robust to line-number drift), and a mandatory one-line
//! reason. An entry suppresses every finding it matches; unused entries
//! are reported so the file cannot accumulate stale exceptions.

use crate::rules::Finding;

/// One parsed allowlist entry.
#[derive(Debug)]
pub struct Entry {
    /// Rule id the entry applies to (`L001` … `L005`).
    pub rule: String,
    /// Path suffix the finding's file must match.
    pub file: String,
    /// Substring of the raw source line.
    pub contains: String,
    /// Human justification (mandatory).
    pub reason: String,
    /// 1-based line in lint.toml, for diagnostics.
    pub line: usize,
    /// How many findings this entry suppressed.
    pub hits: usize,
}

/// Parse the allowlist text. Returns entries or a parse error message.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('|').map(str::trim).collect();
        if parts.len() != 4 {
            return Err(format!(
                "lint.toml:{}: expected `RULE | file | line-substring | reason`, got {} field(s)",
                n + 1,
                parts.len()
            ));
        }
        if parts.iter().any(|p| p.is_empty()) {
            return Err(format!(
                "lint.toml:{}: all four fields (including the reason) must be non-empty",
                n + 1
            ));
        }
        entries.push(Entry {
            rule: parts[0].to_string(),
            file: parts[1].to_string(),
            contains: parts[2].to_string(),
            reason: parts[3].to_string(),
            line: n + 1,
            hits: 0,
        });
    }
    Ok(entries)
}

/// True (and records the hit) if some entry covers `finding`.
pub fn allows(entries: &mut [Entry], finding: &Finding) -> bool {
    for e in entries.iter_mut() {
        if e.rule == finding.rule
            && finding.rel.ends_with(&e.file)
            && finding.excerpt.contains(&e.contains)
        {
            e.hits += 1;
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, rel: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            rel: rel.to_string(),
            line: 1,
            excerpt: excerpt.to_string(),
            hint: "",
        }
    }

    #[test]
    fn parses_and_matches() {
        let text =
            "# comment\n\nL001 | crates/model/src/cluster.rs | state agree | struct invariant\n";
        let mut entries = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        let f = finding(
            "L001",
            "crates/model/src/cluster.rs",
            ".expect(\"location map and PM state agree\")",
        );
        assert!(allows(&mut entries, &f));
        assert_eq!(entries[0].hits, 1);
        let other = finding("L002", "crates/model/src/cluster.rs", "state agree");
        assert!(!allows(&mut entries, &other));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("L001 | file | substring\n").is_err());
        assert!(parse("L001 | file | substring | \n").is_err());
    }
}
