//! Token trees: the lexer's flat stream grouped by `()`/`[]`/`{}`.
//!
//! Trivia (whitespace, comments) is dropped here — the tree is the
//! *code* view that `items.rs` and the D/P rules walk. Doc comments and
//! exact masking live in `scan.rs`, which works on the raw token
//! stream instead.
//!
//! Angle brackets are **not** delimiters (matching rustc's own token
//! trees): `Vec<f64>` appears as `Vec` `<` `f64` `>` leaves, and
//! consumers track angle depth themselves where it matters.

use crate::lex::{Kind, Token};

/// One node of the token tree.
#[derive(Debug)]
pub enum Tree {
    /// A non-trivia token outside any special handling.
    Leaf(Token),
    /// A delimited group; `open` is `(`, `[` or `{`.
    Group {
        open: char,
        line: usize,
        children: Vec<Tree>,
    },
}

impl Tree {
    /// The 1-based source line this node starts on.
    pub fn line(&self) -> usize {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group { line, .. } => *line,
        }
    }
}

/// Build token trees from a lexed stream, skipping trivia.
///
/// Unbalanced close delimiters are kept as plain leaves rather than
/// failing: the linter must degrade gracefully on any input that
/// compiles (and even on some that don't).
pub fn build(tokens: &[Token]) -> Vec<Tree> {
    let mut iter = tokens
        .iter()
        .filter(|t| !t.kind.is_trivia())
        .cloned()
        .peekable();
    parse_group(&mut iter, None)
}

fn parse_group(
    iter: &mut std::iter::Peekable<impl Iterator<Item = Token>>,
    closing: Option<char>,
) -> Vec<Tree> {
    let mut out = Vec::new();
    while let Some(tok) = iter.peek() {
        if tok.kind == Kind::Punct {
            let c = tok.text.chars().next().unwrap_or('\0');
            if Some(c) == closing {
                iter.next();
                return out;
            }
            if let Some(close) = matching_close(c) {
                let line = tok.line;
                iter.next();
                let children = parse_group(iter, Some(close));
                out.push(Tree::Group {
                    open: c,
                    line,
                    children,
                });
                continue;
            }
        }
        out.push(Tree::Leaf(iter.next().expect("peeked")));
    }
    out
}

fn matching_close(open: char) -> Option<char> {
    match open {
        '(' => Some(')'),
        '[' => Some(']'),
        '{' => Some('}'),
        _ => None,
    }
}

/// Flatten a subtree back into a linear token sequence, materialising
/// group delimiters as `Punct` tokens. This is the form the body
/// scanners in `rules_v2.rs` pattern-match on.
pub fn flatten(trees: &[Tree], out: &mut Vec<Token>) {
    for tree in trees {
        match tree {
            Tree::Leaf(t) => out.push(t.clone()),
            Tree::Group {
                open,
                line,
                children,
            } => {
                out.push(punct(*open, *line));
                flatten(children, out);
                let close = matching_close(*open).unwrap_or(*open);
                let end = children.last().map_or(*line, |c| c.line());
                out.push(punct(close, end));
            }
        }
    }
}

fn punct(c: char, line: usize) -> Token {
    Token {
        kind: Kind::Punct,
        text: c.to_string(),
        line,
    }
}

/// Render a subtree as compact source-ish text (for type annotations,
/// attribute payloads and diagnostics). Tokens are space-separated
/// except around `::`, `<`, `>`, `&` and `#` to keep paths readable.
pub fn to_text(trees: &[Tree]) -> String {
    let mut flat = Vec::new();
    flatten(trees, &mut flat);
    join_tokens(&flat)
}

/// Space-join a token slice, compacting path and generic punctuation.
pub fn join_tokens(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        let glue_left = matches!(t.text.as_str(), ":" | "<" | ">" | ")" | "]" | "}" | ",");
        if !out.is_empty() && !glue_left && !out.ends_with(['<', '&', '#', ':', '(', '[', '{']) {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn tree_of(src: &str) -> Vec<Tree> {
        build(&lex::lex(src))
    }

    #[test]
    fn groups_nest_and_trivia_is_dropped() {
        let t = tree_of("fn f(a: u32) { g([1, 2]); } // trailing\n");
        // fn, f, (…), {…}
        assert_eq!(t.len(), 4);
        let Tree::Group { open, children, .. } = &t[3] else {
            panic!("expected body group");
        };
        assert_eq!(*open, '{');
        // g, (…), ;
        assert_eq!(children.len(), 3);
    }

    #[test]
    fn unbalanced_close_degrades_to_leaf() {
        let t = tree_of("a ) b");
        assert_eq!(t.len(), 3);
        assert!(matches!(&t[1], Tree::Leaf(tok) if tok.text == ")"));
    }

    #[test]
    fn flatten_round_trips_delimiters() {
        let trees = tree_of("f(x[0])");
        let mut flat = Vec::new();
        flatten(&trees, &mut flat);
        let texts: Vec<&str> = flat.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["f", "(", "x", "[", "0", "]", ")"]);
    }

    #[test]
    fn to_text_keeps_paths_compact() {
        let trees = tree_of("std::collections::HashMap<Profile, NodeId>");
        assert_eq!(
            to_text(&trees),
            "std::collections::HashMap<Profile, NodeId>"
        );
    }
}
