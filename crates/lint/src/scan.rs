//! Masked-line view of a source file, built on the lossless lexer.
//!
//! Historically this module was a hand-rolled char state machine; it is
//! now a thin projection of `lex.rs`: comments and literal contents are
//! blanked to spaces (newlines survive, so line structure is exact) and
//! everything else is passed through verbatim. The line-based rules
//! L001–L007 in `rules.rs` pattern-match on the masked text exactly as
//! before — the old path is subsumed, not duplicated.

use crate::lex::{self, Kind, Token};

/// One source line, in raw and code-only (masked) form.
#[derive(Debug)]
pub struct Line {
    /// The original text of the line.
    pub raw: String,
    /// The line with comments removed and string/char literal contents
    /// blanked to spaces (delimiters blanked too).
    pub code: String,
    /// True when the line is a `///` or `//!` doc comment.
    pub is_doc: bool,
    /// True when the line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with forward slashes.
    pub rel: String,
    /// Crate directory name under `crates/` (e.g. `core`, `sim`).
    pub krate: String,
    /// True for binary targets (`src/main.rs`, `src/bin/*`, or any file of
    /// a crate without `src/lib.rs`).
    pub is_bin: bool,
    /// Scanned lines, 0-indexed (line numbers in findings are 1-based).
    pub lines: Vec<Line>,
    /// The lossless token stream the masking was derived from; the
    /// item/call-graph layer builds its trees from this.
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Scan `text` into masked lines plus the underlying token stream.
    pub fn scan(rel: String, krate: String, is_bin: bool, text: &str) -> Self {
        let tokens = lex::lex(text);
        let lines = mask_tokens(text, &tokens);
        SourceFile {
            rel,
            krate,
            is_bin,
            lines,
            tokens,
        }
    }
}

/// Mask `text` into per-line raw/code pairs (token-based).
#[cfg(test)]
pub fn mask(text: &str) -> Vec<Line> {
    let tokens = lex::lex(text);
    mask_tokens(text, &tokens)
}

fn mask_tokens(text: &str, tokens: &[Token]) -> Vec<Line> {
    let mut masked = String::with_capacity(text.len());
    let mut doc_lines = std::collections::BTreeSet::new();
    for t in tokens {
        let blank = t.kind.is_trivia() && t.kind != Kind::Whitespace || t.kind.is_literal_text();
        if blank {
            for c in t.text.chars() {
                masked.push(if c == '\n' { '\n' } else { ' ' });
            }
        } else {
            masked.push_str(&t.text);
        }
        if let Kind::LineComment { doc: true } | Kind::BlockComment { doc: true } = t.kind {
            let span = t.text.matches('\n').count();
            doc_lines.extend(t.line..=t.line + span);
        }
    }

    let mut lines: Vec<Line> = text
        .split('\n')
        .zip(masked.split('\n'))
        .enumerate()
        .map(|(n, (raw, code))| Line {
            raw: raw.to_string(),
            code: code.to_string(),
            is_doc: doc_lines.contains(&(n + 1)),
            in_test: false,
        })
        .collect();
    mark_test_regions(&mut lines);
    lines
}

/// Mark lines covered by a `#[cfg(test)]`-gated item (typically
/// `mod tests { … }`): from the attribute to the matching close brace.
fn mark_test_regions(lines: &mut [Line]) {
    let mut pending = false;
    let mut region_depth: Option<usize> = None;
    let mut depth = 0usize;
    for line in lines.iter_mut() {
        let code = line.code.clone();
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            pending = true;
        }
        if pending || region_depth.is_some() {
            line.in_test = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending {
                        pending = false;
                        region_depth = Some(depth);
                    }
                }
                '}' => {
                    if region_depth == Some(depth) {
                        region_depth = None;
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' if pending && region_depth.is_none() => {
                    // `#[cfg(test)] use …;` — gates a single statement.
                    pending = false;
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        mask(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let c = codes("let x = 1; // unwrap()\nlet y = /* as f64 */ 2;\n");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("let x = 1;"));
        assert!(!c[1].contains("as f64"));
        assert!(c[1].contains("2;"));
    }

    #[test]
    fn strips_string_contents_but_keeps_code() {
        let c = codes("foo(\"x.unwrap()\"); bar.unwrap();\n");
        assert_eq!(c[0].matches(".unwrap()").count(), 1);
        assert!(c[0].contains("bar.unwrap();"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let c = codes("let s = r#\"as u64 \"quoted\"\"#; s.expect(\"\\\" as f64\");\n");
        assert!(!c[0].contains("as u64"));
        assert!(!c[0].contains("as f64"));
        assert!(c[0].contains(".expect("));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = codes("fn f<'a>(x: &'a str) -> char { 'x' }\nlet y = x[0];\n");
        assert!(c[0].contains("fn f<'a>(x: &'a str)"));
        assert!(!c[0].contains("'x'"));
        assert!(c[1].contains("x[0]"));
    }

    #[test]
    fn nested_block_comments() {
        let c = codes("a /* outer /* inner */ still */ b.unwrap()\n");
        assert!(c[0].contains("b.unwrap()"));
        assert!(!c[0].contains("still"));
    }

    #[test]
    fn multiline_strings_keep_line_structure() {
        let c = codes("let s = \"first\nsecond\"; done();\n");
        assert_eq!(c.len(), 3);
        assert!(!c[0].contains("first"));
        assert!(!c[1].contains("second"));
        assert!(c[1].contains("done();"));
    }

    #[test]
    fn doc_lines_flagged() {
        let lines = mask("/// # Panics\n//// separator\nfn f() {}\n");
        assert!(lines[0].is_doc);
        assert!(!lines[1].is_doc);
        assert!(!lines[2].is_doc);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let lines = mask(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_statement_does_not_swallow_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn c() { z.unwrap(); }\n";
        let lines = mask(src);
        assert!(!lines[2].in_test);
    }
}
