//! Source masking: strip comments and literal contents while preserving
//! line structure, and mark `#[cfg(test)]`-gated regions.
//!
//! The scanner is deliberately lexical, not a full parser: it tracks just
//! enough state (strings, raw strings, char literals vs. lifetimes, nested
//! block comments, line/doc comments) to let the rules in `rules.rs`
//! pattern-match on *code* without tripping over comment or string text.
//! It assumes rustfmt-canonical input, which CI enforces.

/// One source line, in raw and code-only (masked) form.
#[derive(Debug)]
pub struct Line {
    /// The original text of the line.
    pub raw: String,
    /// The line with comments removed and string/char literal contents
    /// blanked to spaces (delimiters blanked too).
    pub code: String,
    /// True when the line is a `///` or `//!` doc comment.
    pub is_doc: bool,
    /// True when the line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with forward slashes.
    pub rel: String,
    /// True for binary targets (`src/main.rs`, `src/bin/*`, or any file of
    /// a crate without `src/lib.rs`).
    pub is_bin: bool,
    /// Scanned lines, 0-indexed (line numbers in findings are 1-based).
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment { doc: bool },
    BlockComment { depth: usize },
    Str,
    RawStr { hashes: usize },
    CharLit,
}

/// Mask `text` into per-line raw/code pairs.
pub fn mask(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut masked = String::with_capacity(text.len());
    let mut doc_starts: Vec<usize> = Vec::new(); // offsets (in chars) where a doc comment begins
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            // Newlines always survive masking; line comments end here.
            if matches!(state, State::LineComment { .. }) {
                state = State::Code;
            }
            masked.push('\n');
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    let third = chars.get(i + 2).copied();
                    // `////...` separators are plain comments, not docs.
                    let doc = (third == Some('/') && chars.get(i + 3).copied() != Some('/'))
                        || third == Some('!');
                    if doc {
                        doc_starts.push(i);
                    }
                    state = State::LineComment { doc };
                    masked.push(' ');
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: 1 };
                    masked.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '"' {
                    state = State::Str;
                    masked.push(' ');
                } else if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
                    let (hashes, consumed) = raw_string_open(&chars, i);
                    state = State::RawStr { hashes };
                    for _ in 0..consumed {
                        masked.push(' ');
                    }
                    i += consumed;
                    continue;
                } else if c == 'b' && next == Some('"') {
                    state = State::Str;
                    masked.push_str("  ");
                    i += 2;
                    continue;
                } else if c == 'b' && next == Some('\'') {
                    state = State::CharLit;
                    masked.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '\'' {
                    if char_literal_starts(&chars, i) {
                        state = State::CharLit;
                        masked.push(' ');
                    } else {
                        // Lifetime: keep the tick, the ident that follows is code.
                        masked.push('\'');
                    }
                } else {
                    masked.push(c);
                }
            }
            State::LineComment { .. } => masked.push(' '),
            State::BlockComment { depth } => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    masked.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: depth + 1 };
                    masked.push_str("  ");
                    i += 2;
                    continue;
                }
                masked.push(' ');
            }
            State::Str => {
                if c == '\\' {
                    masked.push_str("  ");
                    i += 2;
                    // An escaped newline keeps the string open; keep structure.
                    if next == Some('\n') {
                        masked.pop();
                        masked.push('\n');
                    }
                    continue;
                }
                if c == '"' {
                    state = State::Code;
                }
                masked.push(' ');
            }
            State::RawStr { hashes } => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    for _ in 0..=hashes {
                        masked.push(' ');
                    }
                    i += 1 + hashes;
                    state = State::Code;
                    continue;
                }
                masked.push(' ');
            }
            State::CharLit => {
                if c == '\\' {
                    masked.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    state = State::Code;
                }
                masked.push(' ');
            }
        }
        i += 1;
    }

    let doc_lines: std::collections::HashSet<usize> = {
        let mut line_of = Vec::new();
        let mut line = 0usize;
        for &ch in &chars {
            line_of.push(line);
            if ch == '\n' {
                line += 1;
            }
        }
        doc_starts.iter().map(|&off| line_of[off]).collect()
    };

    let mut lines: Vec<Line> = text
        .split('\n')
        .zip(masked.split('\n'))
        .enumerate()
        .map(|(n, (raw, code))| Line {
            raw: raw.to_string(),
            code: code.to_string(),
            is_doc: doc_lines.contains(&n),
            in_test: false,
        })
        .collect();
    mark_test_regions(&mut lines);
    lines
}

/// `r"`, `r#"`, `br"`, `br#"` … raw string openers.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j).copied() != Some('r') {
        return false;
    }
    // `r` must not be the tail of an identifier (`var"` is not valid Rust,
    // but `for r in` must not trigger either — the quote check handles it).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    j += 1;
    while chars.get(j).copied() == Some('#') {
        j += 1;
    }
    chars.get(j).copied() == Some('"')
}

/// Length of the raw-string opener (`r##"` → 4) and its hash count.
fn raw_string_open(chars: &[char], i: usize) -> (usize, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while chars.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j + 1 - i) // include the opening quote
}

fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k).copied() == Some('#'))
}

/// `'a'` and `'\n'` are char literals; `'a` (in `<'a>`) is a lifetime.
fn char_literal_starts(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1).copied() {
        Some('\\') => true,
        Some(_) => chars.get(i + 2).copied() == Some('\''),
        None => false,
    }
}

/// Mark lines covered by a `#[cfg(test)]`-gated item (typically
/// `mod tests { … }`): from the attribute to the matching close brace.
fn mark_test_regions(lines: &mut [Line]) {
    let mut pending = false;
    let mut region_depth: Option<usize> = None;
    let mut depth = 0usize;
    for line in lines.iter_mut() {
        let code = line.code.clone();
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            pending = true;
        }
        if pending || region_depth.is_some() {
            line.in_test = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending {
                        pending = false;
                        region_depth = Some(depth);
                    }
                }
                '}' => {
                    if region_depth == Some(depth) {
                        region_depth = None;
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' if pending && region_depth.is_none() => {
                    // `#[cfg(test)] use …;` — gates a single statement.
                    pending = false;
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        mask(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let c = codes("let x = 1; // unwrap()\nlet y = /* as f64 */ 2;\n");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("let x = 1;"));
        assert!(!c[1].contains("as f64"));
        assert!(c[1].contains("2;"));
    }

    #[test]
    fn strips_string_contents_but_keeps_code() {
        let c = codes("foo(\"x.unwrap()\"); bar.unwrap();\n");
        assert_eq!(c[0].matches(".unwrap()").count(), 1);
        assert!(c[0].contains("bar.unwrap();"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let c = codes("let s = r#\"as u64 \"quoted\"\"#; s.expect(\"\\\" as f64\");\n");
        assert!(!c[0].contains("as u64"));
        assert!(!c[0].contains("as f64"));
        assert!(c[0].contains(".expect("));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = codes("fn f<'a>(x: &'a str) -> char { 'x' }\nlet y = x[0];\n");
        assert!(c[0].contains("fn f<'a>(x: &'a str)"));
        assert!(!c[0].contains("'x'"));
        assert!(c[1].contains("x[0]"));
    }

    #[test]
    fn nested_block_comments() {
        let c = codes("a /* outer /* inner */ still */ b.unwrap()\n");
        assert!(c[0].contains("b.unwrap()"));
        assert!(!c[0].contains("still"));
    }

    #[test]
    fn doc_lines_flagged() {
        let lines = mask("/// # Panics\n//// separator\nfn f() {}\n");
        assert!(lines[0].is_doc);
        assert!(!lines[1].is_doc);
        assert!(!lines[2].is_doc);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let lines = mask(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_statement_does_not_swallow_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn c() { z.unwrap(); }\n";
        let lines = mask(src);
        assert!(!lines[2].in_test);
    }
}
