//! Same-crate, name-based call graph over the extracted items.
//!
//! Resolution is deliberately over-approximate: a call site `foo(…)`
//! links to *every* same-crate `fn foo` unless a module/impl path
//! disambiguates it (`Type::foo(…)` prefers `Type::foo`; among bare
//! candidates, same-file ones win). Reachability-scoped rules (D001,
//! D003, P001) treat extra edges as extra scrutiny, so this errs on
//! the side of flagging — never on the side of silence. Cross-crate
//! calls are not resolved; each crate's public surface is rooted
//! separately instead.

use crate::items::Items;
use crate::lex::{Kind, Token};
use std::collections::BTreeMap;

/// Adjacency over `Items::fns` indices.
#[derive(Debug)]
pub struct CallGraph {
    edges: Vec<Vec<usize>>,
}

/// Keywords that look like calls when followed by `(`.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "else", "let", "fn",
    "Some", "Ok", "Err", "None",
];

impl CallGraph {
    /// Build the graph from every fn body in `items`.
    pub fn build(items: &Items) -> CallGraph {
        // Same-crate indices: bare name → fn ids, qualified name → fn ids.
        let mut by_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, f) in items.fns.iter().enumerate() {
            by_name.entry((&f.krate, &f.name)).or_default().push(id);
            by_qual.entry((&f.krate, &f.qual)).or_default().push(id);
        }

        let mut edges = vec![Vec::new(); items.fns.len()];
        for (id, f) in items.fns.iter().enumerate() {
            let mut callees = Vec::new();
            for site in call_sites(&f.body) {
                // `Type::name(…)`: exact qualified match wins outright.
                if let Some(q) = &site.qual {
                    if let Some(ids) = by_qual.get(&(f.krate.as_str(), q.as_str())) {
                        callees.extend_from_slice(ids);
                        continue;
                    }
                }
                let Some(cands) = by_name.get(&(f.krate.as_str(), site.name.as_str())) else {
                    continue;
                };
                // Module-path disambiguation: same-file candidates win.
                let same_file: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| items.fns[c].rel == f.rel)
                    .collect();
                if same_file.is_empty() {
                    callees.extend_from_slice(cands);
                } else {
                    callees.extend_from_slice(&same_file);
                }
            }
            callees.sort_unstable();
            callees.dedup();
            edges[id] = callees;
        }
        CallGraph { edges }
    }

    /// Direct callees of `id`.
    #[cfg(test)]
    pub fn callees(&self, id: usize) -> &[usize] {
        &self.edges[id]
    }

    /// BFS from `roots`; returns, per fn, the id of its BFS parent
    /// (`Some(parent)` when reached through a call, `None` when
    /// unreached or itself a root). Query membership with
    /// [`Reach::contains`] and render witnesses with [`Reach::chain`].
    pub fn reach(&self, roots: &[usize]) -> Reach {
        let n = self.edges.len();
        let mut reached = vec![false; n];
        let mut parent = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if !reached[r] {
                reached[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &c in &self.edges[f] {
                if !reached[c] {
                    reached[c] = true;
                    parent[c] = f;
                    queue.push_back(c);
                }
            }
        }
        Reach { reached, parent }
    }
}

/// Result of a reachability sweep.
#[derive(Debug)]
pub struct Reach {
    reached: Vec<bool>,
    parent: Vec<usize>,
}

impl Reach {
    pub fn contains(&self, id: usize) -> bool {
        self.reached[id]
    }

    /// Render `root → … → target` using each fn's qualified name.
    pub fn chain(&self, items: &Items, target: usize) -> String {
        let mut path = vec![target];
        let mut cur = target;
        while self.parent[cur] != usize::MAX {
            cur = self.parent[cur];
            path.push(cur);
            if path.len() > 64 {
                break; // cycles cannot happen (BFS tree), but stay safe
            }
        }
        path.reverse();
        path.iter()
            .map(|&id| items.fns[id].qual.as_str())
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

/// One syntactic call site in a flattened fn body.
#[derive(Debug)]
pub struct CallSite {
    /// Bare callee name.
    pub name: String,
    /// `Type::name` when path-qualified.
    pub qual: Option<String>,
}

/// Extract call sites: `name(…)`, `path::name(…)`, `.name(…)`.
/// Macros (`name!(…)`) are excluded — panic macros are handled as
/// constructs, not calls.
pub fn call_sites(body: &[Token]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        let t = &body[i];
        if t.kind != Kind::Ident || NON_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        // A call is `ident(` — macros (`ident!(`) fail this because the
        // `!` sits between the name and the parenthesis.
        if !body.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let qual = if i >= 3
            && body[i - 1].is_punct(':')
            && body[i - 2].is_punct(':')
            && body[i - 3].kind == Kind::Ident
        {
            Some(format!("{}::{}", body[i - 3].text, t.text))
        } else {
            None
        };
        out.push(CallSite {
            name: t.text.clone(),
            qual,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::scan::SourceFile;

    fn graph_of(src: &str) -> (Items, CallGraph) {
        let file = SourceFile::scan("crates/x/src/lib.rs".into(), "x".into(), false, src);
        let items = items::extract(&[file]);
        let graph = CallGraph::build(&items);
        (items, graph)
    }

    fn id_of(items: &Items, qual: &str) -> usize {
        items.fns.iter().position(|f| f.qual == qual).unwrap()
    }

    #[test]
    fn direct_and_method_calls_resolve() {
        let (items, graph) = graph_of(
            "pub fn entry() { helper(); Foo::make(); }\n\
             fn helper() {}\n\
             struct Foo;\n\
             impl Foo {\n    fn make() -> Foo { Foo }\n}\n",
        );
        let entry = id_of(&items, "entry");
        let callees: Vec<&str> = graph
            .callees(entry)
            .iter()
            .map(|&c| items.fns[c].qual.as_str())
            .collect();
        assert_eq!(callees, vec!["helper", "Foo::make"]);
    }

    #[test]
    fn macros_are_not_calls() {
        let (items, graph) = graph_of("pub fn f() { panic!(\"boom\"); }\nfn panic_helper() {}\n");
        assert!(graph.callees(id_of(&items, "f")).is_empty());
    }

    #[test]
    fn qualified_match_beats_bare_name() {
        let (items, graph) = graph_of(
            "pub fn f() { A::run(); }\n\
             struct A;\nstruct B;\n\
             impl A {\n    fn run() {}\n}\n\
             impl B {\n    fn run() {}\n}\n",
        );
        let callees = graph.callees(id_of(&items, "f"));
        assert_eq!(callees.len(), 1);
        assert_eq!(items.fns[callees[0]].qual, "A::run");
    }

    #[test]
    fn reachability_and_chain() {
        let (items, graph) =
            graph_of("pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn unrelated() {}\n");
        let a = id_of(&items, "a");
        let c = id_of(&items, "c");
        let reach = graph.reach(&[a]);
        assert!(reach.contains(c));
        assert!(!reach.contains(id_of(&items, "unrelated")));
        assert_eq!(reach.chain(&items, c), "a → b → c");
    }
}
