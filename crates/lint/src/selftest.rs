//! `--self-test`: prove the engine still catches seeded violations.
//!
//! Writes a synthetic workspace into a temp directory with exactly one
//! deliberate violation per rule (L001–L008, D001–D004, P001), runs the
//! full lint pipeline on it with an empty allowlist, and fails unless
//! *every* rule fires. This is the acceptance check that a refactor of
//! the lexer/call-graph stack cannot silently lobotomise a rule: CI
//! runs it next to the clean-tree check, so "zero findings" always
//! means "zero findings from a detector that demonstrably detects".

use std::path::{Path, PathBuf};

/// Rule ids the seeded tree must trigger.
const EXPECTED: &[&str] = &[
    "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "D001", "D002", "D003", "D004",
    "P001",
];

const SELFTEST_TOML: &str = "\
[rule.D001]
roots = pagerank
crates = core

[rule.D002]
exempt_crates = obs, bench, testbed, solver, cli, lint

[rule.D003]
roots = pagerank
crates = core

[rule.D004]
home_crate = par
exempt_crates = bench, cli, testbed, lint

[rule.P001]
root_crates = core, sim

[rule.L008]
types = ScoreBook
";

/// Hot-path file seeding L001/L002/L004/L005/L007 and D001/D003/P001.
const CORE_PAGERANK: &str = r#"//! Seeded violations: every line here is a deliberate lint target.
use std::collections::HashMap;

/// Undocumented panic paths; deliberately lacks the panic doc section.
pub fn pagerank(map: &HashMap<u64, f64>, xs: &[f64], v: &[u64], i: usize) -> f64 {
    let mut acc = 0.0;
    for (_k, val) in map.iter() {
        acc += val;
    }
    let partial: f64 = xs.iter().sum::<f64>();
    let picked = v[i];
    let opt: Option<u64> = v.first().copied();
    let forced = opt.unwrap();
    let a = acc + partial;
    let b = a * 2.0;
    let c = b - 1.0;
    let d = c.max(0.0);
    let e = d.min(1.0e9);
    let f = e + 0.5;
    let g = f * f;
    let h = g.sqrt();
    h + picked as f64 + forced as f64
}
"#;

const CORE_LIB: &str = "\
pub mod pagerank;

pub struct ScoreBook {
    pub scores: Vec<f64>,
}
";

/// Sim crate seeding D002, D004 and L003.
const SIM_LIB: &str = "\
pub fn simulate(pool: &Pool, m: Mhz) -> f64 {
    let started = std::time::Instant::now();
    let wide = pool.threads() > 1;
    let raw = m.get() as f64;
    drop((started, wide));
    raw
}
";

/// Testbed crate seeding L006.
const TESTBED_LIB: &str = "\
use crossbeam::channel::Receiver;

pub fn pump(rx: &Receiver<u32>) {
    let _ = rx.recv();
}
";

/// Run the self-test; `Ok(())` when every expected rule fired.
pub fn run() -> Result<(), String> {
    let root = std::env::temp_dir().join(format!("prvm-lint-selftest-{}", std::process::id()));
    let result = seeded_run(&root);
    let _ = std::fs::remove_dir_all(&root); // best-effort cleanup
    let fired = result?;
    let missing: Vec<&str> = EXPECTED
        .iter()
        .copied()
        .filter(|r| !fired.iter().any(|f| f == r))
        .collect();
    if missing.is_empty() {
        println!(
            "prvm-lint: self-test ok — all {} rules fired on the seeded tree",
            EXPECTED.len()
        );
        Ok(())
    } else {
        Err(format!(
            "self-test FAILED: seeded violations for {} went undetected (fired: {})",
            missing.join(", "),
            fired.join(", ")
        ))
    }
}

/// Write the seeded tree and lint it; returns the fired rule ids.
fn seeded_run(root: &Path) -> Result<Vec<String>, String> {
    write(root, "lint.toml", SELFTEST_TOML)?;
    write(root, "crates/core/src/lib.rs", CORE_LIB)?;
    write(root, "crates/core/src/pagerank.rs", CORE_PAGERANK)?;
    write(root, "crates/sim/src/lib.rs", SIM_LIB)?;
    write(root, "crates/testbed/src/lib.rs", TESTBED_LIB)?;
    let report = crate::run_lint(root, &root.join("lint.toml"))?;
    let mut fired: Vec<String> = report.findings.iter().map(|f| f.rule.to_string()).collect();
    fired.sort();
    fired.dedup();
    Ok(fired)
}

fn write(root: &Path, rel: &str, text: &str) -> Result<(), String> {
    let path: PathBuf = root.join(rel);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_tree_trips_every_rule() {
        let root =
            std::env::temp_dir().join(format!("prvm-lint-selftest-unit-{}", std::process::id()));
        let result = seeded_run(&root);
        let _ = std::fs::remove_dir_all(&root);
        let fired = result.expect("seeded run");
        for rule in EXPECTED {
            assert!(
                fired.iter().any(|f| f == rule),
                "{rule} did not fire; fired: {fired:?}"
            );
        }
    }
}
