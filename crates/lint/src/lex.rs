//! A dependency-free, lossless Rust lexer.
//!
//! The one invariant everything downstream builds on: concatenating the
//! `text` of every token reproduces the input byte-for-byte. Masking
//! (`scan.rs`), token trees (`tokens.rs`) and item extraction
//! (`items.rs`) are all views over this stream, so a lexer bug shows up
//! as a reassembly mismatch rather than a silently wrong rule.
//!
//! The lexer is deliberately coarse where coarseness is harmless: it
//! does not validate numeric literals or distinguish keywords from
//! identifiers (rules match on token text). It is exact where the old
//! char-state-machine in `scan.rs` historically had to be careful:
//! nested block comments, raw strings with arbitrary `#` counts, byte
//! strings/chars, raw identifiers, and the lifetime-vs-char-literal
//! ambiguity.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A run of whitespace (may span newlines).
    Whitespace,
    /// `// …` (`doc` when `///` or `//!`, but not `////`).
    LineComment { doc: bool },
    /// `/* … */`, nesting tracked (`doc` when `/**` or `/*!`).
    BlockComment { doc: bool },
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// `'a`, `'static`, loop labels — a tick followed by an identifier
    /// with no closing tick.
    Lifetime,
    /// `"…"` or `b"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##` — any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    CharLit,
    /// Numeric literal, including `0x…`, suffixes, and exponents.
    Number,
    /// A single punctuation character.
    Punct,
}

impl Kind {
    /// Tokens that carry no code: comments and whitespace.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            Kind::Whitespace | Kind::LineComment { .. } | Kind::BlockComment { .. }
        )
    }

    /// Literal tokens whose *contents* must never be pattern-matched as
    /// code (the classic masking bugs).
    pub fn is_literal_text(self) -> bool {
        matches!(self, Kind::Str | Kind::RawStr | Kind::CharLit)
    }
}

/// One lexed token: its kind, exact source text, and 1-based start line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: usize,
}

impl Token {
    /// Single-character punctuation test.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Identifier-with-exact-text test.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }
}

/// Lex `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.chars.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            let text: String = self.chars[start..self.pos].iter().collect();
            self.line += text.matches('\n').count();
            self.out.push(Token { kind, text, line });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self, n: usize) {
        // Clamped: an escape at EOF (`"…\` ) asks to skip past the end.
        self.pos = (self.pos + n).min(self.chars.len());
    }

    /// Consume one token's worth of characters, returning its kind.
    fn next_kind(&mut self) -> Kind {
        let c = self.peek(0).expect("next_kind called at EOF");
        if c.is_whitespace() {
            while self.peek(0).is_some_and(char::is_whitespace) {
                self.bump(1);
            }
            return Kind::Whitespace;
        }
        if c == '/' && self.peek(1) == Some('/') {
            return self.line_comment();
        }
        if c == '/' && self.peek(1) == Some('*') {
            return self.block_comment();
        }
        if c == 'b' || c == 'r' {
            if let Some(kind) = self.byte_or_raw_prefix() {
                return kind;
            }
        }
        if c == '"' {
            return self.string(1);
        }
        if c == '\'' {
            return self.tick(0);
        }
        if is_ident_start(c) {
            self.bump(1);
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump(1);
            }
            return Kind::Ident;
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        self.bump(1);
        Kind::Punct
    }

    fn line_comment(&mut self) -> Kind {
        // `///` and `//!` are docs; `////…` separators are not.
        let doc =
            (self.peek(2) == Some('/') && self.peek(3) != Some('/')) || self.peek(2) == Some('!');
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.bump(1);
        }
        Kind::LineComment { doc }
    }

    fn block_comment(&mut self) -> Kind {
        let doc =
            (self.peek(2) == Some('*') && self.peek(3) != Some('*')) || self.peek(2) == Some('!');
        self.bump(2);
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump(2);
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump(2);
                }
                (Some(_), _) => self.bump(1),
                (None, _) => break, // unterminated: swallow to EOF, stay lossless
            }
        }
        Kind::BlockComment { doc }
    }

    /// Disambiguate the `b`/`r` prefixes: `b"…"`, `b'…'`, `r"…"`,
    /// `br#"…"#`, raw identifiers `r#ident`. Returns `None` when the
    /// char is just the start of an ordinary identifier.
    fn byte_or_raw_prefix(&mut self) -> Option<Kind> {
        // Never a prefix when glued to a preceding identifier character
        // (`for r in`, `var"` — the lexer only reaches here at a token
        // boundary, so this cannot happen; kept for clarity).
        let c = self.peek(0)?;
        if c == 'b' {
            match self.peek(1) {
                Some('\'') => {
                    self.bump(1);
                    return Some(self.tick(0));
                }
                Some('"') => return Some(self.string(2)),
                Some('r') => {}
                _ => return None,
            }
        }
        // At `r` now: either bare (`r…`) or after `b` (`br…`).
        let r_at = usize::from(c == 'b');
        if self.peek(r_at) != Some('r') {
            return None;
        }
        let mut hashes = 0usize;
        let mut k = r_at + 1;
        while self.peek(k) == Some('#') {
            hashes += 1;
            k += 1;
        }
        if self.peek(k) == Some('"') {
            return Some(self.raw_string(k + 1, hashes));
        }
        // `r#ident` raw identifier (only the bare-`r` form exists).
        if c == 'r' && hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
            self.bump(2);
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump(1);
            }
            return Some(Kind::Ident);
        }
        None
    }

    /// Consume a `"…"` string whose opener (prefix + quote) is `open`
    /// characters long.
    fn string(&mut self, open: usize) -> Kind {
        self.bump(open);
        loop {
            match self.peek(0) {
                Some('\\') => self.bump(2),
                Some('"') => {
                    self.bump(1);
                    break;
                }
                Some(_) => self.bump(1),
                None => break, // unterminated
            }
        }
        Kind::Str
    }

    /// Consume a raw string whose opener is `open` chars (`r##"` → 4),
    /// closed by `"` followed by `hashes` hash marks.
    fn raw_string(&mut self, open: usize, hashes: usize) -> Kind {
        self.bump(open);
        loop {
            match self.peek(0) {
                Some('"') if (1..=hashes).all(|k| self.peek(k) == Some('#')) => {
                    self.bump(1 + hashes);
                    break;
                }
                Some(_) => self.bump(1),
                None => break,
            }
        }
        Kind::RawStr
    }

    /// At a tick (with `prefix` chars of `b` already pending): char
    /// literal or lifetime?
    fn tick(&mut self, prefix: usize) -> Kind {
        // `'\…'` is always a char literal; `'x'` needs the closing tick;
        // anything else (`'a`, `'static`, `'outer:`) is a lifetime.
        let char_lit = match self.peek(prefix + 1) {
            Some('\\') => true,
            Some(_) => self.peek(prefix + 2) == Some('\''),
            None => false,
        };
        if !char_lit {
            self.bump(prefix + 1);
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump(1);
            }
            return Kind::Lifetime;
        }
        self.bump(prefix + 1);
        loop {
            match self.peek(0) {
                Some('\\') => self.bump(2),
                Some('\'') => {
                    self.bump(1);
                    break;
                }
                Some(_) => self.bump(1),
                None => break,
            }
        }
        Kind::CharLit
    }

    fn number(&mut self) -> Kind {
        // Integer part (covers 0x/0b/0o digits, `_`, and type suffixes).
        self.consume_number_body();
        // Fraction: `.` followed by a digit (so `0..5` and `1.max(2)`
        // stay untouched).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump(1);
            self.consume_number_body();
        }
        Kind::Number
    }

    /// Digits, underscores, alphanumerics (hex digits, suffixes,
    /// exponent letters) plus a sign directly after `e`/`E`.
    fn consume_number_body(&mut self) {
        let mut prev = '\0';
        while let Some(c) = self.peek(0) {
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                || ((c == '+' || c == '-') && (prev == 'e' || prev == 'E'));
            if !take {
                break;
            }
            prev = c;
            self.bump(1);
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reassemble(src: &str) -> String {
        lex(src).iter().map(|t| t.text.as_str()).collect()
    }

    fn kinds(src: &str) -> Vec<Kind> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != Kind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn reassembly_is_lossless_on_tricky_inputs() {
        for src in [
            "fn main() { let x = 1; }\n",
            "let s = r#\"raw \"quoted\" text\"#;\n",
            "let b = br##\"double # hash\"##;\n",
            "/* outer /* inner */ still comment */ code()\n",
            "let c = 'x'; let lt: &'static str = \"\"; 'outer: loop {}\n",
            "let e = \"esc\\\"aped\\n\"; let byte = b'\\0';\n",
            "let r#match = 1; let n = 0x_FF_u32 + 1.5e-3 + 2.0f64;\n",
            "// line\n/// doc\n//// separator\n//! inner\n",
            "\"unterminated\nstring",
        ] {
            assert_eq!(reassemble(src), src, "lossless on {src:?}");
        }
    }

    #[test]
    fn raw_strings_lex_as_one_token() {
        let toks = lex("r#\"as u64 \"inner\"\"#");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, Kind::RawStr);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        assert_eq!(
            kinds("fn f<'a>(x: &'a str) -> char { 'x' }"),
            vec![
                Kind::Ident, // fn
                Kind::Ident, // f
                Kind::Punct, // <
                Kind::Lifetime,
                Kind::Punct, // >
                Kind::Punct, // (
                Kind::Ident, // x
                Kind::Punct, // :
                Kind::Punct, // &
                Kind::Lifetime,
                Kind::Ident, // str
                Kind::Punct, // )
                Kind::Punct, // -
                Kind::Punct, // >
                Kind::Ident, // char
                Kind::Punct, // {
                Kind::CharLit,
                Kind::Punct, // }
            ]
        );
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let toks = lex("/* a /* b */ c */ ident");
        assert_eq!(toks[0].kind, Kind::BlockComment { doc: false });
        assert!(toks[0].text.ends_with("c */"));
        assert!(toks.iter().any(|t| t.is_ident("ident")));
    }

    #[test]
    fn doc_comment_classification() {
        assert_eq!(kinds("/// doc"), vec![Kind::LineComment { doc: true }]);
        assert_eq!(kinds("//! doc"), vec![Kind::LineComment { doc: true }]);
        assert_eq!(kinds("//// sep"), vec![Kind::LineComment { doc: false }]);
        assert_eq!(kinds("// plain"), vec![Kind::LineComment { doc: false }]);
        assert_eq!(kinds("/** doc */"), vec![Kind::BlockComment { doc: true }]);
        assert_eq!(kinds("/* no */"), vec![Kind::BlockComment { doc: false }]);
    }

    #[test]
    fn byte_literals_and_raw_identifiers() {
        assert_eq!(kinds("b\"bytes\""), vec![Kind::Str]);
        assert_eq!(kinds("b'x'"), vec![Kind::CharLit]);
        assert_eq!(kinds("r#fn"), vec![Kind::Ident]);
        // A bare `b` or `r` identifier must not be eaten as a prefix.
        assert_eq!(
            kinds("for r in b {}"),
            vec![
                Kind::Ident,
                Kind::Ident,
                Kind::Ident,
                Kind::Ident,
                Kind::Punct,
                Kind::Punct,
            ]
        );
    }

    #[test]
    fn line_numbers_are_one_based_start_lines() {
        let toks = lex("a\nbb\n\ncc");
        let lines: Vec<(String, usize)> = toks
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| (t.text.clone(), t.line))
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("bb".into(), 2), ("cc".into(), 4)]
        );
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        assert_eq!(kinds("1.5e-3"), vec![Kind::Number]);
        // `0..5` must split into number, punct, punct, number.
        assert_eq!(
            kinds("0..5"),
            vec![Kind::Number, Kind::Punct, Kind::Punct, Kind::Number]
        );
        // `1.max(2)` keeps the method call intact.
        assert_eq!(
            kinds("1.max(2)"),
            vec![
                Kind::Number,
                Kind::Punct,
                Kind::Ident,
                Kind::Punct,
                Kind::Number,
                Kind::Punct
            ]
        );
    }
}
