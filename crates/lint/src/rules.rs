//! The project-specific lint rules L001–L007.
//!
//! Each rule operates on the masked lines produced by `scan.rs`, so string
//! and comment text never triggers findings. Rules are scoped by crate and
//! file as documented in DESIGN.md §8:
//!
//! * **L001** — no `unwrap()` / `expect()` outside tests and binary targets.
//! * **L002** — no lossy `as` numeric casts in `core` / `model`
//!   (`crates/model/src/units.rs` is the sanctioned conversion layer and
//!   is exempt).
//! * **L003** — no raw `f64` resource arithmetic in `core` / `sim` that
//!   bypasses the `units.rs` newtypes.
//! * **L004** — no unchecked slice indexing in the hot paths
//!   (`graph.rs`, `pagerank.rs`, `placer.rs`).
//! * **L005** — every `pub fn` in `core` that can panic documents a
//!   `# Panics` section.
//! * **L006** — in files that use `crossbeam::channel`, no bare blocking
//!   `.recv()` and no panicking `.send(…).unwrap()` outside tests: a
//!   peer's death must surface as a typed error, not a hang or a panic
//!   (DESIGN.md §9).
//! * **L007** — non-trivial `pub fn`s on the hot paths (`graph.rs`,
//!   `pagerank.rs`, `placer.rs`) must open a profiling span
//!   (`Span::enter` / `Span::timed`) so `--trace` timelines and phase
//!   histograms cover them (DESIGN.md §11); trivial accessors are
//!   exempt by size, deliberately span-free helpers via lint.toml.

use crate::scan::SourceFile;

/// A single lint finding.
#[derive(Debug)]
pub struct Finding {
    /// Rule identifier, e.g. `"L001"`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line number.
    pub line: usize,
    /// The raw source line (trimmed), for allowlist matching and display.
    pub excerpt: String,
    /// Actionable fix hint.
    pub hint: &'static str,
    /// Rule-specific context, e.g. the offending call chain for P001.
    /// Empty for the line-local rules.
    pub detail: String,
}

const NUMERIC_TYPES: [&str; 15] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "NodeId",
];

const PANIC_TOKENS: [&str; 9] = [
    "panic!",
    ".unwrap()",
    ".expect(",
    "assert!",
    "assert_eq!",
    "assert_ne!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

/// Run every rule against `file`, appending findings to `out`.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    l001_no_unwrap(file, out);
    l002_no_lossy_cast(file, out);
    l003_no_raw_resource_math(file, out);
    l004_no_unchecked_index(file, out);
    l005_panics_documented(file, out);
    l006_no_bare_channel_ops(file, out);
    l007_hot_paths_open_spans(file, out);
}

/// Files on the placement hot path, shared by L004 and L007.
const HOT_FILES: [&str; 3] = [
    "core/src/graph.rs",
    "core/src/pagerank.rs",
    "core/src/placer.rs",
];

/// Body lines (non-blank, masked) above which a hot-path `pub fn` is no
/// longer a trivial accessor and L007 requires a span.
const L007_TRIVIAL_LINES: usize = 12;

fn push(
    out: &mut Vec<Finding>,
    file: &SourceFile,
    n: usize,
    rule: &'static str,
    hint: &'static str,
) {
    out.push(Finding {
        rule,
        rel: file.rel.clone(),
        line: n + 1,
        excerpt: file.lines[n].raw.trim().to_string(),
        hint,
        detail: String::new(),
    });
}

/// L001: `unwrap()` / `expect()` are reserved for tests and binaries.
fn l001_no_unwrap(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.is_bin {
        return;
    }
    for (n, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if line.code.contains(".unwrap()") || line.code.contains(".expect(") {
            push(
                out,
                file,
                n,
                "L001",
                "propagate the error (`?`, `ok_or`, `match`) or justify the invariant in lint.toml",
            );
        }
    }
}

/// L002: lossy `as` numeric casts in `core` / `model`.
fn l002_no_lossy_cast(file: &SourceFile, out: &mut Vec<Finding>) {
    let krate = crate_of(&file.rel);
    if !(krate == "core" || krate == "model") || file.rel.ends_with("units.rs") {
        return;
    }
    for (n, line) in file.lines.iter().enumerate() {
        if !line.in_test && has_numeric_cast(&line.code) {
            push(
                out,
                file,
                n,
                "L002",
                "use From/TryFrom or the units.rs conversions instead of a lossy `as` cast",
            );
        }
    }
}

/// L003: raw `f64` resource arithmetic bypassing the unit newtypes.
fn l003_no_raw_resource_math(file: &SourceFile, out: &mut Vec<Finding>) {
    let krate = crate_of(&file.rel);
    if !(krate == "core" || krate == "sim") {
        return;
    }
    for (n, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let c = &line.code;
        let unit_from_float =
            ["Mhz(", "MemMib(", "DiskGb("].iter().any(|p| c.contains(p)) && c.contains("as u64");
        if c.contains(".get() as f64") || c.contains(".0 as f64") || unit_from_float {
            push(
                out,
                file,
                n,
                "L003",
                "route the conversion through units.rs (`as_f64`, `fraction_of`, `from_f64_*`)",
            );
        }
    }
}

/// L004: unchecked slice indexing in the hot paths.
fn l004_no_unchecked_index(file: &SourceFile, out: &mut Vec<Finding>) {
    if !HOT_FILES.iter().any(|h| file.rel.ends_with(h)) {
        return;
    }
    for (n, line) in file.lines.iter().enumerate() {
        if !line.in_test && has_index_expr(&line.code) {
            push(
                out,
                file,
                n,
                "L004",
                "prefer iterators/zip, `.get()`, or an audited accessor with a documented bound",
            );
        }
    }
}

/// L005: public `core` functions that can panic must say so.
fn l005_panics_documented(file: &SourceFile, out: &mut Vec<Finding>) {
    if crate_of(&file.rel) != "core" {
        return;
    }
    for n in 0..file.lines.len() {
        let line = &file.lines[n];
        if line.in_test || !starts_pub_fn(&line.code) {
            continue;
        }
        let Some(body) = fn_body(file, n) else {
            continue;
        };
        if !body_can_panic(&body) {
            continue;
        }
        if !doc_block_mentions_panics(file, n) {
            push(
                out,
                file,
                n,
                "L005",
                "add a `# Panics` doc section (or remove the panic path)",
            );
        }
    }
}

/// L006: bare channel operations in files that speak `crossbeam::channel`.
/// A blocking `.recv()` hangs forever when the peer dies and a
/// `.send(…).unwrap()` panics; both must become typed errors or timeouts.
fn l006_no_bare_channel_ops(file: &SourceFile, out: &mut Vec<Finding>) {
    let uses_channels = file
        .lines
        .iter()
        .any(|l| l.code.contains("crossbeam::channel"));
    if !uses_channels {
        return;
    }
    for (n, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let c = &line.code;
        if c.contains(".recv()") || (c.contains(".send(") && c.contains(".unwrap()")) {
            push(
                out,
                file,
                n,
                "L006",
                "use recv_timeout / handle the SendError as a typed error (the peer may be dead), or justify the blocking site in lint.toml",
            );
        }
    }
}

/// L007: non-trivial public functions on the hot paths must open a
/// profiling span, so per-worker timelines and phase histograms see
/// them. Size is measured on masked, non-blank body lines; functions at
/// or under [`L007_TRIVIAL_LINES`] read as accessors and are exempt.
fn l007_hot_paths_open_spans(file: &SourceFile, out: &mut Vec<Finding>) {
    if !HOT_FILES.iter().any(|h| file.rel.ends_with(h)) {
        return;
    }
    for n in 0..file.lines.len() {
        let line = &file.lines[n];
        if line.in_test || !starts_pub_fn(&line.code) {
            continue;
        }
        let Some(body) = fn_body(file, n) else {
            continue;
        };
        if body.lines().filter(|l| !l.trim().is_empty()).count() <= L007_TRIVIAL_LINES {
            continue;
        }
        if contains_token(&body, "Span::enter") || contains_token(&body, "Span::timed") {
            continue;
        }
        push(
            out,
            file,
            n,
            "L007",
            "open a profiling span (`Span::enter(\"…\")`) so --trace covers this hot-path function, or justify the span-free site in lint.toml",
        );
    }
}

/// Does masked code contain a standalone `as <numeric-type>`?
fn has_numeric_cast(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0;
    while let Some(off) = code[i..].find("as") {
        let start = i + off;
        let end = start + 2;
        i = end;
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        if !left_ok {
            continue;
        }
        let rest = code[end..].trim_start();
        if rest.len() == code[end..].len() && !rest.is_empty() {
            continue; // `as` fused with the next token (e.g. `assert`)
        }
        let ty: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if NUMERIC_TYPES.contains(&ty.as_str()) {
            return true;
        }
    }
    false
}

/// Does masked code contain an index expression `expr[...]`?
fn has_index_expr(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (pos, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        // rustfmt never leaves a space before an index `[`; a space
        // means type position (`&'a [T]`) or a slice pattern.
        let j = pos;
        if j == 0 || bytes[j - 1] == b' ' {
            continue;
        }
        let prev = bytes[j - 1];
        if is_ident_byte(prev) || prev == b')' || prev == b']' {
            return true;
        }
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn starts_pub_fn(code: &str) -> bool {
    let t = code.trim_start();
    t.starts_with("pub fn ") || t.starts_with("pub const fn ") || t.starts_with("pub async fn ")
}

/// Masked text of the function body starting at signature line `n`
/// (`None` for bodyless trait declarations).
fn fn_body(file: &SourceFile, n: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut started = false;
    let mut body = String::new();
    for line in &file.lines[n..] {
        for ch in line.code.chars() {
            if !started {
                match ch {
                    '{' => {
                        started = true;
                        depth = 1;
                    }
                    ';' => return None,
                    _ => {}
                }
                continue;
            }
            if ch == '{' {
                depth += 1;
            } else if ch == '}' {
                depth -= 1;
                if depth == 0 {
                    return Some(body);
                }
            }
            body.push(ch);
        }
        body.push('\n');
    }
    Some(body)
}

fn body_can_panic(body: &str) -> bool {
    PANIC_TOKENS.iter().any(|tok| contains_token(body, tok))
}

/// Substring search with a left word boundary, so `debug_assert!` does not
/// match the `assert!` token (debug assertions vanish in release builds).
/// Tokens starting with `.` (method calls) need no boundary check.
fn contains_token(haystack: &str, token: &str) -> bool {
    if token.starts_with('.') {
        return haystack.contains(token);
    }
    let bytes = haystack.as_bytes();
    let mut i = 0;
    while let Some(off) = haystack[i..].find(token) {
        let start = i + off;
        if start == 0 || !is_ident_byte(bytes[start - 1]) {
            return true;
        }
        i = start + 1;
    }
    false
}

/// Walk upward from the `pub fn` line through attributes and doc lines;
/// true if any doc line mentions `# Panics`.
fn doc_block_mentions_panics(file: &SourceFile, n: usize) -> bool {
    for line in file.lines[..n].iter().rev() {
        let t = line.raw.trim();
        if line.is_doc {
            if t.contains("# Panics") {
                return true;
            }
        } else if !(t.starts_with("#[") || t.starts_with("#!") || t.ends_with(']')) {
            return false; // left the doc/attribute block
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        let krate = crate_of(rel).to_string();
        SourceFile::scan(rel.to_string(), krate, false, src)
    }

    fn rules_fired(rel: &str, src: &str) -> Vec<String> {
        let mut out = Vec::new();
        check(&file(rel, src), &mut out);
        out.iter()
            .map(|f| format!("{}:{}", f.rule, f.line))
            .collect()
    }

    #[test]
    fn l001_fires_outside_tests_only() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.expect(\"e\"); }\n}\n";
        assert_eq!(rules_fired("crates/sim/src/engine.rs", src), ["L001:1"]);
    }

    #[test]
    fn l001_skips_bins() {
        let mut f = file("crates/cli/src/main.rs", "fn a() { x.unwrap(); }\n");
        f.is_bin = true;
        let mut out = Vec::new();
        check(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn l002_catches_numeric_casts_in_core_and_model_only() {
        let src = "fn a(n: u64) -> usize { n as usize }\n";
        assert_eq!(rules_fired("crates/core/src/table.rs", src), ["L002:1"]);
        assert_eq!(rules_fired("crates/model/src/pm.rs", src), ["L002:1"]);
        assert!(rules_fired("crates/traces/src/gen.rs", src).is_empty());
        assert!(rules_fired("crates/model/src/units.rs", src).is_empty());
    }

    #[test]
    fn l002_ignores_non_cast_as_tokens() {
        let src = "use std::fmt as f;\nfn a() { assert_eq!(1, 1); }\n";
        assert!(rules_fired("crates/core/src/graph.rs", src)
            .iter()
            .all(|r| !r.starts_with("L002")));
    }

    #[test]
    fn l003_catches_raw_resource_math() {
        let src = "fn a(m: Mhz) -> f64 { m.get() as f64 }\nfn b(x: f64) -> Mhz { Mhz(x.round() as u64) }\n";
        let fired = rules_fired("crates/sim/src/engine.rs", src);
        assert!(fired.contains(&"L003:1".to_string()));
        assert!(fired.contains(&"L003:2".to_string()));
    }

    #[test]
    fn l004_flags_indexing_in_hot_paths_only() {
        let src = "fn a(v: &[u64], i: usize) -> u64 { v[i] }\n";
        assert!(rules_fired("crates/core/src/pagerank.rs", src).contains(&"L004:1".to_string()));
        assert!(rules_fired("crates/core/src/table.rs", src)
            .iter()
            .all(|r| !r.starts_with("L004")));
    }

    #[test]
    fn l004_ignores_attributes_array_types_and_macros() {
        let src = "#[derive(Debug)]\nfn a(v: &[u64]) -> Vec<u64> { vec![0; 4] }\n";
        assert!(rules_fired("crates/core/src/graph.rs", src)
            .iter()
            .all(|r| !r.starts_with("L004")));
    }

    #[test]
    fn l005_requires_panics_section() {
        let undocumented =
            "/// Does things.\npub fn a(x: Option<u32>) -> u32 {\n    x.expect(\"present\")\n}\n";
        assert!(
            rules_fired("crates/core/src/bpru.rs", undocumented).contains(&"L005:2".to_string())
        );
        let documented = "/// Does things.\n///\n/// # Panics\n/// Panics when absent.\n#[must_use]\npub fn a(x: Option<u32>) -> u32 {\n    x.expect(\"present\")\n}\n";
        assert!(rules_fired("crates/core/src/bpru.rs", documented)
            .iter()
            .all(|r| !r.starts_with("L005")));
    }

    #[test]
    fn l006_flags_bare_channel_ops_in_channel_files_only() {
        let src = "use crossbeam::channel::{Receiver, Sender};\n\
                   fn a(rx: &Receiver<u32>) { let _ = rx.recv(); }\n\
                   fn b(tx: &Sender<u32>) { tx.send(1).unwrap(); }\n";
        let fired = rules_fired("crates/testbed/src/x.rs", src);
        assert!(fired.contains(&"L006:2".to_string()), "{fired:?}");
        assert!(fired.contains(&"L006:3".to_string()), "{fired:?}");

        // recv_timeout and fallible sends are the sanctioned forms.
        let ok = "use crossbeam::channel::Receiver;\n\
                  fn a(rx: &Receiver<u32>, d: std::time::Duration) { let _ = rx.recv_timeout(d); }\n\
                  fn b(tx: &crossbeam::channel::Sender<u32>) -> Result<(), ()> { tx.send(1).map_err(|_| ()) }\n";
        assert!(rules_fired("crates/testbed/src/x.rs", ok)
            .iter()
            .all(|r| !r.starts_with("L006")));

        // Files that never import crossbeam channels are exempt.
        let nochan = "fn a(rx: &Mailbox) { let _ = rx.recv(); }\n";
        assert!(rules_fired("crates/sim/src/x.rs", nochan)
            .iter()
            .all(|r| !r.starts_with("L006")));

        // Test modules may block freely.
        let in_test = "use crossbeam::channel::Receiver;\n\
                       #[cfg(test)]\nmod tests {\n    fn a(rx: &Receiver<u32>) { let _ = rx.recv(); }\n}\n";
        assert!(rules_fired("crates/testbed/src/x.rs", in_test)
            .iter()
            .all(|r| !r.starts_with("L006")));
    }

    #[test]
    fn l007_requires_spans_in_long_hot_path_pub_fns() {
        let long_body: String = (0..16).map(|i| format!("    let x{i} = {i};\n")).collect();
        let bare = format!("pub fn work(v: &mut Vec<u64>) {{\n{long_body}}}\n");
        assert!(rules_fired("crates/core/src/pagerank.rs", &bare).contains(&"L007:1".to_string()));

        // The same function outside the hot files is exempt…
        assert!(rules_fired("crates/core/src/table.rs", &bare)
            .iter()
            .all(|r| !r.starts_with("L007")));

        // …as is a spanned version, whether via enter or timed…
        for span in [
            "let _s = Span::enter(\"work\");",
            "Span::timed(\"work\", || 1);",
        ] {
            let spanned = format!("pub fn work() {{\n    {span}\n{long_body}}}\n");
            assert!(
                rules_fired("crates/core/src/pagerank.rs", &spanned)
                    .iter()
                    .all(|r| !r.starts_with("L007")),
                "{span}"
            );
        }

        // …and a trivial accessor stays under the size threshold.
        let accessor = "pub fn len(&self) -> usize {\n    self.nodes.len()\n}\n";
        assert!(rules_fired("crates/core/src/graph.rs", accessor)
            .iter()
            .all(|r| !r.starts_with("L007")));

        // Private functions are the callee side; only the pub surface
        // must be covered.
        let private = format!("fn helper(v: &mut Vec<u64>) {{\n{long_body}}}\n");
        assert!(rules_fired("crates/core/src/placer.rs", &private)
            .iter()
            .all(|r| !r.starts_with("L007")));
    }

    #[test]
    fn l005_ignores_debug_asserts_and_calm_bodies() {
        let src = "/// Fine.\npub fn a(x: u32) -> u32 {\n    debug_assert!(x > 0);\n    x + 1\n}\n";
        assert!(rules_fired("crates/core/src/profile.rs", src)
            .iter()
            .all(|r| !r.starts_with("L005")));
    }
}
