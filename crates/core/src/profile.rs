//! PM resource-usage profiles in the quantized space.
//!
//! A profile is the paper's `p = [p_1, …, p_m]`: utilization of every
//! resource dimension, where each physical core and each physical disk is
//! its own dimension (§IV). Dimensions of the same *kind* (cores among
//! themselves, disks among themselves) are interchangeable, so a profile is
//! stored in **canonical form**: the usage values of each kind sorted
//! ascending. This collapses the permutations the paper talks about —
//! `{α,α,0,0}` and `{0,0,α,α}` map to the same canonical profile — while
//! preserving exactly the distinctions that matter for ranking.

use prvm_model::units::convert;
use prvm_model::{QuantizedPm, QuantizedVm};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One kind of interchangeable dimensions (cores, memory, disks).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KindSpace {
    /// Diagnostic label: `"cores"`, `"mem"`, `"disks"`.
    pub name: String,
    /// Number of dimensions of this kind.
    pub count: usize,
    /// Capacity of each dimension, in quantized units.
    pub cap: u16,
}

/// The shape of the quantized profile space for one PM type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProfileSpace {
    kinds: Vec<KindSpace>,
    /// Flat offset of each kind within a profile (kinds.len() + 1 entries).
    offsets: Vec<usize>,
    total_cap: u64,
}

impl ProfileSpace {
    /// Build a space from explicit kinds. Kinds with `count == 0` or
    /// `cap == 0` are dropped (absent dimensions).
    ///
    /// # Panics
    ///
    /// Panics if no kind remains (a PM must have at least one dimension).
    #[must_use]
    pub fn new(kinds: impl IntoIterator<Item = KindSpace>) -> Self {
        let kinds: Vec<KindSpace> = kinds
            .into_iter()
            .filter(|k| k.count > 0 && k.cap > 0)
            .collect();
        assert!(!kinds.is_empty(), "profile space needs at least one kind");
        let mut offsets = Vec::with_capacity(kinds.len() + 1);
        let mut off = 0;
        for k in &kinds {
            offsets.push(off);
            off += k.count;
        }
        offsets.push(off);
        let total_cap = kinds
            .iter()
            .map(|k| u64::from(k.cap) * convert::usize_to_u64(k.count))
            .sum();
        Self {
            kinds,
            offsets,
            total_cap,
        }
    }

    /// The space of a quantized PM: cores, then memory, then disks.
    #[must_use]
    pub fn from_quantized_pm(pm: &QuantizedPm) -> Self {
        Self::new([
            KindSpace {
                name: "cores".into(),
                count: pm.cores,
                cap: convert::u64_to_u16_saturating(pm.core_cap),
            },
            KindSpace {
                name: "mem".into(),
                count: usize::from(pm.mem_cap > 0),
                cap: convert::u64_to_u16_saturating(pm.mem_cap),
            },
            KindSpace {
                name: "disks".into(),
                count: pm.disks,
                cap: convert::u64_to_u16_saturating(pm.disk_cap),
            },
        ])
    }

    /// A uniform space: `dims` interchangeable dimensions of capacity `cap`
    /// — the shape of all the paper's worked examples (e.g. `[4,4,4,4]`).
    #[must_use]
    pub fn uniform(dims: usize, cap: u16) -> Self {
        Self::new([KindSpace {
            name: "dims".into(),
            count: dims,
            cap,
        }])
    }

    /// The kinds of this space.
    #[must_use]
    pub fn kinds(&self) -> &[KindSpace] {
        &self.kinds
    }

    /// Total number of dimensions (`m` in the paper).
    #[must_use]
    pub fn dims(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Sum of all dimension capacities (denominator of utilization).
    #[must_use]
    pub fn total_cap(&self) -> u64 {
        self.total_cap
    }

    /// The all-zero profile.
    #[must_use]
    pub fn empty_profile(&self) -> Profile {
        Profile(vec![0; self.dims()].into_boxed_slice())
    }

    /// The best profile: full utilization in every dimension (§V-A).
    #[must_use]
    pub fn best_profile(&self) -> Profile {
        let mut v = Vec::with_capacity(self.dims());
        for k in &self.kinds {
            v.extend(std::iter::repeat_n(k.cap, k.count));
        }
        Profile(v.into_boxed_slice())
    }

    /// Canonicalise raw per-kind usage vectors into a [`Profile`].
    ///
    /// `usage` must contain one slice per kind, in kind order, with exactly
    /// `count` entries each. Values may exceed capacity (over-committed
    /// fallback placements); such profiles are valid keys, they just never
    /// appear in a graph.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match the space.
    #[must_use]
    pub fn canonicalize(&self, usage: &[&[u64]]) -> Profile {
        assert_eq!(usage.len(), self.kinds.len(), "kind count mismatch");
        let mut v = Vec::with_capacity(self.dims());
        for (k, &slice) in self.kinds.iter().zip(usage) {
            assert_eq!(slice.len(), k.count, "dimension count mismatch");
            let start = v.len();
            v.extend(slice.iter().map(|&u| u16::try_from(u).unwrap_or(u16::MAX)));
            v[start..].sort_unstable();
        }
        Profile(v.into_boxed_slice())
    }

    /// View of one kind's usage inside a profile.
    #[must_use]
    pub fn kind_usage<'p>(&self, profile: &'p Profile, kind: usize) -> &'p [u16] {
        &profile.0[self.offsets[kind]..self.offsets[kind + 1]]
    }

    /// Utilization `u/Σcap` of a profile: the paper's resource utilization
    /// normalised to `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, profile: &Profile) -> f64 {
        let used: u64 = profile.0.iter().map(|&u| u64::from(u)).sum();
        convert::u64_to_f64(used) / convert::u64_to_f64(self.total_cap)
    }

    /// Variance of per-dimension utilization — the metric of the
    /// variance-based approaches the paper's motivation critiques (§III-B).
    #[must_use]
    pub fn variance(&self, profile: &Profile) -> f64 {
        let mut fracs = Vec::with_capacity(self.dims());
        for (i, k) in self.kinds.iter().enumerate() {
            for &u in self.kind_usage(profile, i) {
                fracs.push(f64::from(u) / f64::from(k.cap));
            }
        }
        let dims = convert::usize_to_f64(fracs.len());
        let mean = fracs.iter().sum::<f64>() / dims;
        fracs.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / dims
    }

    /// Convert a quantized VM into this space's demand shape. Returns
    /// `None` if the VM structurally cannot fit (more vCPUs than cores,
    /// memory demanded on a memory-less PM, …).
    #[must_use]
    pub fn vm_demand(&self, vm: &QuantizedVm) -> Option<ProfileVm> {
        let mut demands: Vec<Vec<u64>> = vec![Vec::new(); self.kinds.len()];
        let mut assign = |name: &str, d: Vec<u64>| -> bool {
            if d.is_empty() {
                return true;
            }
            match self.kinds.iter().position(|k| k.name == name) {
                Some(i) if d.len() <= self.kinds[i].count => {
                    demands[i] = d;
                    true
                }
                _ => false,
            }
        };
        let cpu: Vec<u64> = std::iter::repeat_n(vm.vcpu_slots, vm.vcpus)
            .filter(|&s| s > 0)
            .collect();
        let mem: Vec<u64> = if vm.mem_units > 0 {
            vec![vm.mem_units]
        } else {
            Vec::new()
        };
        let disks: Vec<u64> = vm.disk_units.iter().copied().filter(|&d| d > 0).collect();
        if assign("cores", cpu) && assign("mem", mem) && assign("disks", disks) {
            Some(ProfileVm {
                name: vm.name.clone(),
                demands,
            })
        } else {
            None
        }
    }

    /// Enumerate every *distinct* profile reachable from `profile` by
    /// hosting one `vm` (the paper's `S(P_i)` restricted to one VM type).
    /// Empty when the VM does not fit.
    #[must_use]
    pub fn place(&self, profile: &Profile, vm: &ProfileVm) -> Vec<Profile> {
        debug_assert_eq!(vm.demands.len(), self.kinds.len());
        // Per-kind distinct outcomes.
        let mut per_kind: Vec<Vec<Vec<u16>>> = Vec::with_capacity(self.kinds.len());
        for (i, k) in self.kinds.iter().enumerate() {
            let usage = self.kind_usage(profile, i);
            let outcomes = place_multiset(usage, k.cap, &vm.demands[i]);
            if outcomes.is_empty() {
                return Vec::new();
            }
            per_kind.push(outcomes);
        }
        // Cartesian product across kinds. Distinct per-kind multisets give
        // distinct combined profiles, so no dedup is needed.
        let mut out: Vec<Profile> = Vec::with_capacity(per_kind.iter().map(Vec::len).product());
        let mut current = vec![0u16; self.dims()];
        fn rec(
            per_kind: &[Vec<Vec<u16>>],
            offsets: &[usize],
            kind: usize,
            current: &mut [u16],
            out: &mut Vec<Profile>,
        ) {
            if kind == per_kind.len() {
                out.push(Profile(current.to_vec().into_boxed_slice()));
                return;
            }
            for outcome in &per_kind[kind] {
                current[offsets[kind]..offsets[kind + 1]].copy_from_slice(outcome);
                rec(per_kind, offsets, kind + 1, current, out);
            }
        }
        rec(&per_kind, &self.offsets, 0, &mut current, &mut out);
        out
    }
}

/// A canonical PM usage profile: per kind, usage values sorted ascending,
/// flattened.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Profile(Box<[u16]>);

impl Profile {
    /// Raw canonical values (kind boundaries live in the [`ProfileSpace`]).
    #[must_use]
    pub fn values(&self) -> &[u16] {
        &self.0
    }
}

impl fmt::Debug for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Profile{:?}", &self.0[..])
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// A VM's demand expressed in a specific [`ProfileSpace`]: per kind, the
/// units that must land on *distinct* dimensions of that kind, sorted
/// descending.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProfileVm {
    /// VM type name (diagnostics).
    pub name: String,
    demands: Vec<Vec<u64>>,
}

impl ProfileVm {
    /// Construct directly from per-kind demands (sorted descending within
    /// each kind). Used by tests and the paper's abstract examples; real
    /// workloads go through [`ProfileSpace::vm_demand`].
    ///
    /// # Panics
    ///
    /// Panics if a kind's demands are not sorted descending.
    #[must_use]
    pub fn from_demands(name: impl Into<String>, demands: Vec<Vec<u64>>) -> Self {
        for d in &demands {
            assert!(d.windows(2).all(|w| w[0] >= w[1]), "demands must be sorted");
        }
        Self {
            name: name.into(),
            demands,
        }
    }

    /// Per-kind demands.
    #[must_use]
    pub fn demands(&self) -> &[Vec<u64>] {
        &self.demands
    }

    /// Total demanded units across all kinds.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.demands.iter().flatten().sum()
    }
}

/// Enumerate the distinct sorted-ascending outcomes of adding `demands`
/// (sorted descending, each on a distinct dimension) to the sorted-ascending
/// usage multiset `usage` with uniform capacity `cap`.
///
/// This is the multiset counterpart of
/// [`prvm_model::combin::distinct_placements`]: it returns outcomes instead
/// of index assignments, which is all the profile graph needs.
#[must_use]
pub fn place_multiset(usage: &[u16], cap: u16, demands: &[u64]) -> Vec<Vec<u16>> {
    if demands.is_empty() {
        return vec![usage.to_vec()];
    }
    if demands.len() > usage.len() {
        return Vec::new();
    }
    // Run-length encode the usage (groups of interchangeable dimensions).
    let mut groups: Vec<(u16, usize)> = Vec::new();
    for &u in usage {
        match groups.last_mut() {
            Some((v, n)) if *v == u => *n += 1,
            _ => groups.push((u, 1)),
        }
    }
    // Run-length encode the demands.
    let mut runs: Vec<(u64, usize)> = Vec::new();
    for &d in demands {
        match runs.last_mut() {
            Some((v, n)) if *v == d => *n += 1,
            _ => runs.push((d, 1)),
        }
    }

    let mut results = Vec::new();
    let mut taken = vec![0usize; groups.len()];
    // choice[run][group] = how many demands of that run land in that group.
    let mut choice = vec![vec![0usize; groups.len()]; runs.len()];

    fn emit(
        groups: &[(u16, usize)],
        runs: &[(u64, usize)],
        choice: &[Vec<usize>],
        results: &mut Vec<Vec<u16>>,
    ) {
        let mut outcome = Vec::with_capacity(groups.iter().map(|&(_, n)| n).sum());
        for (g, &(value, n)) in groups.iter().enumerate() {
            let mut bumped = 0usize;
            // Demands are assigned to distinct dims of the group.
            for (r, counts) in choice.iter().enumerate() {
                for _ in 0..counts[g] {
                    // The recursion only assigns a demand where it fits
                    // under `cap`, so this saturation never triggers.
                    let demand = u16::try_from(runs[r].0).unwrap_or(u16::MAX);
                    outcome.push(value.saturating_add(demand));
                    bumped += 1;
                }
            }
            outcome.extend(std::iter::repeat_n(value, n - bumped));
        }
        outcome.sort_unstable();
        results.push(outcome);
    }

    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    fn rec(
        groups: &[(u16, usize)],
        cap: u16,
        runs: &[(u64, usize)],
        run: usize,
        remaining: usize,
        g: usize,
        taken: &mut [usize],
        choice: &mut [Vec<usize>],
        results: &mut Vec<Vec<u16>>,
    ) {
        if remaining == 0 {
            for slot in g..groups.len() {
                choice[run][slot] = 0;
            }
            if run + 1 == runs.len() {
                emit(groups, runs, choice, results);
            } else {
                let next_remaining = runs[run + 1].1;
                rec(
                    groups,
                    cap,
                    runs,
                    run + 1,
                    next_remaining,
                    0,
                    taken,
                    choice,
                    results,
                );
            }
            return;
        }
        if g == groups.len() {
            return;
        }
        let (value, n) = groups[g];
        let fits = u64::from(value) + runs[run].0 <= u64::from(cap);
        let avail = if fits { n - taken[g] } else { 0 };
        for c in (0..=avail.min(remaining)).rev() {
            choice[run][g] = c;
            taken[g] += c;
            rec(
                groups,
                cap,
                runs,
                run,
                remaining - c,
                g + 1,
                taken,
                choice,
                results,
            );
            taken[g] -= c;
        }
        choice[run][g] = 0;
    }

    let first_remaining = runs[0].1;
    rec(
        &groups,
        cap,
        &runs,
        0,
        first_remaining,
        0,
        &mut taken,
        &mut choice,
        &mut results,
    );
    results.sort_unstable();
    results.dedup();
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space4() -> ProfileSpace {
        ProfileSpace::uniform(4, 4)
    }

    fn profile(space: &ProfileSpace, v: &[u64]) -> Profile {
        space.canonicalize(&[v])
    }

    #[test]
    fn canonical_form_sorts_within_kinds() {
        let s = space4();
        let a = profile(&s, &[4, 3, 0, 1]);
        let b = profile(&s, &[0, 1, 3, 4]);
        assert_eq!(a, b);
        assert_eq!(a.values(), &[0, 1, 3, 4]);
    }

    #[test]
    fn kinds_do_not_mix() {
        // Two kinds with identical caps must not merge: memory is not a core.
        let s = ProfileSpace::new([
            KindSpace {
                name: "cores".into(),
                count: 2,
                cap: 4,
            },
            KindSpace {
                name: "mem".into(),
                count: 1,
                cap: 4,
            },
        ]);
        let p = s.canonicalize(&[&[3, 0], &[1]]);
        assert_eq!(p.values(), &[0, 3, 1]); // cores sorted, mem separate
        assert_eq!(s.kind_usage(&p, 0), &[0, 3]);
        assert_eq!(s.kind_usage(&p, 1), &[1]);
    }

    #[test]
    fn utilization_and_best_profile() {
        let s = space4();
        assert_eq!(s.utilization(&s.empty_profile()), 0.0);
        assert_eq!(s.utilization(&s.best_profile()), 1.0);
        let p = profile(&s, &[4, 3, 3, 3]);
        assert!((s.utilization(&p) - 13.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn variance_matches_motivation_example() {
        // §III-B compares [4,3,3,3] (raw variance 0.1875, the paper quotes
        // the unnormalised 0.75) against [3,3,2,2] (raw 0.25, paper 1.0).
        // Our variance is on capacity-normalised fractions: raw/cap².
        let s = space4();
        let a = s.variance(&profile(&s, &[4, 3, 3, 3]));
        let b = s.variance(&profile(&s, &[3, 3, 2, 2]));
        assert!((a - 0.1875 / 16.0).abs() < 1e-9, "{a}");
        assert!((b - 0.25 / 16.0).abs() < 1e-9, "{b}");
        // What matters for the motivation: the variance metric prefers
        // [4,3,3,3], which the paper shows is the *worse* host.
        assert!(a < b);
    }

    #[test]
    fn place_single_vm_type_matches_paper_example() {
        // §V-A / Fig. 2: from [2,2,0,0]... use [3,3,3,3] hosting [1,1].
        let s = space4();
        let vm = ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]);
        let from = profile(&s, &[3, 3, 3, 3]);
        let out = s.place(&from, &vm);
        assert_eq!(out, vec![profile(&s, &[4, 4, 3, 3])]);

        // [1,1,1,1] onto [3,3,3,3] -> best profile.
        let vm4 = ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]);
        let out = s.place(&from, &vm4);
        assert_eq!(out, vec![s.best_profile()]);

        // [1,1,1,1] onto [4,4,2,2] does not fit (two dims are full).
        let out = s.place(&profile(&s, &[4, 4, 2, 2]), &vm4);
        assert!(out.is_empty());
    }

    #[test]
    fn place_enumerates_distinct_permutations_only() {
        let s = space4();
        let vm = ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]);
        // [2,2,0,0] + [1,1]: three distinct outcomes (both-on-2s, split,
        // both-on-0s).
        let out = s.place(&profile(&s, &[2, 2, 0, 0]), &vm);
        let expect: Vec<Profile> = vec![
            profile(&s, &[3, 3, 0, 0]),
            profile(&s, &[3, 2, 1, 0]),
            profile(&s, &[2, 2, 1, 1]),
        ];
        let mut got = out.clone();
        got.sort();
        let mut want = expect;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn place_respects_multi_kind_demands() {
        let s = ProfileSpace::new([
            KindSpace {
                name: "cores".into(),
                count: 2,
                cap: 4,
            },
            KindSpace {
                name: "mem".into(),
                count: 1,
                cap: 8,
            },
        ]);
        let vm = ProfileVm::from_demands("v", vec![vec![2, 2], vec![3]]);
        let from = s.canonicalize(&[&[1, 0], &[4]]);
        let out = s.place(&from, &vm);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values(), &[2, 3, 7]);
        // Memory overflow: 4 + 3 <= 8 ok, but from [4,4] cores it fails.
        let full = s.canonicalize(&[&[3, 3], &[6]]);
        assert!(s.place(&full, &vm).is_empty());
    }

    #[test]
    fn vm_demand_conversion() {
        use prvm_model::QuantizedVm;
        let s = ProfileSpace::new([
            KindSpace {
                name: "cores".into(),
                count: 8,
                cap: 4,
            },
            KindSpace {
                name: "mem".into(),
                count: 1,
                cap: 8,
            },
            KindSpace {
                name: "disks".into(),
                count: 4,
                cap: 4,
            },
        ]);
        let q = QuantizedVm {
            name: "m3.xlarge".into(),
            vcpus: 4,
            vcpu_slots: 1,
            mem_units: 2,
            disk_units: vec![1, 1],
        };
        let vm = s.vm_demand(&q).unwrap();
        assert_eq!(vm.demands(), &[vec![1, 1, 1, 1], vec![2], vec![1, 1]]);
        assert_eq!(vm.total_units(), 8);

        // 16 vCPUs cannot fit 8 cores structurally.
        let too_wide = QuantizedVm {
            name: "wide".into(),
            vcpus: 16,
            vcpu_slots: 1,
            mem_units: 0,
            disk_units: vec![],
        };
        assert!(s.vm_demand(&too_wide).is_none());
    }

    #[test]
    fn vm_demand_on_cpu_only_space() {
        use prvm_model::QuantizedVm;
        let s = ProfileSpace::new([KindSpace {
            name: "cores".into(),
            count: 4,
            cap: 4,
        }]);
        let q = QuantizedVm {
            name: "[1,1]".into(),
            vcpus: 2,
            vcpu_slots: 1,
            mem_units: 0,
            disk_units: vec![],
        };
        let vm = s.vm_demand(&q).unwrap();
        assert_eq!(vm.demands(), &[vec![1, 1]]);
        // Demanding memory on a memory-less space is structural misfit.
        let q = QuantizedVm {
            name: "memful".into(),
            vcpus: 1,
            vcpu_slots: 1,
            mem_units: 3,
            disk_units: vec![],
        };
        assert!(s.vm_demand(&q).is_none());
    }

    #[test]
    fn place_multiset_heterogeneous_demands() {
        // Usage [0,1] cap 4, demands [2,1]: outcomes {[2,2] (2->0,1->1),
        // [1,3] (2->1,1->0)} in ascending order.
        let got = place_multiset(&[0, 1], 4, &[2, 1]);
        assert_eq!(got, vec![vec![1, 3], vec![2, 2]]);
    }

    #[test]
    fn place_multiset_empty_demand_is_identity() {
        assert_eq!(place_multiset(&[1, 2], 4, &[]), vec![vec![1, 2]]);
    }

    #[test]
    fn display_and_debug() {
        let s = space4();
        let p = profile(&s, &[4, 3, 3, 3]);
        assert_eq!(p.to_string(), "[3,3,3,4]");
        assert!(format!("{p:?}").contains("Profile"));
    }
}
