//! The 2-choice sampling variant sketched at the end of §V-C.
//!
//! Scanning every used PM per placement costs `O(|used|)` score
//! evaluations. The paper notes the classic power-of-two-choices result
//! [Azar et al., Mitzenmacher]: sampling two PMs at random and keeping the
//! better one captures most of the benefit at `O(1)` cost. This placer
//! samples `poll_size` used PMs, scores only those, and falls back to the
//! full Algorithm 2 path when the sample yields nothing feasible.

use crate::placer::PageRankVmPlacer;
use crate::table::ScoreBook;
use prvm_model::{Cluster, PlacementAlgorithm, PlacementDecision, PmId, VmSpec};
use rand::rngs::StdRng;
use rand::seq::IteratorRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// PageRankVM with sampled candidate PMs.
#[derive(Debug)]
pub struct TwoChoicePlacer {
    inner: PageRankVmPlacer,
    rng: StdRng,
    poll_size: usize,
}

impl TwoChoicePlacer {
    /// Sample two candidates per placement (the paper's recommendation).
    #[must_use]
    pub fn new(book: Arc<ScoreBook>, seed: u64) -> Self {
        Self::with_poll_size(book, seed, 2)
    }

    /// Sample `poll_size` candidates per placement.
    ///
    /// # Panics
    ///
    /// Panics if `poll_size == 0`.
    #[must_use]
    pub fn with_poll_size(book: Arc<ScoreBook>, seed: u64, poll_size: usize) -> Self {
        assert!(poll_size > 0, "poll size must be positive");
        Self {
            inner: PageRankVmPlacer::new(book),
            rng: StdRng::seed_from_u64(seed),
            poll_size,
        }
    }

    /// Number of used PMs sampled per placement.
    #[must_use]
    pub fn poll_size(&self) -> usize {
        self.poll_size
    }
}

impl PlacementAlgorithm for TwoChoicePlacer {
    fn name(&self) -> &str {
        "PageRankVM-2choice"
    }

    fn choose(
        &mut self,
        cluster: &Cluster,
        vm: &VmSpec,
        exclude: &dyn Fn(PmId) -> bool,
    ) -> Option<PlacementDecision> {
        let sample: Vec<PmId> = cluster
            .used_pms()
            .filter(|&pm| !exclude(pm))
            .choose_multiple(&mut self.rng, self.poll_size);

        let mut best: Option<(f64, PlacementDecision)> = None;
        for pm_id in sample {
            let pm = cluster.pm(pm_id);
            if !pm.has_aggregate_room(vm) {
                continue;
            }
            if let Some((score, assignment)) = self.inner.best_option(pm, vm) {
                if best.as_ref().is_none_or(|(b, _)| score > *b) {
                    best = Some((
                        score,
                        PlacementDecision {
                            pm: pm_id,
                            assignment,
                        },
                    ));
                }
            }
        }
        if let Some((_, d)) = best {
            return Some(d);
        }
        // Sample failed: defer to the exhaustive Algorithm 2 so the
        // placement does not fail spuriously.
        self.inner.choose(cluster, vm, exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphLimits;
    use crate::pagerank::PageRankConfig;
    use prvm_model::{catalog, place_batch, Quantizer};

    fn book() -> Arc<ScoreBook> {
        Arc::new(
            ScoreBook::build(
                Quantizer::default(),
                &[catalog::geni_pm()],
                &catalog::geni_vm_types(),
                &PageRankConfig::default(),
                GraphLimits::default(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn places_all_vms() {
        let mut placer = TwoChoicePlacer::new(book(), 42);
        let mut cluster = Cluster::homogeneous(catalog::geni_pm(), 8);
        let vms = vec![catalog::geni_vm_2(); 20];
        let ids = place_batch(&mut placer, &mut cluster, vms).unwrap();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut placer = TwoChoicePlacer::new(book(), seed);
            let mut cluster = Cluster::homogeneous(catalog::geni_pm(), 8);
            let vms: Vec<_> = (0..16)
                .map(|i| {
                    if i % 2 == 0 {
                        catalog::geni_vm_2()
                    } else {
                        catalog::geni_vm_4()
                    }
                })
                .collect();
            place_batch(&mut placer, &mut cluster, vms).unwrap();
            cluster
                .used_pms()
                .map(|pm| cluster.pm(pm).vm_count())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn falls_back_to_exhaustive_scan() {
        // With poll size 1 and a nearly-full cluster the sample often
        // misses; placement must still succeed while capacity remains.
        let mut placer = TwoChoicePlacer::with_poll_size(book(), 3, 1);
        let mut cluster = Cluster::homogeneous(catalog::geni_pm(), 4);
        // 4 PMs x 16 slots = 64 slots; 24 x [1,1] = 48 slots. A poll of
        // one frequently samples a full PM; the exhaustive fallback must
        // still place everything.
        let vms = vec![catalog::geni_vm_2(); 24];
        let ids = place_batch(&mut placer, &mut cluster, vms).unwrap();
        assert_eq!(ids.len(), 24);
    }

    #[test]
    #[should_panic(expected = "poll size")]
    fn zero_poll_size_rejected() {
        let _ = TwoChoicePlacer::with_poll_size(book(), 0, 0);
    }
}
