//! Runtime invariant audit for placement correctness.
//!
//! Four invariant families guard the model end to end (DESIGN.md §8):
//!
//! 1. **Capacity** — per-dimension PM usage recomputed from resident VMs
//!    matches the tracked counters and never exceeds capacity;
//! 2. **Anti-collocation** — every assignment lands each vCPU on a
//!    distinct core and each virtual disk on a distinct physical disk,
//!    with the shape the VM demands;
//! 3. **Graph edges** — every edge `A → B` of a profile graph is a legal
//!    single-VM transition: `B` is reachable from `A` by hosting exactly
//!    one VM of the graph's type set, and usage strictly increases;
//! 4. **Score distribution** — PageRank score vectors are non-negative
//!    and sum to `1 ± ε` before the BPRU discount, and BPRU lies in
//!    `(0, 1]`.
//!
//! The checkers are pure observers: they never mutate state and return
//! every violation found rather than stopping at the first. The sim
//! engine consults [`check_cluster`] after the initial allocation and
//! after every scan's migrations (debug-assert-gated in plain runs), and
//! the `pagerankvm audit` CLI subcommand runs all four families against
//! a full simulation.

use crate::graph::ProfileGraph;
use crate::table::{ScoreBook, ScoreTable};
use prvm_model::{Assignment, Cluster, DiskGb, MemMib, Mhz, Pm, VmSpec};
use std::collections::HashSet;
use std::fmt;

/// Tolerance on the PageRank probability mass (`Σ scores = 1 ± ε`).
pub const SCORE_SUM_EPSILON: f64 = 1e-6;

/// The four invariant families the audit layer validates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Per-dimension usage consistent with residents and within capacity.
    Capacity,
    /// Distinct-dimension assignments of the demanded shape.
    AntiCollocation,
    /// Profile-graph edges are legal single-VM transitions.
    GraphEdges,
    /// PageRank mass and BPRU range.
    ScoreDistribution,
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Invariant::Capacity => "capacity",
            Invariant::AntiCollocation => "anti-collocation",
            Invariant::GraphEdges => "graph-edges",
            Invariant::ScoreDistribution => "score-distribution",
        };
        f.write_str(name)
    }
}

/// One broken invariant, with enough context to locate the culprit.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which family failed.
    pub invariant: Invariant,
    /// What was being checked (`pm 3`, `vm 17 on pm 3`, `node 41`, …).
    pub subject: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.invariant, self.subject, self.detail)
    }
}

/// Outcome of an audit pass: how much was checked, per family, and every
/// violation found.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Capacity comparisons performed (per PM dimension group).
    pub capacity_checks: u64,
    /// Assignments validated for anti-collocation.
    pub anti_collocation_checks: u64,
    /// Graph edges validated as legal transitions.
    pub edge_checks: u64,
    /// Score entries validated (PageRank + BPRU).
    pub score_checks: u64,
    /// Everything that failed.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// `true` when no invariant was violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.capacity_checks += other.capacity_checks;
        self.anti_collocation_checks += other.anti_collocation_checks;
        self.edge_checks += other.edge_checks;
        self.score_checks += other.score_checks;
        self.violations.extend(other.violations);
    }

    fn violation(&mut self, invariant: Invariant, subject: impl Into<String>, detail: String) {
        self.violations.push(Violation {
            invariant,
            subject: subject.into(),
            detail,
        });
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "capacity: {} checks; anti-collocation: {} checks; \
             graph-edges: {} checks; score-distribution: {} checks",
            self.capacity_checks, self.anti_collocation_checks, self.edge_checks, self.score_checks
        )?;
        if self.violations.is_empty() {
            write!(f, "no violations")
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Family 2 on raw parts: does `assignment` satisfy the anti-collocation
/// constraint and the shape `vm` demands on a PM with `cores` cores and
/// `disks` disks? Exposed raw so tests can probe states the safe
/// [`Cluster`] API refuses to construct.
pub fn check_assignment_shape(
    vm: &VmSpec,
    assignment: &Assignment,
    cores: usize,
    disks: usize,
    subject: &str,
    report: &mut AuditReport,
) {
    report.anti_collocation_checks += 1;
    if !assignment.is_anti_collocated() {
        report.violation(
            Invariant::AntiCollocation,
            subject,
            format!(
                "assignment reuses a dimension: cores {:?}, disks {:?}",
                assignment.cores, assignment.disks
            ),
        );
    }
    let want_cores = prvm_model::units::convert::u32_to_usize(vm.vcpus);
    if assignment.cores.len() != want_cores {
        report.violation(
            Invariant::AntiCollocation,
            subject,
            format!(
                "{} vCPUs assigned to {} cores",
                vm.vcpus,
                assignment.cores.len()
            ),
        );
    }
    if assignment.disks.len() != vm.disks().len() {
        report.violation(
            Invariant::AntiCollocation,
            subject,
            format!(
                "{} virtual disks assigned to {} physical disks",
                vm.disks().len(),
                assignment.disks.len()
            ),
        );
    }
    if let Some(&c) = assignment.cores.iter().find(|&&c| c >= cores) {
        report.violation(
            Invariant::AntiCollocation,
            subject,
            format!("core index {c} out of range (PM has {cores})"),
        );
    }
    if let Some(&d) = assignment.disks.iter().find(|&&d| d >= disks) {
        report.violation(
            Invariant::AntiCollocation,
            subject,
            format!("disk index {d} out of range (PM has {disks})"),
        );
    }
}

/// Family 1 on raw parts: recomputed usage vs. tracked usage vs. capacity
/// for one PM-shaped set of dimensions. `label` names the PM in subjects.
#[allow(clippy::too_many_arguments)]
fn check_capacity_raw(
    label: &str,
    core_cap: Mhz,
    mem_cap: MemMib,
    disk_caps: &[DiskGb],
    tracked_cores: &[Mhz],
    tracked_mem: MemMib,
    tracked_disks: &[DiskGb],
    residents: &[(&VmSpec, &Assignment)],
    report: &mut AuditReport,
) {
    let mut cores = vec![Mhz::ZERO; tracked_cores.len()];
    let mut mem = MemMib::ZERO;
    let mut disks = vec![DiskGb::ZERO; tracked_disks.len()];
    for (vm, assignment) in residents {
        for &c in &assignment.cores {
            if let Some(slot) = cores.get_mut(c) {
                *slot += vm.vcpu_mhz;
            }
        }
        mem += vm.memory;
        for (&d, &demand) in assignment.disks.iter().zip(vm.disks()) {
            if let Some(slot) = disks.get_mut(d) {
                *slot += demand;
            }
        }
    }
    report.capacity_checks += 3;
    for (i, (&recomputed, &tracked)) in cores.iter().zip(tracked_cores).enumerate() {
        if recomputed != tracked {
            report.violation(
                Invariant::Capacity,
                label,
                format!("core {i}: tracked {tracked}, residents sum to {recomputed}"),
            );
        }
        if tracked > core_cap {
            report.violation(
                Invariant::Capacity,
                label,
                format!("core {i}: used {tracked} exceeds capacity {core_cap}"),
            );
        }
    }
    if mem != tracked_mem {
        report.violation(
            Invariant::Capacity,
            label,
            format!("memory: tracked {tracked_mem}, residents sum to {mem}"),
        );
    }
    if tracked_mem > mem_cap {
        report.violation(
            Invariant::Capacity,
            label,
            format!("memory: used {tracked_mem} exceeds capacity {mem_cap}"),
        );
    }
    for (i, (&recomputed, &tracked)) in disks.iter().zip(tracked_disks).enumerate() {
        if recomputed != tracked {
            report.violation(
                Invariant::Capacity,
                label,
                format!("disk {i}: tracked {tracked}, residents sum to {recomputed}"),
            );
        }
        let cap = disk_caps.get(i).copied().unwrap_or(DiskGb::ZERO);
        if tracked > cap {
            report.violation(
                Invariant::Capacity,
                label,
                format!("disk {i}: used {tracked} exceeds capacity {cap}"),
            );
        }
    }
}

/// Families 1 and 2 for one live PM.
#[must_use]
pub fn check_pm(pm: &Pm, label: &str) -> AuditReport {
    let mut report = AuditReport::default();
    let residents: Vec<(&VmSpec, &Assignment)> = pm
        .vms()
        .map(|(_, vm, assignment)| (vm, assignment))
        .collect();
    check_capacity_raw(
        label,
        pm.spec().core_mhz,
        pm.spec().memory,
        pm.spec().disks(),
        pm.core_used(),
        pm.mem_used(),
        pm.disk_used(),
        &residents,
        &mut report,
    );
    for (id, vm, assignment) in pm.vms() {
        let subject = format!("vm {} on {label}", id.0);
        check_assignment_shape(
            vm,
            assignment,
            pm.core_used().len(),
            pm.disk_used().len(),
            &subject,
            &mut report,
        );
    }
    report
}

/// Families 1 and 2 across every PM of a cluster, plus the availability
/// rule the fault layer introduces: a PM marked down must not host VMs
/// (its residents are evacuated the instant it crashes).
#[must_use]
pub fn check_cluster(cluster: &Cluster) -> AuditReport {
    let mut report = AuditReport::default();
    for (i, pm) in cluster.pms().iter().enumerate() {
        if pm.is_empty() {
            continue;
        }
        report.capacity_checks += 1;
        if cluster.is_down(prvm_model::PmId(i)) {
            report.violation(
                Invariant::Capacity,
                format!("pm {i}"),
                format!("down PM still hosts {} VM(s)", pm.vm_count()),
            );
        }
        report.merge(check_pm(pm, &format!("pm {i}")));
    }
    report
}

/// Family 3: every edge of `graph` is a legal single-VM transition.
#[must_use]
pub fn check_graph(graph: &ProfileGraph) -> AuditReport {
    let mut report = AuditReport::default();
    let space = graph.space();
    for id in graph.node_ids() {
        let from = graph.profile(id);
        let legal: HashSet<crate::profile::Profile> = graph
            .vm_types()
            .iter()
            .flat_map(|vm| space.place(from, vm))
            .collect();
        let mut seen = HashSet::new();
        for &succ in graph.successors(id) {
            report.edge_checks += 1;
            let to = graph.profile(succ);
            if !seen.insert(succ) {
                report.violation(
                    Invariant::GraphEdges,
                    format!("node {id}"),
                    format!("duplicate edge to node {succ} ({to})"),
                );
            }
            if !legal.contains(to) {
                report.violation(
                    Invariant::GraphEdges,
                    format!("node {id}"),
                    format!("edge {from} -> {to} is not a single-VM transition"),
                );
            }
            let used_from: u64 = from.values().iter().map(|&v| u64::from(v)).sum();
            let used_to: u64 = to.values().iter().map(|&v| u64::from(v)).sum();
            if used_to <= used_from {
                report.violation(
                    Invariant::GraphEdges,
                    format!("node {id}"),
                    format!("edge {from} -> {to} does not increase usage"),
                );
            }
        }
    }
    report
}

/// Family 4: PageRank mass and BPRU range for one score table.
#[must_use]
pub fn check_scores(table: &ScoreTable) -> AuditReport {
    let mut report = AuditReport::default();
    check_score_vector(table.pagerank().scores.as_slice(), "pagerank", &mut report);
    let discount = crate::bpru::bpru(table.graph());
    for (id, &b) in discount.iter().enumerate() {
        report.score_checks += 1;
        if !(b > 0.0 && b <= 1.0) {
            report.violation(
                Invariant::ScoreDistribution,
                format!("node {id}"),
                format!("BPRU {b} outside (0, 1]"),
            );
        }
    }
    report
}

/// Family 4 on a raw score vector: non-negative entries summing to
/// `1 ± ε`. Exposed raw so tests can feed deliberately broken vectors.
pub fn check_score_vector(scores: &[f64], label: &str, report: &mut AuditReport) {
    let mut sum = 0.0;
    for (i, &s) in scores.iter().enumerate() {
        report.score_checks += 1;
        if !s.is_finite() || s < 0.0 {
            report.violation(
                Invariant::ScoreDistribution,
                format!("{label} node {i}"),
                format!("score {s} is negative or non-finite"),
            );
        }
        sum += s;
    }
    if (sum - 1.0).abs() > SCORE_SUM_EPSILON {
        report.violation(
            Invariant::ScoreDistribution,
            label,
            format!("scores sum to {sum}, expected 1 +/- {SCORE_SUM_EPSILON}"),
        );
    }
}

/// Families 3 and 4 for every table of a score book.
#[must_use]
pub fn check_book(book: &ScoreBook) -> AuditReport {
    let mut report = AuditReport::default();
    for (_, table) in book.tables() {
        report.merge(check_graph(table.graph()));
        report.merge(check_scores(table));
    }
    report
}

/// Debug-build guard: assert that `cluster` passes families 1 and 2.
/// Compiled to nothing in release builds.
pub fn debug_check_cluster(cluster: &Cluster, context: &str) {
    if cfg!(debug_assertions) {
        let report = check_cluster(cluster);
        debug_assert!(
            report.is_clean(),
            "cluster audit failed after {context}:\n{report}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphLimits;
    use crate::pagerank::PageRankConfig;
    use crate::profile::{ProfileSpace, ProfileVm};
    use prvm_model::{catalog, Quantizer};

    fn paper_table() -> ScoreTable {
        ScoreTable::build(
            ProfileSpace::uniform(4, 4),
            vec![
                ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
                ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
            ],
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .unwrap()
    }

    #[test]
    fn clean_cluster_audits_clean() {
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 2);
        let vm = catalog::vm_m3_large();
        let pm = cluster.pm(prvm_model::PmId(0));
        let assignment = pm.first_feasible(&vm).unwrap();
        cluster.place(prvm_model::PmId(0), vm, assignment).unwrap();
        let report = check_cluster(&cluster);
        assert!(report.is_clean(), "{report}");
        assert!(report.capacity_checks > 0);
        assert!(report.anti_collocation_checks > 0);
    }

    #[test]
    fn collocated_assignment_is_flagged() {
        // Bypass the safe API: a 2-vCPU VM squeezed onto one core.
        let vm = catalog::vm_m3_large();
        let bad = Assignment::new(vec![0, 0], vec![0]);
        let mut report = AuditReport::default();
        check_assignment_shape(&vm, &bad, 8, 2, "vm 0 on pm 0", &mut report);
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::AntiCollocation));
    }

    #[test]
    fn out_of_range_core_is_flagged() {
        let vm = catalog::vm_m3_large();
        let bad = Assignment::new(vec![0, 99], vec![0]);
        let mut report = AuditReport::default();
        check_assignment_shape(&vm, &bad, 8, 2, "vm 0 on pm 0", &mut report);
        assert!(report
            .violations
            .iter()
            .any(|v| v.detail.contains("out of range")));
    }

    #[test]
    fn capacity_overflow_is_flagged() {
        // Tracked usage beyond capacity, recomputed from a consistent
        // resident set, must trip the capacity family.
        let vm = catalog::vm_m3_large();
        let assignment = Assignment::new(vec![0, 1], vec![0]);
        let residents = vec![(&vm, &assignment)];
        let mut tracked_cores = vec![Mhz::ZERO; 8];
        tracked_cores[0] = vm.vcpu_mhz;
        tracked_cores[1] = vm.vcpu_mhz;
        let mut report = AuditReport::default();
        check_capacity_raw(
            "pm 0",
            Mhz(1), // capacity far below the tracked usage
            MemMib(u64::MAX),
            &[DiskGb(u64::MAX)],
            &tracked_cores,
            vm.memory,
            &[vm.disks().first().copied().unwrap_or(DiskGb::ZERO)],
            &residents,
            &mut report,
        );
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::Capacity && v.detail.contains("exceeds")));
    }

    #[test]
    fn tracked_usage_mismatch_is_flagged() {
        // A tracked counter that disagrees with the resident set.
        let vm = catalog::vm_m3_large();
        let assignment = Assignment::new(vec![0, 1], vec![0]);
        let residents = vec![(&vm, &assignment)];
        let tracked_cores = vec![Mhz::ZERO; 8]; // should show the VM
        let mut report = AuditReport::default();
        check_capacity_raw(
            "pm 0",
            Mhz(u64::MAX),
            MemMib(u64::MAX),
            &[DiskGb(u64::MAX), DiskGb(u64::MAX)],
            &tracked_cores,
            vm.memory,
            &[DiskGb::ZERO, DiskGb::ZERO],
            &residents,
            &mut report,
        );
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::Capacity && v.detail.contains("residents sum")));
    }

    #[test]
    fn down_pm_hosting_vms_is_flagged() {
        // mark_down does not evacuate; a cluster left in that state is
        // exactly what the availability rule must catch.
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 2);
        let vm = catalog::vm_m3_large();
        let assignment = cluster.pm(prvm_model::PmId(0)).first_feasible(&vm).unwrap();
        cluster.place(prvm_model::PmId(0), vm, assignment).unwrap();
        assert!(check_cluster(&cluster).is_clean());
        cluster.mark_down(prvm_model::PmId(0)).unwrap();
        let report = check_cluster(&cluster);
        assert!(report
            .violations
            .iter()
            .any(|v| v.detail.contains("down PM still hosts")));
    }

    #[test]
    fn paper_graph_and_scores_audit_clean() {
        let table = paper_table();
        let graph_report = check_graph(table.graph());
        assert!(graph_report.is_clean(), "{graph_report}");
        assert!(graph_report.edge_checks > 0);
        let score_report = check_scores(&table);
        assert!(score_report.is_clean(), "{score_report}");
        assert!(score_report.score_checks > 0);
    }

    #[test]
    fn ec2_book_audits_clean() {
        let book = ScoreBook::build(
            Quantizer {
                core_slots: 2,
                mem_levels: 4,
                disk_levels: 2,
            },
            &catalog::ec2_pm_types(),
            &catalog::ec2_vm_types(),
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .unwrap();
        let report = check_book(&book);
        assert!(report.is_clean(), "{report}");
        assert!(report.edge_checks > 0 && report.score_checks > 0);
    }

    #[test]
    fn broken_score_vector_is_flagged() {
        let mut report = AuditReport::default();
        check_score_vector(&[0.5, -0.1, 0.6], "pagerank", &mut report);
        assert_eq!(report.violations.len(), 1, "{report}");
        let mut report = AuditReport::default();
        check_score_vector(&[0.5, 0.1], "pagerank", &mut report);
        assert!(report
            .violations
            .iter()
            .any(|v| v.detail.contains("sum to")));
    }

    #[test]
    fn debug_guard_accepts_clean_cluster() {
        let cluster = Cluster::homogeneous(catalog::pm_m3(), 1);
        debug_check_cluster(&cluster, "test");
    }

    #[test]
    fn report_display_names_all_families() {
        let mut report = AuditReport::default();
        report.violation(Invariant::Capacity, "pm 0", "x".into());
        report.violation(Invariant::AntiCollocation, "vm 0", "x".into());
        report.violation(Invariant::GraphEdges, "node 0", "x".into());
        report.violation(Invariant::ScoreDistribution, "node 0", "x".into());
        let text = report.to_string();
        for family in [
            "capacity",
            "anti-collocation",
            "graph-edges",
            "score-distribution",
        ] {
            assert!(text.contains(family), "missing {family} in {text}");
        }
        assert!(!report.is_clean());
    }
}
