//! The Profile–PageRank score table (§V-B).
//!
//! "We produce a Profile-PageRank score table from the graph, in which each
//! profile is associated with a rank score." The table is what Algorithm 2
//! consults at placement time; it is rebuilt only when the VM-type set
//! changes. A [`ScoreBook`] bundles one table per PM type together with the
//! [`Quantizer`] that maps live machines into the profile space.

use crate::bpru::bpru;
use crate::graph::{ix, GraphError, GraphLimits, ProfileGraph};
use crate::pagerank::{pagerank, PageRankConfig, PageRankResult};
use crate::profile::{Profile, ProfileSpace, ProfileVm};
use prvm_model::{Pm, PmSpec, Quantizer, VmSpec};

/// Final per-profile scores for one PM type:
/// `PR(P_i) * BPRU(P_i)` (Algorithm 1, line 19).
#[derive(Debug, Clone)]
#[must_use]
pub struct ScoreTable {
    graph: ProfileGraph,
    scores: Vec<f64>,
    pagerank: PageRankResult,
}

impl ScoreTable {
    /// Build graph, run PageRank, apply the BPRU discount.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from graph construction.
    pub fn build(
        space: ProfileSpace,
        vm_types: Vec<ProfileVm>,
        config: &PageRankConfig,
        limits: GraphLimits,
    ) -> Result<Self, GraphError> {
        let graph = ProfileGraph::build(space, vm_types, limits)?;
        let pr = pagerank(&graph, config);
        let discount = bpru(&graph);
        let scores = pr
            .scores
            .iter()
            .zip(&discount)
            .map(|(&p, &b)| p * b)
            .collect();
        Ok(Self {
            graph,
            scores,
            pagerank: pr,
        })
    }

    /// Like [`Self::build`], but over **all** canonical profiles of the
    /// space rather than just those reachable from empty — the setting of
    /// the paper's motivation section (§III-B), whose example profile
    /// `[4,3,3,3]` no in-catalog VM sequence produces.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from graph construction.
    pub fn build_full(
        space: ProfileSpace,
        vm_types: Vec<ProfileVm>,
        config: &PageRankConfig,
        limits: GraphLimits,
    ) -> Result<Self, GraphError> {
        let graph = ProfileGraph::build_full(space, vm_types, limits)?;
        let pr = pagerank(&graph, config);
        let discount = bpru(&graph);
        let scores = pr
            .scores
            .iter()
            .zip(&discount)
            .map(|(&p, &b)| p * b)
            .collect();
        Ok(Self {
            graph,
            scores,
            pagerank: pr,
        })
    }

    /// The underlying profile graph.
    #[must_use]
    pub fn graph(&self) -> &ProfileGraph {
        &self.graph
    }

    /// The profile space the table is defined over.
    #[must_use]
    pub fn space(&self) -> &ProfileSpace {
        self.graph.space()
    }

    /// Raw PageRank output (before the BPRU discount).
    #[must_use]
    pub fn pagerank(&self) -> &PageRankResult {
        &self.pagerank
    }

    /// Final score of a profile, or `None` if the profile is not reachable
    /// in the graph (e.g. an over-committed fallback placement).
    #[must_use]
    pub fn score(&self, profile: &Profile) -> Option<f64> {
        self.graph.node(profile).map(|id| self.scores[ix(id)])
    }

    /// Iterate `(profile, score)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Profile, f64)> + '_ {
        self.graph
            .node_ids()
            .map(move |id| (self.graph.profile(id), self.scores[ix(id)]))
    }

    /// Number of profiles in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// `true` if the table has no entries (cannot occur for a built table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

/// One score table per PM type, plus the quantizer, shared by the placer
/// and the eviction policy.
/// Tables are stored in first-seen `pm_specs` order (not a hash map), so
/// every iteration over the book is deterministic — a D001 requirement:
/// the book sits on the placement path and downstream audits/reports
/// walk it.
#[derive(Debug)]
#[must_use]
pub struct ScoreBook {
    quantizer: Quantizer,
    tables: Vec<(PmSpec, ScoreTable)>,
}

impl ScoreBook {
    /// Build a table for every PM type in `pm_specs` against the VM set
    /// `vm_types`.
    ///
    /// # Errors
    ///
    /// Fails if any PM type's profile graph cannot be built. A PM type for
    /// which *no* VM type fits is rejected ([`GraphError::NoUsableVmTypes`])
    /// — such a PM could never host anything anyway.
    pub fn build(
        quantizer: Quantizer,
        pm_specs: &[PmSpec],
        vm_types: &[VmSpec],
        config: &PageRankConfig,
        limits: GraphLimits,
    ) -> Result<Self, GraphError> {
        let _span = prvm_obs::Span::enter("score_book");
        let mut tables: Vec<(PmSpec, ScoreTable)> = Vec::new();
        for pm in pm_specs {
            if tables.iter().any(|(spec, _)| spec == pm) {
                continue;
            }
            let qpm = quantizer.quantize_pm(pm);
            let space = ProfileSpace::from_quantized_pm(&qpm);
            let vms: Vec<ProfileVm> = vm_types
                .iter()
                .filter_map(|v| space.vm_demand(&quantizer.quantize_vm(v, pm)))
                .collect();
            let table = ScoreTable::build(space, vms, config, limits)?;
            tables.push((pm.clone(), table));
        }
        prvm_obs::event("score_book.built")
            .field("pm_types", tables.len())
            .emit();
        Ok(Self { quantizer, tables })
    }

    /// The quantizer shared by all tables.
    #[must_use]
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// The table for a PM type, if one was built. Linear scan: a book
    /// holds one table per PM *type* (a handful), not per PM.
    #[must_use]
    pub fn table(&self, pm: &PmSpec) -> Option<&ScoreTable> {
        self.tables
            .iter()
            .find(|(spec, _)| spec == pm)
            .map(|(_, t)| t)
    }

    /// Iterate every `(PM type, table)` pair in first-seen build order.
    pub fn tables(&self) -> impl Iterator<Item = (&PmSpec, &ScoreTable)> {
        self.tables.iter().map(|(spec, t)| (spec, t))
    }

    /// Number of PM types covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if no PM type is covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Score of a live PM's *current* profile, or `None` when the PM type
    /// is unknown or the profile is outside the graph.
    #[must_use]
    pub fn score_pm(&self, pm: &Pm) -> Option<f64> {
        let table = self.table(pm.spec())?;
        let (cores, mem, disks) = self.quantizer.quantized_usage(pm);
        let profile = self.usage_profile(table.space(), &cores, mem, &disks);
        table.score(&profile)
    }

    /// Canonicalise raw quantized usage into the given space.
    ///
    /// Kind order follows [`ProfileSpace::from_quantized_pm`]: cores, then
    /// memory (if present), then disks (if present).
    ///
    /// # Panics
    ///
    /// Panics if the space contains a kind other than `cores`, `mem` or
    /// `disks`; spaces built by [`ProfileSpace::from_quantized_pm`] never
    /// do.
    #[must_use]
    pub fn usage_profile(
        &self,
        space: &ProfileSpace,
        cores: &[u64],
        mem: u64,
        disks: &[u64],
    ) -> Profile {
        let mem_slice = [mem];
        let mut parts: Vec<&[u64]> = vec![cores];
        for kind in space.kinds().iter().skip(1) {
            match kind.name.as_str() {
                "mem" => parts.push(&mem_slice),
                "disks" => parts.push(disks),
                other => unreachable!("unexpected kind {other}"),
            }
        }
        space.canonicalize(&parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_model::catalog;

    fn paper_table() -> ScoreTable {
        let space = ProfileSpace::uniform(4, 4);
        let vms = vec![
            ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
            ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
        ];
        ScoreTable::build(
            space,
            vms,
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .unwrap()
    }

    fn score(t: &ScoreTable, v: &[u64]) -> f64 {
        t.score(&t.space().canonicalize(&[v])).expect("reachable")
    }

    #[test]
    fn motivation_example_ranking_holds() {
        // §III-B: [3,3,2,2] must outrank [4,3,3,3] even though the latter
        // has higher utilization and lower variance — THE paper's central
        // claim. [4,3,3,3] has an odd total so it is unreachable by
        // in-catalog VMs; the motivation reasons over the full space.
        let space = ProfileSpace::uniform(4, 4);
        let vms = vec![
            ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
            ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
        ];
        let t = ScoreTable::build_full(
            space,
            vms,
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .unwrap();
        assert!(
            score(&t, &[3, 3, 2, 2]) > score(&t, &[4, 3, 3, 3]),
            "pagerank table must prefer [3,3,2,2]: {} vs {}",
            score(&t, &[3, 3, 2, 2]),
            score(&t, &[4, 3, 3, 3]),
        );
    }

    #[test]
    fn full_table_covers_every_canonical_profile() {
        let space = ProfileSpace::uniform(4, 4);
        let vms = vec![ProfileVm::from_demands("[1,1]", vec![vec![1, 1]])];
        let t = ScoreTable::build_full(
            space,
            vms,
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .unwrap();
        // Multisets of size 4 over {0..4}: C(8,4) = 70.
        assert_eq!(t.len(), 70);
        // Odd-total profiles now have scores too.
        assert!(t.score(&t.space().canonicalize(&[&[1, 0, 0, 0]])).is_some());
    }

    #[test]
    fn quality_example_ranking_holds() {
        // §V-A / Fig. 2: [3,3,3,3] has higher quality than [4,4,2,2].
        let t = paper_table();
        assert!(score(&t, &[3, 3, 3, 3]) > score(&t, &[4, 4, 2, 2]));
    }

    #[test]
    fn unreachable_profile_scores_none() {
        let t = paper_table();
        // Odd total usage is unreachable with even-sized VM shapes.
        let p = t.space().canonicalize(&[&[1, 0, 0, 0]]);
        assert_eq!(t.score(&p), None);
    }

    #[test]
    fn iter_covers_all_nodes() {
        let t = paper_table();
        assert_eq!(t.iter().count(), t.len());
        assert!(!t.is_empty());
        assert!(t.iter().all(|(_, s)| s > 0.0));
    }

    #[test]
    fn book_builds_tables_for_ec2_catalog() {
        // A coarse quantizer keeps this test quick.
        let q = Quantizer {
            core_slots: 2,
            mem_levels: 4,
            disk_levels: 2,
        };
        let book = ScoreBook::build(
            q,
            &catalog::ec2_pm_types(),
            &catalog::ec2_vm_types(),
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .unwrap();
        assert_eq!(book.len(), 2);
        assert!(book.table(&catalog::pm_m3()).is_some());
        assert!(book.table(&catalog::pm_c3()).is_some());
        assert!(book.table(&catalog::geni_pm()).is_none());
    }

    #[test]
    fn book_scores_live_pms() {
        let q = Quantizer {
            core_slots: 2,
            mem_levels: 4,
            disk_levels: 2,
        };
        let book = ScoreBook::build(
            q,
            &[catalog::pm_m3()],
            &catalog::ec2_vm_types(),
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .unwrap();
        let mut pm = Pm::new(catalog::pm_m3());
        let empty_score = book.score_pm(&pm).expect("empty profile is reachable");
        assert!(empty_score > 0.0);

        let vm = catalog::vm_m3_large();
        let a = pm.first_feasible(&vm).unwrap();
        pm.place(prvm_model::VmId(0), vm, a).unwrap();
        let placed_score = book.score_pm(&pm).expect("one-vm profile is reachable");
        assert!(placed_score > 0.0);
    }

    #[test]
    fn duplicate_pm_specs_build_one_table() {
        let q = Quantizer {
            core_slots: 2,
            mem_levels: 2,
            disk_levels: 2,
        };
        let specs = vec![catalog::pm_m3(), catalog::pm_m3(), catalog::pm_m3()];
        let book = ScoreBook::build(
            q,
            &specs,
            &catalog::ec2_vm_types(),
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .unwrap();
        assert_eq!(book.len(), 1);
    }
}
