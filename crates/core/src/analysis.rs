//! Analysis helpers over profile graphs and score tables: exact path
//! counting (the paper's "ways to develop to the best profile"), rank
//! statistics, and top-profile reports — used by the figure binaries and
//! by anyone inspecting why the placer prefers one profile over another.

use crate::graph::{ix, NodeId, ProfileGraph};
use crate::profile::Profile;
use crate::table::ScoreTable;
use prvm_model::units::convert;

/// Exact number of distinct placement *sequences* from each node to the
/// best profile — the quantity the paper's §V-A quality argument counts
/// ("there are two ways for `[3,3,3,3]` to develop to the best profile").
///
/// Counts paths in the profile graph (each edge = hosting one VM giving a
/// distinct resulting profile), saturating at `u64::MAX`. Nodes that
/// cannot reach the best profile get 0. Returns `None` when the best
/// profile is not in the graph at all.
#[must_use]
pub fn paths_to_best(graph: &ProfileGraph) -> Option<Vec<u64>> {
    let best = graph.node(&graph.space().best_profile())?;
    let n = graph.node_count();
    let mut counts = vec![0u64; n];
    counts[ix(best)] = 1;

    // Reverse topological order (decreasing total usage) makes this a
    // single sweep: a node's count is the sum over its successors'.
    let total = |id: NodeId| -> u64 {
        graph
            .profile(id)
            .values()
            .iter()
            .map(|&v| u64::from(v))
            .sum()
    };
    let mut order: Vec<NodeId> = graph.node_ids().collect();
    order.sort_unstable_by_key(|&id| std::cmp::Reverse(total(id)));
    for id in order {
        if id == best {
            continue;
        }
        let mut sum = 0u64;
        for &s in graph.successors(id) {
            sum = sum.saturating_add(counts[ix(s)]);
        }
        counts[ix(id)] = sum;
    }
    Some(counts)
}

/// Summary statistics of a score table's final ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct RankStats {
    /// Number of profiles.
    pub profiles: usize,
    /// Minimum final score.
    pub min: f64,
    /// Maximum final score.
    pub max: f64,
    /// Mean final score.
    pub mean: f64,
    /// Fraction of profiles that can still reach the best profile
    /// (BPRU = 1 ⇔ undiscounted).
    pub best_reaching_fraction: f64,
}

/// Compute [`RankStats`] for a table.
///
/// # Panics
///
/// Panics if the table is empty (cannot be constructed).
#[must_use]
pub fn rank_stats(table: &ScoreTable) -> RankStats {
    let graph = table.graph();
    let bpru = crate::bpru::bpru(graph);
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut n = 0usize;
    for (_, s) in table.iter() {
        min = min.min(s);
        max = max.max(s);
        sum += s;
        n += 1;
    }
    assert!(n > 0, "score table is never empty");
    let reaching = bpru.iter().filter(|&&b| (b - 1.0).abs() < 1e-12).count();
    RankStats {
        profiles: n,
        min,
        max,
        mean: sum / convert::usize_to_f64(n),
        best_reaching_fraction: convert::usize_to_f64(reaching) / convert::usize_to_f64(n),
    }
}

/// The `k` highest-scored profiles, descending.
#[must_use]
pub fn top_profiles(table: &ScoreTable, k: usize) -> Vec<(Profile, f64)> {
    let mut all: Vec<(Profile, f64)> = table.iter().map(|(p, s)| (p.clone(), s)).collect();
    all.sort_by(|a, b| b.1.total_cmp(&a.1));
    all.truncate(k);
    all
}

/// Spearman-style rank agreement between two tables over their shared
/// profiles: the fraction of profile *pairs* the two tables order the
/// same way (1.0 = identical ranking, 0.0 = fully inverted). Used by the
/// orientation ablation.
#[must_use]
pub fn pairwise_agreement(a: &ScoreTable, b: &ScoreTable) -> f64 {
    let shared: Vec<(f64, f64)> = a
        .iter()
        .filter_map(|(p, sa)| b.score(p).map(|sb| (sa, sb)))
        .collect();
    if shared.len() < 2 {
        return 1.0;
    }
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..shared.len() {
        for j in (i + 1)..shared.len() {
            let (ai, bi) = shared[i];
            let (aj, bj) = shared[j];
            if ai == aj || bi == bj {
                continue;
            }
            total += 1;
            if ((ai > aj) && (bi > bj)) || ((ai < aj) && (bi < bj)) {
                agree += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        convert::usize_to_f64(agree) / convert::usize_to_f64(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphLimits;
    use crate::pagerank::{Orientation, PageRankConfig};
    use crate::profile::{ProfileSpace, ProfileVm};

    fn paper_table() -> ScoreTable {
        ScoreTable::build(
            ProfileSpace::uniform(4, 4),
            vec![
                ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
                ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
            ],
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .unwrap()
    }

    #[test]
    fn paths_to_best_matches_paper_quality_example() {
        // §V-A: "two ways for [3,3,3,3]" ([1,1,1,1]; or [1,1]+[1,1]) and
        // "one way for [4,4,2,2]" ([1,1]+[1,1] on the free dims — but the
        // two [1,1]s land identically, so one distinct way per step;
        // counting sequences: [4,4,2,2]->[4,4,3,3]->[4,4,4,4] is 1 path).
        let t = paper_table();
        let g = t.graph();
        let counts = paths_to_best(g).expect("best profile reachable");
        let node = |raw: &[u64]| g.node(&g.space().canonicalize(&[raw])).unwrap() as usize;
        assert_eq!(counts[node(&[4, 4, 2, 2])], 1);
        assert_eq!(counts[node(&[3, 3, 3, 3])], 2);
        // The best profile itself: exactly the empty path.
        assert_eq!(counts[node(&[4, 4, 4, 4])], 1);
        // And the ordering the paper argues from:
        assert!(counts[node(&[3, 3, 3, 3])] > counts[node(&[4, 4, 2, 2])]);
    }

    #[test]
    fn paths_are_zero_exactly_when_bpru_discounts() {
        let t = paper_table();
        let g = t.graph();
        let counts = paths_to_best(g).unwrap();
        let bpru = crate::bpru::bpru(g);
        for id in g.node_ids() {
            let reaches = counts[id as usize] > 0;
            let undiscounted = (bpru[id as usize] - 1.0).abs() < 1e-12;
            assert_eq!(reaches, undiscounted, "node {id}");
        }
    }

    #[test]
    fn rank_stats_are_sane() {
        let t = paper_table();
        let s = rank_stats(&t);
        assert_eq!(s.profiles, t.len());
        assert!(s.min > 0.0 && s.min <= s.mean && s.mean <= s.max);
        assert!(s.best_reaching_fraction > 0.0 && s.best_reaching_fraction <= 1.0);
    }

    #[test]
    fn top_profiles_are_sorted_and_bounded() {
        let t = paper_table();
        let top = top_profiles(&t, 5);
        assert_eq!(top.len(), 5);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        let all = top_profiles(&t, usize::MAX);
        assert_eq!(all.len(), t.len());
    }

    #[test]
    fn orientations_disagree_substantially() {
        let fwd = ScoreTable::build(
            ProfileSpace::uniform(4, 4),
            vec![
                ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
                ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
            ],
            &PageRankConfig {
                orientation: Orientation::TowardFuller,
                ..PageRankConfig::default()
            },
            GraphLimits::default(),
        )
        .unwrap();
        let rev = paper_table();
        let agreement = pairwise_agreement(&fwd, &rev);
        assert!(agreement < 0.9, "orientations nearly agree: {agreement}");
        // Self-agreement is perfect.
        assert!((pairwise_agreement(&rev, &rev) - 1.0).abs() < 1e-12);
    }
}
