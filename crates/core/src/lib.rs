//! # PageRankVM
//!
//! A reproduction of *"PageRankVM: A PageRank Based Algorithm with
//! Anti-Collocation Constraints for Virtual Machine Placement in Cloud
//! Datacenters"* (Li, Shen, Miles — ICDCS 2018).
//!
//! The algorithm ranks PM resource-usage **profiles** by how likely they are
//! to develop into the *best profile* (full utilization in every dimension)
//! by hosting more VMs from a known VM-type set, and places each VM where
//! the resulting profile ranks highest:
//!
//! 1. [`profile`] — canonical multi-dimensional profiles where every
//!    physical core and disk is its own dimension (this is how
//!    anti-collocation constraints are encoded);
//! 2. [`graph`] — the profile graph: `A → B` iff hosting one VM turns
//!    profile `A` into profile `B`;
//! 3. [`mod@pagerank`] — Algorithm 1: iterative PageRank with damping 0.85;
//! 4. [`bpru`] — the Best-Possible-Resource-Utilization discount;
//! 5. [`table`] — the Profile–PageRank score table consulted at placement
//!    time;
//! 6. [`placer`] — Algorithm 2 (initial allocation) and the paper's
//!    eviction rule for overloaded PMs;
//! 7. [`two_choice`] — the sampled O(1) variant sketched in §V-C.
//!
//! # Quickstart
//!
//! ```
//! use pagerankvm::{PageRankConfig, GraphLimits, PageRankVmPlacer, ScoreBook};
//! use prvm_model::{catalog, place_batch, Cluster, Quantizer};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build the Profile–PageRank score table once per PM type…
//! let book = Arc::new(ScoreBook::build(
//!     Quantizer { core_slots: 2, mem_levels: 4, disk_levels: 2 },
//!     &catalog::ec2_pm_types(),
//!     &catalog::ec2_vm_types(),
//!     &PageRankConfig::default(),
//!     GraphLimits::default(),
//! )?);
//!
//! // …then place VMs with Algorithm 2.
//! let mut placer = PageRankVmPlacer::new(book);
//! let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 50);
//! let requests = vec![catalog::vm_m3_large(); 20];
//! place_batch(&mut placer, &mut cluster, requests)?;
//! assert!(cluster.active_pm_count() < 20);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod audit;
pub mod bpru;
pub mod graph;
pub mod pagerank;
pub mod placer;
pub mod profile;
pub mod table;
pub mod two_choice;

pub use analysis::{paths_to_best, rank_stats, top_profiles, RankStats};
pub use audit::{AuditReport, Invariant, Violation};
pub use bpru::bpru as compute_bpru;
pub use graph::{GraphError, GraphLimits, NodeId, ProfileGraph};
pub use pagerank::{pagerank, pagerank_with_pool, Orientation, PageRankConfig, PageRankResult};
pub use placer::{PageRankEviction, PageRankVmPlacer};
pub use profile::{KindSpace, Profile, ProfileSpace, ProfileVm};
pub use prvm_par::Pool;
pub use table::{ScoreBook, ScoreTable};
pub use two_choice::TwoChoicePlacer;
