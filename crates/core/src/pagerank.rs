//! PageRank over the profile graph — the paper's Algorithm 1, in both of
//! the orientations the paper (inconsistently) describes.
//!
//! The score of profile `P_i` follows Equ. (12):
//!
//! ```text
//! PR(P_i) = (1 - d)/N + d * Σ_{P_j ∈ M(P_i)} PR(P_j)/L(P_j)
//! ```
//!
//! computed iteratively with the auxiliary accumulator `Aux` of the
//! pseudocode, normalising after every sweep (line 17) and stopping when no
//! score moves by more than `epsilon`.
//!
//! # The orientation discrepancy
//!
//! The paper's *pseudocode* pushes each profile's rank to the profiles it
//! can become (`S(P_i)`, line 10): rank flows **toward fuller** profiles,
//! rewarding profiles with many in-ways. Its *worked examples*, however,
//! claim the rank measures a profile's ability to **develop to the best
//! profile** — an out-path property: §V-A says `[3,3,3,3]` outranks
//! `[4,4,2,2]` because it has *two* ways onward to `[4,4,4,4]` versus one.
//! Under the pseudocode's orientation that example is *false* (`[4,4,2,2]`
//! has strictly more predecessors). Running PageRank on the transposed
//! graph — each achievable successor votes for the profiles that can reach
//! it — makes every worked example hold, so that is the default here;
//! [`Orientation::TowardFuller`] gives the literal pseudocode for
//! comparison (see DESIGN.md §5 and the ablation bench).

use crate::graph::{ix, nid, ProfileGraph};
use prvm_model::units::convert;
use prvm_obs::{event, Registry, Span};
use prvm_par::Pool;

/// One incoming vote edge in the transposed (pseudocode-orientation)
/// adjacency: the voting node and its precomputed out-fanout.
type NodeIdAndFanout = (crate::graph::NodeId, f64);

/// Which way votes flow along profile-graph edges. See the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Votes flow opposite the hosting edges: a profile is supported by the
    /// profiles it can develop into. Matches the paper's narrative and
    /// worked examples (default).
    #[default]
    TowardEmptier,
    /// Votes flow along hosting edges, toward fuller profiles. The literal
    /// reading of Algorithm 1's pseudocode.
    TowardFuller,
}

/// Parameters of the PageRank iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor `d`; the paper uses the customary 0.85.
    pub damping: f64,
    /// Convergence threshold `ε` on the max per-node change.
    pub epsilon: f64,
    /// Safety bound on iterations.
    pub max_iters: usize,
    /// Vote direction (see [`Orientation`]).
    pub orientation: Orientation,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            epsilon: 1e-10,
            max_iters: 500,
            orientation: Orientation::default(),
        }
    }
}

/// Result of a PageRank computation.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankResult {
    /// Normalised score per node (sums to 1).
    pub scores: Vec<f64>,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
    /// `true` if the `epsilon` criterion was met within `max_iters`.
    pub converged: bool,
    /// Max per-node score change after each executed iteration, in
    /// order — the convergence trajectory. `residuals.len()` equals
    /// `iterations`, and the last entry is below `epsilon` iff
    /// `converged`.
    pub residuals: Vec<f64>,
}

/// Run Algorithm 1 (lines 2–18) over `graph`, on the global worker
/// [`Pool`].
///
/// ```
/// use pagerankvm::{pagerank, GraphLimits, PageRankConfig, ProfileGraph,
///                  ProfileSpace, ProfileVm};
///
/// let graph = ProfileGraph::build(
///     ProfileSpace::uniform(4, 4),
///     vec![ProfileVm::from_demands("[1,1]", vec![vec![1, 1]])],
///     GraphLimits::default(),
/// )?;
/// let result = pagerank(&graph, &PageRankConfig::default());
/// assert!(result.converged);
/// // Scores are a probability distribution over profiles.
/// assert!((result.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// # Ok::<(), pagerankvm::GraphError>(())
/// ```
///
/// # Panics
///
/// Panics if `config.damping` is outside `(0, 1)` or the graph is empty.
#[must_use]
pub fn pagerank(graph: &ProfileGraph, config: &PageRankConfig) -> PageRankResult {
    pagerank_with_pool(graph, config, Pool::global())
}

/// [`pagerank`] on an explicit worker [`Pool`].
///
/// The sparse mat-vec inside each power-iteration sweep is *gathered*
/// per receiving node — every node's incoming votes are summed
/// left-to-right in a fixed (ascending voter id) order by whichever
/// worker owns that node — so residuals and score bit patterns are
/// identical at any pool width (DESIGN.md §10). The teleport /
/// normalisation passes are O(n) and stay sequential, preserving the
/// historical summation order.
///
/// # Panics
///
/// Panics if `config.damping` is outside `(0, 1)` or the graph is empty.
#[must_use]
pub fn pagerank_with_pool(
    graph: &ProfileGraph,
    config: &PageRankConfig,
    pool: Pool,
) -> PageRankResult {
    assert!(
        config.damping > 0.0 && config.damping < 1.0,
        "damping factor must be in (0, 1)"
    );
    let n = graph.node_count();
    assert!(n > 0, "graph must have nodes");

    let _span = Span::enter("pagerank");
    let run = Registry::global().counter("pagerank.runs").add_fetch(1);
    let residual_series = Registry::global().series(&format!("pagerank.residuals.run{run}"));

    // For the transposed orientation each node's "out-degree" is its
    // forward in-degree.
    let indeg: Vec<u32> = {
        let mut v = vec![0u32; n];
        if config.orientation == Orientation::TowardEmptier {
            for id in graph.node_ids() {
                for &s in graph.successors(id) {
                    v[ix(s)] += 1;
                }
            }
        }
        v
    };

    // For the pseudocode orientation, gather needs the transposed
    // adjacency: each node's predecessors, ascending — the same order
    // the historical sequential scatter added their contributions in.
    let preds: Vec<Vec<NodeIdAndFanout>> = if config.orientation == Orientation::TowardFuller {
        let mut p: Vec<Vec<NodeIdAndFanout>> = vec![Vec::new(); n];
        for id in graph.node_ids() {
            let fanout = convert::usize_to_f64(graph.successors(id).len());
            for &s in graph.successors(id) {
                if let Some(slot) = p.get_mut(ix(s)) {
                    slot.push((id, fanout));
                }
            }
        }
        p
    } else {
        Vec::new()
    };

    let nf = convert::usize_to_f64(n);
    let mut pr = vec![1.0 / nf; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut residuals = Vec::new();

    while iterations < config.max_iters {
        iterations += 1;
        // Lines 7–12: propagate rank over each edge, split evenly over the
        // voter's out-links. Both orientations gather per receiver: each
        // receiving node's sum is an independent left-to-right fold, so
        // the parallel map is bit-identical to a sequential sweep.
        let aux: Vec<f64> = {
            // Sub-span per iteration: the parallel part of the sweep.
            // Its chunks land on worker lanes when tracing.
            let _gather = Span::enter("gather");
            match config.orientation {
                Orientation::TowardFuller => pool.map(&preds, |voters| {
                    voters
                        .iter()
                        .fold(0.0f64, |acc, &(v, fanout)| acc + pr[ix(v)] / fanout)
                }),
                Orientation::TowardEmptier => {
                    // Edge i -> s in the hosting graph becomes a vote s -> i;
                    // node s splits its rank over indeg[s] such votes.
                    pool.map_index(n, |i| {
                        graph
                            .successors(nid(i))
                            .iter()
                            .fold(0.0f64, |acc, &s| acc + pr[ix(s)] / f64::from(indeg[ix(s)]))
                    })
                }
            }
        };
        // Lines 13–16: new scores from the teleport term plus damped votes.
        let teleport = (1.0 - config.damping) / nf;
        let mut total = 0.0;
        let mut next = vec![0.0; n];
        for (nx, &a) in next.iter_mut().zip(aux.iter()) {
            *nx = teleport + config.damping * a;
            total += *nx;
        }
        // Line 17: normalise.
        let mut delta = 0.0f64;
        for (nx, &old) in next.iter_mut().zip(pr.iter()) {
            *nx /= total;
            delta = delta.max((*nx - old).abs());
        }
        pr = next;
        residuals.push(delta);
        residual_series.push(delta);
        event("pagerank.iteration")
            .field("run", run)
            .field("iter", iterations)
            .field("residual", delta)
            .emit();
        if delta < config.epsilon {
            converged = true;
            break;
        }
    }

    prvm_obs::counter!(
        "pagerank.iterations_total",
        convert::usize_to_u64(iterations)
    );
    event("pagerank.done")
        .field("run", run)
        .field("nodes", n)
        .field("iterations", iterations)
        .field("converged", converged)
        .field("residual", residuals.last().copied().unwrap_or(0.0))
        .emit();

    PageRankResult {
        scores: pr,
        iterations,
        converged,
        residuals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphLimits;
    use crate::profile::{ProfileSpace, ProfileVm};

    fn paper_graph() -> ProfileGraph {
        let space = ProfileSpace::uniform(4, 4);
        let vms = vec![
            ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
            ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
        ];
        ProfileGraph::build(space, vms, GraphLimits::default()).unwrap()
    }

    fn cfg(orientation: Orientation) -> PageRankConfig {
        PageRankConfig {
            orientation,
            ..PageRankConfig::default()
        }
    }

    #[test]
    fn scores_sum_to_one_and_converge_both_orientations() {
        let g = paper_graph();
        for o in [Orientation::TowardFuller, Orientation::TowardEmptier] {
            let r = pagerank(&g, &cfg(o));
            assert!(r.converged, "{o:?} did not converge in {}", r.iterations);
            let sum: f64 = r.scores.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{o:?}: sum = {sum}");
            assert!(r.scores.iter().all(|&s| s > 0.0), "teleport keeps all > 0");
        }
    }

    #[test]
    fn forward_orientation_favours_fuller_profiles() {
        let g = paper_graph();
        let r = pagerank(&g, &cfg(Orientation::TowardFuller));
        let s = g.space();
        let best = g.node(&s.best_profile()).unwrap() as usize;
        let empty = g.node(&s.empty_profile()).unwrap() as usize;
        assert!(r.scores[best] > r.scores[empty]);
    }

    #[test]
    fn reverse_orientation_favours_flexible_profiles() {
        // Under the narrative orientation the empty profile — which can
        // develop into everything — outranks the terminal best profile.
        let g = paper_graph();
        let r = pagerank(&g, &cfg(Orientation::TowardEmptier));
        let s = g.space();
        let best = g.node(&s.best_profile()).unwrap() as usize;
        let empty = g.node(&s.empty_profile()).unwrap() as usize;
        assert!(r.scores[empty] > r.scores[best]);
    }

    #[test]
    fn quality_example_holds_under_default_orientation() {
        // §V-A: [3,3,3,3] outranks [4,4,2,2] (two ways vs one way to the
        // best profile). This is the orientation acid test.
        let g = paper_graph();
        let r = pagerank(&g, &PageRankConfig::default());
        let s = g.space();
        let a = g.node(&s.canonicalize(&[&[3, 3, 3, 3]])).unwrap() as usize;
        let b = g.node(&s.canonicalize(&[&[4, 4, 2, 2]])).unwrap() as usize;
        assert!(
            r.scores[a] > r.scores[b],
            "[3,3,3,3]={} vs [4,4,2,2]={}",
            r.scores[a],
            r.scores[b]
        );
    }

    #[test]
    fn tighter_epsilon_needs_more_iterations() {
        let g = paper_graph();
        let loose = pagerank(
            &g,
            &PageRankConfig {
                epsilon: 1e-4,
                ..PageRankConfig::default()
            },
        );
        let tight = pagerank(
            &g,
            &PageRankConfig {
                epsilon: 1e-12,
                ..PageRankConfig::default()
            },
        );
        assert!(tight.iterations >= loose.iterations);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = paper_graph();
        let r = pagerank(
            &g,
            &PageRankConfig {
                epsilon: 0.0,
                max_iters: 3,
                ..PageRankConfig::default()
            },
        );
        assert_eq!(r.iterations, 3);
        assert!(!r.converged);
    }

    #[test]
    fn residuals_trace_the_convergence_trajectory() {
        let g = paper_graph();
        let r = pagerank(&g, &PageRankConfig::default());
        assert_eq!(r.residuals.len(), r.iterations);
        assert!(r.converged);
        let last = *r.residuals.last().unwrap();
        assert!(last < PageRankConfig::default().epsilon);
        // Every earlier residual stayed at or above the threshold (the
        // loop stops at the first sub-epsilon sweep).
        assert!(r.residuals[..r.iterations - 1]
            .iter()
            .all(|&d| d >= PageRankConfig::default().epsilon));

        // A capped run reports the full (unconverged) trajectory too.
        let capped = pagerank(
            &g,
            &PageRankConfig {
                epsilon: 0.0,
                max_iters: 3,
                ..PageRankConfig::default()
            },
        );
        assert_eq!(capped.residuals.len(), 3);
        assert!(!capped.converged);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn invalid_damping_rejected() {
        let g = paper_graph();
        let _ = pagerank(
            &g,
            &PageRankConfig {
                damping: 1.5,
                ..PageRankConfig::default()
            },
        );
    }

    #[test]
    fn two_node_chain_has_closed_form() {
        // Graph: 0 -> 1 (single VM that exactly fills the PM). Under the
        // forward orientation the fixpoint of the normalised iteration
        // gives: d·p0² + 2a·p0 − a = 0 with a = (1-d)/2.
        let space = ProfileSpace::uniform(1, 1);
        let vms = vec![ProfileVm::from_demands("[1]", vec![vec![1]])];
        let g = ProfileGraph::build(space, vms, GraphLimits::default()).unwrap();
        assert_eq!(g.node_count(), 2);
        let r = pagerank(&g, &cfg(Orientation::TowardFuller));
        let d: f64 = 0.85;
        let a = (1.0 - d) / 2.0;
        let p0 = (-a + (a * a + a * d).sqrt()) / d;
        assert!((r.scores[0] - p0).abs() < 1e-8, "{}", r.scores[0]);
        assert!((r.scores[1] - (1.0 - p0)).abs() < 1e-8);

        // Under the reverse orientation the roles swap: node 1 votes for
        // node 0, so node 0 carries the larger score.
        let r = pagerank(&g, &cfg(Orientation::TowardEmptier));
        assert!((r.scores[1] - p0).abs() < 1e-8, "{}", r.scores[1]);
        assert!((r.scores[0] - (1.0 - p0)).abs() < 1e-8);
    }
}
