//! The profile graph (Algorithm 1, line 1).
//!
//! Nodes are PM usage profiles; an edge `A → B` means "profile `A` becomes
//! profile `B` by accommodating one VM from the VM-type set" (in any
//! permutation of the VM's anti-collocated demands). The graph is built by
//! breadth-first search from the empty profile, so it contains exactly the
//! profiles reachable by some placement sequence — every state a PM managed
//! by PageRankVM can be in.
//!
//! The graph is a DAG: every edge strictly increases total usage (VM demands
//! are positive), which `bpru` exploits for a linear-time reverse-topological
//! sweep.

use crate::profile::{Profile, ProfileSpace, ProfileVm};
use prvm_model::units::convert;
use prvm_obs::Span;
use prvm_par::Pool;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Node handle inside a [`ProfileGraph`].
pub type NodeId = u32;

/// Widen a node id to a vector index — the single audited `NodeId → usize`
/// conversion site. Lossless: `NodeId` is `u32` and every supported target
/// has at least 32-bit pointers, so the fallback is unreachable.
#[inline]
pub(crate) fn ix(id: NodeId) -> usize {
    usize::try_from(id).unwrap_or(usize::MAX)
}

/// Narrow a node index to a `NodeId` — the single audited `usize → NodeId`
/// conversion site. Builders bound the node count by both
/// [`GraphLimits::max_nodes`] and `u32::MAX` before minting ids, so the
/// saturating fallback is unreachable.
#[inline]
pub(crate) fn nid(i: usize) -> NodeId {
    NodeId::try_from(i).unwrap_or(NodeId::MAX)
}

/// Construction limits guarding against a quantization that explodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphLimits {
    /// Refuse to grow past this many nodes.
    pub max_nodes: usize,
}

impl Default for GraphLimits {
    fn default() -> Self {
        Self {
            max_nodes: 2_000_000,
        }
    }
}

/// Failure to build a profile graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The reachable profile space exceeds [`GraphLimits::max_nodes`];
    /// choose a coarser [`prvm_model::Quantizer`].
    TooLarge {
        /// The configured bound that was hit.
        max_nodes: usize,
    },
    /// No VM type fits the empty profile — the graph would be a single
    /// node and every rank degenerate.
    NoUsableVmTypes,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooLarge { max_nodes } => write!(
                f,
                "profile graph exceeds {max_nodes} nodes; use a coarser quantizer"
            ),
            Self::NoUsableVmTypes => write!(f, "no VM type fits the empty profile"),
        }
    }
}

impl Error for GraphError {}

/// The profile graph for one PM type and one VM-type set.
#[derive(Debug, Clone)]
pub struct ProfileGraph {
    space: ProfileSpace,
    vm_types: Vec<ProfileVm>,
    nodes: Vec<Profile>,
    index: HashMap<Profile, NodeId>,
    /// CSR adjacency: successors of node `i` are
    /// `succ[succ_off[i]..succ_off[i+1]]`, sorted and deduplicated.
    succ: Vec<NodeId>,
    succ_off: Vec<usize>,
    util: Vec<f64>,
}

impl ProfileGraph {
    /// Build the graph over **every** canonical profile of the space (not
    /// just those reachable from empty). This is the space of the paper's
    /// motivation section, which reasons about arbitrary profiles such as
    /// `[4,3,3,3]` that no sequence of in-catalog VMs produces. Placement
    /// only ever needs the reachable graph ([`Self::build`]), which is
    /// smaller.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::build`].
    pub fn build_full(
        space: ProfileSpace,
        vm_types: Vec<ProfileVm>,
        limits: GraphLimits,
    ) -> Result<Self, GraphError> {
        Self::build_full_with_pool(space, vm_types, limits, Pool::global())
    }

    /// [`Self::build_full`] on an explicit worker [`Pool`]. The result
    /// is bit-for-bit identical at any pool width (DESIGN.md §10):
    /// successor sets are computed in parallel per node and merged in
    /// node-index order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::build`].
    pub fn build_full_with_pool(
        space: ProfileSpace,
        vm_types: Vec<ProfileVm>,
        limits: GraphLimits,
        pool: Pool,
    ) -> Result<Self, GraphError> {
        let _span = Span::enter("graph_build");
        let empty = space.empty_profile();
        let usable: Vec<ProfileVm> = vm_types
            .into_iter()
            .filter(|vm| !space.place(&empty, vm).is_empty())
            .collect();
        if usable.is_empty() {
            return Err(GraphError::NoUsableVmTypes);
        }

        // Enumerate all canonical profiles: per kind, every non-decreasing
        // sequence of length `count` over `0..=cap`; then the product.
        let mut per_kind: Vec<Vec<Vec<u16>>> = Vec::new();
        for k in space.kinds() {
            let mut seqs: Vec<Vec<u16>> = Vec::new();
            let mut cur = Vec::with_capacity(k.count);
            fn rec(cap: u16, len: usize, min: u16, cur: &mut Vec<u16>, out: &mut Vec<Vec<u16>>) {
                if cur.len() == len {
                    out.push(cur.clone());
                    return;
                }
                for v in min..=cap {
                    cur.push(v);
                    rec(cap, len, v, cur, out);
                    cur.pop();
                }
            }
            rec(k.cap, k.count, 0, &mut cur, &mut seqs);
            per_kind.push(seqs);
        }
        let total: usize = per_kind.iter().map(Vec::len).product();
        if total > limits.max_nodes || NodeId::try_from(total).is_err() {
            return Err(GraphError::TooLarge {
                max_nodes: limits.max_nodes,
            });
        }

        let mut nodes: Vec<Profile> = Vec::with_capacity(total);
        fn cartesian<'a>(
            remaining: &'a [Vec<Vec<u16>>],
            chosen: &mut Vec<&'a [u16]>,
            space: &ProfileSpace,
            nodes: &mut Vec<Profile>,
        ) {
            let Some((head, rest)) = remaining.split_first() else {
                let parts: Vec<Vec<u64>> = chosen
                    .iter()
                    .map(|seq| seq.iter().map(|&v| u64::from(v)).collect())
                    .collect();
                let refs: Vec<&[u64]> = parts.iter().map(Vec::as_slice).collect();
                nodes.push(space.canonicalize(&refs));
                return;
            };
            for seq in head {
                chosen.push(seq);
                cartesian(rest, chosen, space, nodes);
                chosen.pop();
            }
        }
        cartesian(&per_kind, &mut Vec::new(), &space, &mut nodes);

        let mut index: HashMap<Profile, NodeId> = HashMap::with_capacity(nodes.len());
        for (i, p) in nodes.iter().enumerate() {
            index.insert(p.clone(), nid(i));
        }

        // Every node is known up front, so successor enumeration — the
        // hot `space.place` combinatorics — is embarrassingly parallel;
        // the merge below stitches the per-node buffers back together
        // in node-index order, so the CSR is identical at any width.
        let mut succ: Vec<NodeId> = Vec::new();
        let mut succ_off: Vec<usize> = vec![0];
        let buffers: Vec<Vec<NodeId>> = pool.map(&nodes, |node| {
            let mut buf: Vec<NodeId> = Vec::new();
            for vm in &usable {
                for out in space.place(node, vm) {
                    // Every canonical profile was enumerated above and
                    // `place` yields canonical outputs, so the lookup hits.
                    match index.get(&out) {
                        Some(&id) => buf.push(id),
                        None => debug_assert!(false, "successor profile missing from full index"),
                    }
                }
            }
            buf.sort_unstable();
            buf.dedup();
            buf
        });
        for buf in &buffers {
            succ.extend_from_slice(buf);
            succ_off.push(succ.len());
        }

        let util = nodes.iter().map(|p| space.utilization(p)).collect();
        prvm_obs::counter!("graph.nodes", convert::usize_to_u64(nodes.len()));
        prvm_obs::counter!("graph.edges", convert::usize_to_u64(succ.len()));
        prvm_obs::event("graph.built")
            .field("mode", "full")
            .field("nodes", nodes.len())
            .field("edges", succ.len())
            .field("vm_types", usable.len())
            .emit();
        Ok(Self {
            space,
            vm_types: usable,
            nodes,
            index,
            succ,
            succ_off,
            util,
        })
    }

    /// Build the graph by BFS from the empty profile.
    ///
    /// VM types that cannot fit even an empty PM are ignored (they would
    /// contribute no edges). Expansion runs on the global worker
    /// [`Pool`]; see [`Self::build_with_pool`] for the determinism
    /// contract.
    ///
    /// ```
    /// use pagerankvm::{GraphLimits, ProfileGraph, ProfileSpace, ProfileVm};
    ///
    /// // The paper's running example: a [4,4,4,4] PM hosting VM shapes
    /// // [1,1] and [1,1,1,1].
    /// let graph = ProfileGraph::build(
    ///     ProfileSpace::uniform(4, 4),
    ///     vec![
    ///         ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
    ///         ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
    ///     ],
    ///     GraphLimits::default(),
    /// )?;
    /// // Node 0 is the empty profile; the fully-packed best profile is
    /// // reachable and hosts nothing more.
    /// let best = graph.node(&graph.space().best_profile()).unwrap();
    /// assert!(graph.is_endpoint(best));
    /// # Ok::<(), pagerankvm::GraphError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`GraphError::TooLarge`] if the reachable space exceeds the limit;
    /// [`GraphError::NoUsableVmTypes`] if no VM type fits an empty PM.
    pub fn build(
        space: ProfileSpace,
        vm_types: Vec<ProfileVm>,
        limits: GraphLimits,
    ) -> Result<Self, GraphError> {
        Self::build_with_pool(space, vm_types, limits, Pool::global())
    }

    /// [`Self::build`] on an explicit worker [`Pool`].
    ///
    /// The BFS is level-synchronous: each frontier's successor profiles
    /// are enumerated in parallel (the `place` combinatorics dominate
    /// the cost), then merged **sequentially in frontier order**, which
    /// mints node ids in exactly the order the single-threaded queue
    /// BFS would — so the resulting graph (node numbering, CSR layout,
    /// everything) is bit-for-bit identical at any pool width
    /// (DESIGN.md §10).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::build`].
    pub fn build_with_pool(
        space: ProfileSpace,
        vm_types: Vec<ProfileVm>,
        limits: GraphLimits,
        pool: Pool,
    ) -> Result<Self, GraphError> {
        let _span = Span::enter("graph_build");
        let empty = space.empty_profile();
        let usable: Vec<ProfileVm> = vm_types
            .into_iter()
            .filter(|vm| !space.place(&empty, vm).is_empty())
            .collect();
        if usable.is_empty() {
            return Err(GraphError::NoUsableVmTypes);
        }

        let mut nodes: Vec<Profile> = vec![empty.clone()];
        let mut index: HashMap<Profile, NodeId> = HashMap::new();
        index.insert(empty, 0);
        let mut succ: Vec<NodeId> = Vec::new();
        let mut succ_off: Vec<usize> = vec![0];

        // Every edge strictly increases total usage, so nodes discovered
        // while merging frontier node `j` sort after everything
        // discovered from frontier nodes `< j`: processing frontiers in
        // insertion order visits the same nodes in the same order as a
        // plain FIFO queue, and each node is fully expanded exactly once.
        let mut buf: Vec<NodeId> = Vec::new();
        let mut dedup_hits = 0u64;
        let mut level_start = 0usize;
        while level_start < nodes.len() {
            // Expand the whole frontier in parallel. The borrow of
            // `nodes` ends with the map; discovered profiles are merged
            // below, where `nodes` is grown.
            let expansions: Vec<Vec<Profile>> = {
                // Sub-span per level: the parallel part of the build.
                // Its chunks land on worker lanes when tracing.
                let _expand = Span::enter("expand");
                let (_, frontier) = nodes.split_at(level_start);
                pool.map(frontier, |node| {
                    let mut outs: Vec<Profile> = Vec::new();
                    for vm in &usable {
                        outs.extend(space.place(node, vm));
                    }
                    outs
                })
            };
            level_start = nodes.len();
            // Sub-span per level: the sequential id-minting merge. The
            // expand/stitch split is what makes the speedup story
            // diagnosable in a trace (parallel compute vs serial merge).
            let stitch_span = Span::enter("stitch");
            for outs in expansions {
                buf.clear();
                for out in outs {
                    let id = match index.get(&out) {
                        Some(&id) => {
                            dedup_hits += 1;
                            id
                        }
                        None => {
                            if nodes.len() >= limits.max_nodes
                                || NodeId::try_from(nodes.len()).is_err()
                            {
                                return Err(GraphError::TooLarge {
                                    max_nodes: limits.max_nodes,
                                });
                            }
                            let id = nid(nodes.len());
                            index.insert(out.clone(), id);
                            nodes.push(out);
                            id
                        }
                    };
                    buf.push(id);
                }
                buf.sort_unstable();
                buf.dedup();
                succ.extend_from_slice(&buf);
                succ_off.push(succ.len());
            }
            drop(stitch_span);
        }

        let util = nodes.iter().map(|p| space.utilization(p)).collect();
        prvm_obs::counter!("graph.nodes", convert::usize_to_u64(nodes.len()));
        prvm_obs::counter!("graph.edges", convert::usize_to_u64(succ.len()));
        prvm_obs::counter!("graph.dedup_hits", dedup_hits);
        prvm_obs::event("graph.built")
            .field("mode", "bfs")
            .field("nodes", nodes.len())
            .field("edges", succ.len())
            .field("dedup_hits", dedup_hits)
            .field("vm_types", usable.len())
            .emit();
        Ok(Self {
            space,
            vm_types: usable,
            nodes,
            index,
            succ,
            succ_off,
            util,
        })
    }

    /// The space this graph lives in.
    #[must_use]
    pub fn space(&self) -> &ProfileSpace {
        &self.space
    }

    /// The VM types that contribute edges.
    #[must_use]
    pub fn vm_types(&self) -> &[ProfileVm] {
        &self.vm_types
    }

    /// Number of nodes (`N` in Equ. (12)).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (deduplicated) edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.succ.len()
    }

    /// The profile of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn profile(&self, id: NodeId) -> &Profile {
        &self.nodes[ix(id)]
    }

    /// Node id of a profile, if reachable.
    #[must_use]
    pub fn node(&self, profile: &Profile) -> Option<NodeId> {
        self.index.get(profile).copied()
    }

    /// Successors of a node: `S(P_i)`, the profiles derived by
    /// accommodating one more VM (Algorithm 1, line 8).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succ[self.succ_off[ix(id)]..self.succ_off[ix(id) + 1]]
    }

    /// Resource utilization of a node's profile.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn utilization(&self, id: NodeId) -> f64 {
        self.util[ix(id)]
    }

    /// `true` if the node has no successors — no VM type fits any more.
    /// These are the "endpoints" of the BPRU definition.
    #[must_use]
    pub fn is_endpoint(&self, id: NodeId) -> bool {
        self.successors(id).is_empty()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..nid(self.nodes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: capacity [4,4,4,4] and VM set
    /// {[1,1], [1,1,1,1]}.
    fn paper_graph() -> ProfileGraph {
        let space = ProfileSpace::uniform(4, 4);
        let vms = vec![
            ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
            ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
        ];
        ProfileGraph::build(space, vms, GraphLimits::default()).unwrap()
    }

    #[test]
    fn paper_example_graph_structure() {
        let g = paper_graph();
        // Nodes are the multisets of {0..4}^4 reachable by sums of the two
        // VM shapes; the best profile is reachable.
        let best = g.space().best_profile();
        assert!(g.node(&best).is_some());
        // Empty profile is node 0 with successors {[1,1,0,0],[1,1,1,1]}.
        let empty = g.space().empty_profile();
        let n0 = g.node(&empty).unwrap();
        assert_eq!(n0, 0);
        let succs: Vec<&Profile> = g.successors(n0).iter().map(|&s| g.profile(s)).collect();
        assert_eq!(succs.len(), 2);
        // The best profile is an endpoint.
        assert!(g.is_endpoint(g.node(&best).unwrap()));
    }

    #[test]
    fn all_nodes_reachable_have_monotone_edges() {
        let g = paper_graph();
        for id in g.node_ids() {
            let from: u64 = g.profile(id).values().iter().map(|&v| u64::from(v)).sum();
            for &s in g.successors(id) {
                let to: u64 = g.profile(s).values().iter().map(|&v| u64::from(v)).sum();
                assert!(to > from, "edge must strictly increase usage");
            }
        }
    }

    #[test]
    fn successor_sets_are_sorted_and_deduped() {
        let g = paper_graph();
        for id in g.node_ids() {
            let s = g.successors(id);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
        }
    }

    #[test]
    fn quality_example_profiles_exist() {
        // §V-A compares [4,4,2,2] and [3,3,3,3]; both must be reachable.
        let g = paper_graph();
        let s = g.space();
        assert!(g.node(&s.canonicalize(&[&[4, 4, 2, 2]])).is_some());
        assert!(g.node(&s.canonicalize(&[&[3, 3, 3, 3]])).is_some());
    }

    #[test]
    fn unusable_vm_types_are_dropped() {
        let space = ProfileSpace::uniform(2, 2);
        let vms = vec![
            ProfileVm::from_demands("fits", vec![vec![1]]),
            ProfileVm::from_demands("too-big", vec![vec![3]]),
        ];
        let g = ProfileGraph::build(space, vms, GraphLimits::default()).unwrap();
        assert_eq!(g.vm_types().len(), 1);
        assert_eq!(g.vm_types()[0].name, "fits");
    }

    #[test]
    fn empty_vm_set_is_an_error() {
        let space = ProfileSpace::uniform(2, 2);
        let vms = vec![ProfileVm::from_demands("too-big", vec![vec![3]])];
        let err = ProfileGraph::build(space, vms, GraphLimits::default()).unwrap_err();
        assert_eq!(err, GraphError::NoUsableVmTypes);
    }

    #[test]
    fn node_limit_is_enforced() {
        let space = ProfileSpace::uniform(4, 4);
        let vms = vec![ProfileVm::from_demands("[1]", vec![vec![1]])];
        let err = ProfileGraph::build(space, vms, GraphLimits { max_nodes: 5 }).unwrap_err();
        assert_eq!(err, GraphError::TooLarge { max_nodes: 5 });
    }

    #[test]
    fn single_unit_vm_reaches_every_multiset() {
        // With VM type [1], every multiset of {0..2}^2 is reachable:
        // C(2+2,2) = 6 nodes.
        let space = ProfileSpace::uniform(2, 2);
        let vms = vec![ProfileVm::from_demands("[1]", vec![vec![1]])];
        let g = ProfileGraph::build(space, vms, GraphLimits::default()).unwrap();
        assert_eq!(g.node_count(), 6);
        // Endpoint: only [2,2].
        let endpoints: Vec<NodeId> = g.node_ids().filter(|&n| g.is_endpoint(n)).collect();
        assert_eq!(endpoints.len(), 1);
        assert_eq!(g.profile(endpoints[0]), &g.space().best_profile());
    }
}
