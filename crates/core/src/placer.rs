//! The PageRankVM placement algorithm (Algorithm 2) and its eviction rule.

use crate::table::ScoreBook;
use prvm_model::combin::distinct_placements;
use prvm_model::units::convert;
use prvm_model::{
    Assignment, Cluster, EvictionPolicy, Mhz, PlacementAlgorithm, PlacementDecision, Pm, PmId,
    VmId, VmSpec,
};
use std::sync::Arc;

/// PageRank-based VM placement with anti-collocation constraints.
///
/// For a given VM, the placer walks `used_PM_list`, derives the set of
/// possible PM profiles after accommodating *every distinct permutation* of
/// the VM's demands, looks each up in the Profile–PageRank score table, and
/// selects the PM (and permutation) with the maximum score. If no used PM
/// fits, the first unused PM with sufficient resources is opened
/// (Algorithm 2 lines 17–24).
///
/// # Example
///
/// Place one `m3.large` on an empty cluster — the placer opens exactly
/// one PM and returns an anti-collocation-respecting assignment:
///
/// ```
/// use pagerankvm::{GraphLimits, PageRankConfig, PageRankVmPlacer, ScoreBook};
/// use prvm_model::{catalog, Cluster, PlacementAlgorithm, Quantizer};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let book = Arc::new(ScoreBook::build(
///     Quantizer { core_slots: 2, mem_levels: 4, disk_levels: 2 },
///     &catalog::ec2_pm_types(),
///     &catalog::ec2_vm_types(),
///     &PageRankConfig::default(),
///     GraphLimits::default(),
/// )?);
/// let mut placer = PageRankVmPlacer::new(book);
/// let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 4);
///
/// let vm = catalog::vm_m3_large();
/// let decision = placer
///     .choose(&cluster, &vm, &|_| false)
///     .expect("an m3 PM can host an m3.large");
/// assert!(decision.assignment.is_anti_collocated());
/// cluster.place(decision.pm, vm, decision.assignment)?;
/// assert_eq!(cluster.active_pm_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PageRankVmPlacer {
    book: Arc<ScoreBook>,
}

impl PageRankVmPlacer {
    /// Create a placer over a pre-built [`ScoreBook`].
    #[must_use]
    pub fn new(book: Arc<ScoreBook>) -> Self {
        Self { book }
    }

    /// The shared score book (also used by [`PageRankEviction`]).
    #[must_use]
    pub fn book(&self) -> &Arc<ScoreBook> {
        &self.book
    }

    /// The best `(score, assignment)` for hosting `vm` on `pm`, evaluating
    /// every distinct permutation of the VM's demands in quantized space
    /// (Algorithm 2, lines 6–7).
    ///
    /// Returns `None` when the PM type has no table, the placement is
    /// quantized-infeasible, or every resulting profile falls outside the
    /// graph.
    #[must_use]
    pub fn best_option(&self, pm: &Pm, vm: &VmSpec) -> Option<(f64, Assignment)> {
        let book = &self.book;
        let table = book.table(pm.spec())?;
        let space = table.space();
        let quantizer = book.quantizer();
        let qvm = quantizer.quantize_vm(vm, pm.spec());
        let (cores, mem, disks) = quantizer.quantized_usage(pm);

        let cap_of = |name: &str| -> u64 {
            space
                .kinds()
                .iter()
                .find(|k| k.name == name)
                .map_or(0, |k| u64::from(k.cap))
        };

        // Memory is a single scalar dimension.
        let mem_cap = cap_of("mem");
        if mem + qvm.mem_units > mem_cap && qvm.mem_units > 0 {
            return None;
        }
        let new_mem = mem + qvm.mem_units;

        let core_caps = vec![cap_of("cores"); cores.len()];
        let cpu_demands = vec![qvm.vcpu_slots; qvm.vcpus];
        let core_options = distinct_placements(&cores, &core_caps, &cpu_demands);
        if core_options.is_empty() {
            return None;
        }

        let disk_caps = vec![cap_of("disks"); disks.len()];
        let disk_options = distinct_placements(&disks, &disk_caps, &qvm.disk_units);
        if disk_options.is_empty() {
            return None;
        }
        prvm_obs::counter!(
            "placer.permutations_evaluated",
            convert::usize_to_u64(core_options.len() * disk_options.len())
        );

        let mut best: Option<(f64, Assignment)> = None;
        let mut new_cores = cores.clone();
        let mut new_disks = disks.clone();
        'cores: for co in &core_options {
            new_cores.copy_from_slice(&cores);
            for (&c, &demand) in co.iter().zip(&cpu_demands) {
                let Some(slot) = new_cores.get_mut(c) else {
                    debug_assert!(false, "core index {c} out of range");
                    continue 'cores;
                };
                *slot += demand;
            }
            'disks: for do_ in &disk_options {
                new_disks.copy_from_slice(&disks);
                for (&d, &units) in do_.iter().zip(&qvm.disk_units) {
                    let Some(slot) = new_disks.get_mut(d) else {
                        debug_assert!(false, "disk index {d} out of range");
                        continue 'disks;
                    };
                    *slot += units;
                }
                let profile = book.usage_profile(space, &new_cores, new_mem, &new_disks);
                if let Some(score) = table.score(&profile) {
                    if best.as_ref().is_none_or(|(b, _)| score > *b) {
                        // vCPU slots round to nearest, so a quantized
                        // option can be slightly optimistic: gate on the
                        // real-unit validator before accepting.
                        let assignment = Assignment::new(co.clone(), do_.clone());
                        if pm.validate(vm, &assignment).is_ok() {
                            best = Some((score, assignment));
                        }
                    }
                }
            }
        }
        best
    }
}

impl PlacementAlgorithm for PageRankVmPlacer {
    fn name(&self) -> &str {
        "PageRankVM"
    }

    fn choose(
        &mut self,
        cluster: &Cluster,
        vm: &VmSpec,
        exclude: &dyn Fn(PmId) -> bool,
    ) -> Option<PlacementDecision> {
        // One span per VM placed; `best_option` below stays span-free
        // (it runs once per scanned PM, far too hot — see lint.toml).
        let _span = prvm_obs::Span::enter("choose");
        let mut best: Option<(f64, PmId, Assignment)> = None;
        let mut fallback: Option<PlacementDecision> = None;
        let mut scanned = 0u64;

        // Lines 2–13: scan used PMs for the maximum-score option.
        for pm_id in cluster.used_pms() {
            if exclude(pm_id) {
                continue;
            }
            let pm = cluster.pm(pm_id);
            if !pm.has_aggregate_room(vm) {
                continue;
            }
            scanned += 1;
            match self.best_option(pm, vm) {
                Some((score, assignment)) => {
                    if best.as_ref().is_none_or(|(b, _, _)| score > *b) {
                        best = Some((score, pm_id, assignment));
                    }
                }
                None => {
                    // Quantized-infeasible (or unscored) but possibly
                    // real-feasible: remember the first such PM as a
                    // fallback (DESIGN.md §5).
                    if fallback.is_none() {
                        if let Some(assignment) = pm.first_feasible(vm) {
                            fallback = Some(PlacementDecision {
                                pm: pm_id,
                                assignment,
                            });
                        }
                    }
                }
            }
        }
        prvm_obs::counter!("placer.used_pms_scanned", scanned);
        if let Some((_, pm, assignment)) = best {
            prvm_obs::counter!("placer.used_pm_placements");
            return Some(PlacementDecision { pm, assignment });
        }
        if fallback.is_some() {
            prvm_obs::counter!("placer.used_pm_placements");
            prvm_obs::counter!("placer.quantized_fallbacks");
            return fallback;
        }

        // Lines 17–24: open the first unused PM with sufficient resources.
        for pm_id in cluster.unused_pms() {
            if exclude(pm_id) {
                continue;
            }
            if let Some(assignment) = cluster.pm(pm_id).first_feasible(vm) {
                prvm_obs::counter!("placer.unused_pm_opens");
                return Some(PlacementDecision {
                    pm: pm_id,
                    assignment,
                });
            }
        }
        prvm_obs::counter!("placer.placement_failures");
        None
    }
}

/// PageRankVM's overload handling (§VI-A, Comparison Algorithms): "for each
/// VM on the PM, we check the PageRank value of the resulting profile of
/// this PM after removing the VM. Then we select the VM that can result in
/// the highest PageRank value to remove."
#[derive(Debug, Clone)]
pub struct PageRankEviction {
    book: Arc<ScoreBook>,
}

impl PageRankEviction {
    /// Create the eviction rule over the same book as the placer.
    #[must_use]
    pub fn new(book: Arc<ScoreBook>) -> Self {
        Self { book }
    }
}

impl EvictionPolicy for PageRankEviction {
    fn name(&self) -> &str {
        "PageRankVM"
    }

    fn select(&mut self, pm: &Pm, _cpu_demand: &dyn Fn(VmId) -> Mhz) -> Option<VmId> {
        if pm.is_empty() {
            return None;
        }
        let quantizer = self.book.quantizer();
        let table = self.book.table(pm.spec());
        let (cores, mem, disks) = quantizer.quantized_usage(pm);

        let mut best: Option<(f64, VmId)> = None;
        let mut biggest: Option<(u64, VmId)> = None;
        for (id, vm, assignment) in pm.vms() {
            let qvm = quantizer.quantize_vm(vm, pm.spec());
            let total = qvm.vcpu_slots * convert::usize_to_u64(qvm.vcpus)
                + qvm.mem_units
                + qvm.disk_units.iter().sum::<u64>();
            if biggest.as_ref().is_none_or(|(t, _)| total > *t) {
                biggest = Some((total, id));
            }
            let Some(table) = table else { continue };
            let mut rc = cores.clone();
            for &c in &assignment.cores {
                let Some(slot) = rc.get_mut(c) else {
                    debug_assert!(false, "assigned core {c} out of range");
                    continue;
                };
                *slot = slot.saturating_sub(qvm.vcpu_slots);
            }
            let rm = mem.saturating_sub(qvm.mem_units);
            let mut rd = disks.clone();
            for (&d, &units) in assignment.disks.iter().zip(&qvm.disk_units) {
                let Some(slot) = rd.get_mut(d) else {
                    debug_assert!(false, "assigned disk {d} out of range");
                    continue;
                };
                *slot = slot.saturating_sub(units);
            }
            let profile = self.book.usage_profile(table.space(), &rc, rm, &rd);
            if let Some(score) = table.score(&profile) {
                if best.as_ref().is_none_or(|(b, _)| score > *b) {
                    best = Some((score, id));
                }
            }
        }
        // Fallback when no post-removal profile is scoreable: evict the
        // largest VM (it frees the most quantized resource).
        let fell_back = best.is_none();
        let victim = best.map(|(_, id)| id).or(biggest.map(|(_, id)| id));
        if victim.is_some() {
            prvm_obs::counter!("placer.eviction_picks");
            if fell_back {
                prvm_obs::counter!("placer.eviction_size_fallbacks");
            }
        }
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphLimits;
    use crate::pagerank::PageRankConfig;
    use prvm_model::{catalog, place_batch, Quantizer};

    fn book() -> Arc<ScoreBook> {
        let q = Quantizer {
            core_slots: 2,
            mem_levels: 4,
            disk_levels: 2,
        };
        Arc::new(
            ScoreBook::build(
                q,
                &catalog::ec2_pm_types(),
                &catalog::ec2_vm_types(),
                &PageRankConfig::default(),
                GraphLimits::default(),
            )
            .unwrap(),
        )
    }

    fn geni_book() -> Arc<ScoreBook> {
        Arc::new(
            ScoreBook::build(
                Quantizer::default(),
                &[catalog::geni_pm()],
                &catalog::geni_vm_types(),
                &PageRankConfig::default(),
                GraphLimits::default(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn places_batch_and_prefers_used_pms() {
        let mut placer = PageRankVmPlacer::new(book());
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 10);
        let vms = vec![catalog::vm_m3_medium(); 8];
        place_batch(&mut placer, &mut cluster, vms).unwrap();
        // 8 m3.medium easily share far fewer than 8 PMs.
        assert!(
            cluster.active_pm_count() <= 2,
            "{}",
            cluster.active_pm_count()
        );
    }

    #[test]
    fn best_option_scores_empty_pm() {
        let placer = PageRankVmPlacer::new(book());
        let pm = Pm::new(catalog::pm_m3());
        let (score, assignment) = placer
            .best_option(&pm, &catalog::vm_m3_large())
            .expect("fits");
        assert!(score > 0.0);
        pm.validate(&catalog::vm_m3_large(), &assignment).unwrap();
    }

    #[test]
    fn quantized_feasibility_implies_real_feasibility() {
        // Fill a PM step by step; every option the placer returns must be
        // acceptable to the real-unit validator.
        let mut placer = PageRankVmPlacer::new(book());
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 3);
        for _ in 0..12 {
            let vm = catalog::vm_c3_large();
            let Some(d) = placer.choose(&cluster, &vm, &|_| false) else {
                break;
            };
            cluster.pm(d.pm).validate(&vm, &d.assignment).unwrap();
            cluster.place(d.pm, vm, d.assignment).unwrap();
        }
        assert!(cluster.vm_count() > 0);
    }

    #[test]
    fn geni_placer_packs_tightly() {
        // 4 cores x 4 slots: four [1,1,1,1] VMs exactly fill a node.
        let mut placer = PageRankVmPlacer::new(geni_book());
        let mut cluster = Cluster::homogeneous(catalog::geni_pm(), 4);
        let vms = vec![catalog::geni_vm_4(); 4];
        place_batch(&mut placer, &mut cluster, vms).unwrap();
        assert_eq!(cluster.active_pm_count(), 1, "perfect packing expected");
    }

    #[test]
    fn exclusion_moves_choice_elsewhere() {
        let mut placer = PageRankVmPlacer::new(book());
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 2);
        let vm = catalog::vm_m3_medium();
        let d = placer.choose(&cluster, &vm, &|_| false).unwrap();
        cluster.place(d.pm, vm.clone(), d.assignment).unwrap();
        let first = cluster.used_pms().next().unwrap();
        let d2 = placer.choose(&cluster, &vm, &|pm| pm == first).unwrap();
        assert_ne!(d2.pm, first);
    }

    #[test]
    fn no_capacity_returns_none() {
        let mut placer = PageRankVmPlacer::new(geni_book());
        let mut cluster = Cluster::homogeneous(catalog::geni_pm(), 1);
        let vms = vec![catalog::geni_vm_4(); 4];
        place_batch(&mut placer, &mut cluster, vms).unwrap();
        assert!(placer
            .choose(&cluster, &catalog::geni_vm_2(), &|_| false)
            .is_none());
    }

    #[test]
    fn eviction_picks_scoreable_vm() {
        let b = geni_book();
        let mut placer = PageRankVmPlacer::new(b.clone());
        let mut cluster = Cluster::homogeneous(catalog::geni_pm(), 1);
        let vms = vec![
            catalog::geni_vm_4(),
            catalog::geni_vm_2(),
            catalog::geni_vm_2(),
        ];
        place_batch(&mut placer, &mut cluster, vms).unwrap();
        let pm = cluster.pm(PmId(0));
        let mut evict = PageRankEviction::new(b);
        let victim = evict.select(pm, &|_| Mhz::ZERO).expect("pm has vms");
        assert!(pm.vm(victim).is_some());
    }

    #[test]
    fn eviction_on_empty_pm_is_none() {
        let mut evict = PageRankEviction::new(geni_book());
        let pm = Pm::new(catalog::geni_pm());
        assert_eq!(evict.select(&pm, &|_| Mhz::ZERO), None);
    }

    #[test]
    fn eviction_prefers_profile_with_highest_score() {
        // One [1,1,1,1] and one [1,1] on a GENI node. Removing the [1,1]
        // leaves [1,1,1,1] (balanced); removing the [1,1,1,1] leaves
        // [1,1,0,0]. The table decides; assert the choice is consistent
        // with the table's own ranking.
        let b = geni_book();
        let mut placer = PageRankVmPlacer::new(b.clone());
        let mut cluster = Cluster::homogeneous(catalog::geni_pm(), 1);
        let ids = place_batch(
            &mut placer,
            &mut cluster,
            vec![catalog::geni_vm_4(), catalog::geni_vm_2()],
        )
        .unwrap();
        let pm = cluster.pm(PmId(0));
        let table = b.table(pm.spec()).unwrap();
        let space = table.space();
        let s_remove_small = table.score(&space.canonicalize(&[&[1, 1, 1, 1]])).unwrap();
        let s_remove_big = table.score(&space.canonicalize(&[&[1, 1, 0, 0]])).unwrap();
        let mut evict = PageRankEviction::new(b.clone());
        let victim = evict.select(pm, &|_| Mhz::ZERO).unwrap();
        if s_remove_small > s_remove_big {
            assert_eq!(victim, ids[1], "should remove the [1,1] VM");
        } else {
            assert_eq!(victim, ids[0], "should remove the [1,1,1,1] VM");
        }
    }
}
