//! Best Possible Resource Utilization (Algorithm 1, line 19).
//!
//! The BPRU of a profile is "the maximum resource utilization that the
//! profile can further reach by accommodating several other VMs, i.e. the
//! maximum resource utilization among those of the endpoints of paths
//! containing the profile. If a profile cannot accommodate any other VMs,
//! then the BPRU of this profile is the resource utilization of itself."
//!
//! Because the profile graph is a DAG whose edges strictly increase total
//! usage, sorting nodes by total usage yields a topological order, and BPRU
//! is a single max-propagation sweep in reverse of it. Multiplying PageRank
//! scores by BPRU discounts profiles whose every future ends short of the
//! best profile.

use crate::graph::{ix, NodeId, ProfileGraph};

/// Compute the BPRU of every node.
///
/// `bpru[i] ∈ (0, 1]`, and `bpru[i] == 1.0` exactly when some endpoint with
/// full utilization (the best profile) is reachable from `i`.
#[must_use]
pub fn bpru(graph: &ProfileGraph) -> Vec<f64> {
    let n = graph.node_count();
    let mut order: Vec<NodeId> = graph.node_ids().collect();
    let total = |id: NodeId| -> u64 {
        graph
            .profile(id)
            .values()
            .iter()
            .map(|&v| u64::from(v))
            .sum()
    };
    // Reverse topological order: decreasing total usage.
    order.sort_unstable_by_key(|&id| std::cmp::Reverse(total(id)));

    let mut out = vec![0.0f64; n];
    for id in order {
        let succ = graph.successors(id);
        out[ix(id)] = if succ.is_empty() {
            graph.utilization(id)
        } else {
            succ.iter()
                .map(|&s| out[ix(s)])
                .fold(f64::NEG_INFINITY, f64::max)
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphLimits;
    use crate::profile::{Profile, ProfileSpace, ProfileVm};

    fn paper_graph() -> ProfileGraph {
        let space = ProfileSpace::uniform(4, 4);
        let vms = vec![
            ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
            ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
        ];
        ProfileGraph::build(space, vms, GraphLimits::default()).unwrap()
    }

    fn node(g: &ProfileGraph, v: &[u64]) -> usize {
        let p: Profile = g.space().canonicalize(&[v]);
        g.node(&p).expect("profile reachable") as usize
    }

    #[test]
    fn profiles_that_can_reach_best_have_bpru_one() {
        let g = paper_graph();
        let b = bpru(&g);
        // §III-B: [3,3,2,2] can develop to the best profile…
        assert!((b[node(&g, &[3, 3, 2, 2])] - 1.0).abs() < 1e-12);
        // …and so can the empty profile and [3,3,3,3].
        assert!((b[node(&g, &[0, 0, 0, 0])] - 1.0).abs() < 1e-12);
        assert!((b[node(&g, &[3, 3, 3, 3])] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dead_end_profiles_are_discounted() {
        // §III-B: [4,3,3,3] can never reach [4,4,4,4] with VM set
        // {[1,1],[1,1,1,1]} — both shapes add even totals while the
        // deficit is 3. The profile itself is only in the *full* graph
        // (odd total ⇒ unreachable from empty).
        let space = ProfileSpace::uniform(4, 4);
        let vms = vec![
            ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
            ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
        ];
        let g = ProfileGraph::build_full(space, vms, GraphLimits::default()).unwrap();
        let b = bpru(&g);
        let id = node(&g, &[4, 3, 3, 3]);
        assert!(b[id] < 1.0, "bpru = {}", b[id]);
        // Its best endpoint is [4,4,4,3]: utilization 15/16.
        assert!((b[id] - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn endpoint_bpru_is_its_own_utilization() {
        let g = paper_graph();
        let b = bpru(&g);
        for id in g.node_ids() {
            if g.is_endpoint(id) {
                assert!((b[id as usize] - g.utilization(id)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bpru_is_monotone_along_edges() {
        // A node's BPRU is the max over its successors', so it can never
        // exceed… wait: predecessors can reach everything a successor can,
        // so bpru[pred] >= bpru[succ] is false in general — bpru[pred] is
        // the max over ALL its successors. Check the defining recurrence.
        let g = paper_graph();
        let b = bpru(&g);
        for id in g.node_ids() {
            let succ = g.successors(id);
            if !succ.is_empty() {
                let max = succ
                    .iter()
                    .map(|&s| b[s as usize])
                    .fold(f64::NEG_INFINITY, f64::max);
                assert!((b[id as usize] - max).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bpru_bounds() {
        let g = paper_graph();
        for (id, v) in bpru(&g).iter().enumerate() {
            assert!(*v > 0.0 && *v <= 1.0, "node {id}: {v}");
            // BPRU can never be below the node's own utilization.
            assert!(*v >= g.utilization(id as u32) - 1e-12);
        }
    }
}
