//! The parallel-determinism contract (DESIGN.md §10): graph build and
//! PageRank produce **bit-for-bit identical** results at any worker
//! count. Scores are compared by `f64::to_bits`, not approximate
//! equality — scheduling must never leak into results.

use pagerankvm::{
    pagerank_with_pool, GraphLimits, Orientation, PageRankConfig, Pool, ProfileGraph, ProfileSpace,
    ProfileVm,
};

fn paper_vms() -> Vec<ProfileVm> {
    vec![
        ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
        ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
    ]
}

/// A profile space big enough that every thread count actually chunks
/// the work (hundreds of nodes), yet quick to build in a test.
fn space() -> ProfileSpace {
    ProfileSpace::uniform(6, 6)
}

#[test]
fn graph_build_is_identical_at_1_2_4_threads() {
    let reference = ProfileGraph::build_with_pool(
        space(),
        paper_vms(),
        GraphLimits::default(),
        Pool::sequential(),
    )
    .expect("reference build");
    assert!(
        reference.node_count() > 100,
        "space too small to exercise chunking: {} nodes",
        reference.node_count()
    );
    for threads in [2usize, 4] {
        let got = ProfileGraph::build_with_pool(
            space(),
            paper_vms(),
            GraphLimits::default(),
            Pool::new(threads),
        )
        .expect("parallel build");
        assert_eq!(
            got.node_count(),
            reference.node_count(),
            "threads={threads}"
        );
        assert_eq!(
            got.edge_count(),
            reference.edge_count(),
            "threads={threads}"
        );
        for id in reference.node_ids() {
            assert_eq!(
                got.profile(id),
                reference.profile(id),
                "node {id} profile differs at {threads} threads"
            );
            assert_eq!(
                got.successors(id),
                reference.successors(id),
                "node {id} successors differ at {threads} threads"
            );
            assert_eq!(
                got.utilization(id).to_bits(),
                reference.utilization(id).to_bits(),
                "node {id} utilization bits differ at {threads} threads"
            );
        }
    }
}

#[test]
fn pagerank_bits_are_identical_at_1_2_4_threads_both_orientations() {
    for orientation in [Orientation::TowardEmptier, Orientation::TowardFuller] {
        let config = PageRankConfig {
            orientation,
            ..PageRankConfig::default()
        };
        let graph = ProfileGraph::build_with_pool(
            space(),
            paper_vms(),
            GraphLimits::default(),
            Pool::sequential(),
        )
        .expect("build");
        let reference = pagerank_with_pool(&graph, &config, Pool::sequential());
        assert!(reference.converged, "{orientation:?}");
        for threads in [2usize, 4] {
            let got = pagerank_with_pool(&graph, &config, Pool::new(threads));
            assert_eq!(
                got.iterations, reference.iterations,
                "{orientation:?} iteration count differs at {threads} threads"
            );
            assert_eq!(got.converged, reference.converged);
            for (i, (a, b)) in got.scores.iter().zip(reference.scores.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{orientation:?} score[{i}] differs at {threads} threads: {a:e} vs {b:e}"
                );
            }
            for (i, (a, b)) in got
                .residuals
                .iter()
                .zip(reference.residuals.iter())
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{orientation:?} residual[{i}] differs at {threads} threads"
                );
            }
        }
    }
}

/// Profiling is observation-only: with the per-worker timeline
/// recorder enabled (and, in test builds, the counting allocator
/// compiled in via the `prof-alloc` dev-dependency feature), graph and
/// score bits still match the unprofiled sequential reference exactly.
#[test]
fn profiling_enabled_runs_are_bit_identical() {
    let reference = ProfileGraph::build_with_pool(
        space(),
        paper_vms(),
        GraphLimits::default(),
        Pool::sequential(),
    )
    .expect("reference build");
    let reference_pr =
        pagerank_with_pool(&reference, &PageRankConfig::default(), Pool::sequential());

    prvm_obs::timeline::enable();
    let profiled =
        ProfileGraph::build_with_pool(space(), paper_vms(), GraphLimits::default(), Pool::new(2))
            .expect("profiled build");
    let profiled_pr = pagerank_with_pool(&profiled, &PageRankConfig::default(), Pool::new(2));
    let timeline = prvm_obs::timeline::disable();

    assert!(
        timeline.worker_lanes().len() >= 2,
        "2-thread profiled run should record >= 2 worker lanes, got {:?}",
        timeline.lanes
    );
    assert_eq!(profiled.node_count(), reference.node_count());
    assert_eq!(profiled.edge_count(), reference.edge_count());
    for id in reference.node_ids() {
        assert_eq!(
            profiled.successors(id),
            reference.successors(id),
            "node {id}"
        );
        assert_eq!(
            profiled.utilization(id).to_bits(),
            reference.utilization(id).to_bits(),
            "node {id} utilization bits"
        );
    }
    assert_eq!(profiled_pr.iterations, reference_pr.iterations);
    for (i, (a, b)) in profiled_pr
        .scores
        .iter()
        .zip(reference_pr.scores.iter())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "score[{i}] differs under profiling"
        );
    }
}

#[test]
fn full_space_graph_is_identical_at_1_2_4_threads() {
    let reference = ProfileGraph::build_full_with_pool(
        space(),
        paper_vms(),
        GraphLimits::default(),
        Pool::sequential(),
    )
    .expect("reference build_full");
    for threads in [2usize, 4] {
        let got = ProfileGraph::build_full_with_pool(
            space(),
            paper_vms(),
            GraphLimits::default(),
            Pool::new(threads),
        )
        .expect("parallel build_full");
        assert_eq!(got.node_count(), reference.node_count());
        assert_eq!(got.edge_count(), reference.edge_count());
        for id in reference.node_ids() {
            assert_eq!(got.successors(id), reference.successors(id), "node {id}");
        }
    }
}
