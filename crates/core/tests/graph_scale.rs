//! Scale checks for the EC2-catalog profile graphs (release-mode friendly).

use pagerankvm::{GraphLimits, PageRankConfig, ScoreBook};
use prvm_model::{catalog, Quantizer};
use std::time::Instant;

#[test]
#[ignore = "scale probe; run with --release -- --ignored"]
fn ec2_default_quantizer_graph_stats() {
    for q in [
        Quantizer {
            core_slots: 2,
            mem_levels: 4,
            disk_levels: 2,
        },
        Quantizer {
            core_slots: 4,
            mem_levels: 4,
            disk_levels: 2,
        },
        Quantizer {
            core_slots: 4,
            mem_levels: 8,
            disk_levels: 4,
        },
    ] {
        let t0 = Instant::now();
        let book = ScoreBook::build(
            q,
            &catalog::ec2_pm_types(),
            &catalog::ec2_vm_types(),
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .unwrap();
        for pm in catalog::ec2_pm_types() {
            let t = book.table(&pm).unwrap();
            eprintln!(
                "q={q:?} pm={} nodes={} edges={} iters={} elapsed={:?}",
                pm.name,
                t.graph().node_count(),
                t.graph().edge_count(),
                t.pagerank().iterations,
                t0.elapsed()
            );
        }
    }
}

#[test]
#[ignore = "scale probe; run with --release -- --ignored"]
fn finer_quantizers() {
    for q in [
        Quantizer {
            core_slots: 4,
            mem_levels: 16,
            disk_levels: 4,
        },
        Quantizer {
            core_slots: 8,
            mem_levels: 16,
            disk_levels: 4,
        },
    ] {
        let t0 = Instant::now();
        match ScoreBook::build(
            q,
            &catalog::ec2_pm_types(),
            &catalog::ec2_vm_types(),
            &PageRankConfig::default(),
            GraphLimits::default(),
        ) {
            Ok(book) => {
                let t = book.table(&catalog::pm_m3()).unwrap();
                eprintln!(
                    "q={q:?} M3 nodes={} edges={} iters={} elapsed={:?}",
                    t.graph().node_count(),
                    t.graph().edge_count(),
                    t.pagerank().iterations,
                    t0.elapsed()
                );
            }
            Err(e) => eprintln!("q={q:?} failed: {e}"),
        }
    }
}
