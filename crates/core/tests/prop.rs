//! Property-based tests of the PageRankVM core: profile canonicalisation,
//! graph structure, PageRank and BPRU invariants.

use pagerankvm::{
    compute_bpru, pagerank, GraphLimits, Orientation, PageRankConfig, ProfileGraph, ProfileSpace,
    ProfileVm, ScoreTable,
};
use proptest::prelude::*;

/// Small random uniform spaces plus VM sets that fit them.
fn arb_setting() -> impl Strategy<Value = (ProfileSpace, Vec<ProfileVm>)> {
    (2usize..5, 2u16..5).prop_flat_map(|(dims, cap)| {
        let space = ProfileSpace::uniform(dims, cap);
        let vm = (1usize..=dims, 1u64..=u64::from(cap))
            .prop_map(|(width, size)| ProfileVm::from_demands("vm", vec![vec![size; width]]));
        (Just(space), prop::collection::vec(vm, 1..4))
    })
}

proptest! {
    /// Canonicalisation is idempotent and permutation-invariant.
    #[test]
    fn canonical_form_is_permutation_invariant(
        mut usage in prop::collection::vec(0u64..5, 2..8)
    ) {
        let space = ProfileSpace::uniform(usage.len(), 8);
        let a = space.canonicalize(&[&usage]);
        usage.reverse();
        let b = space.canonicalize(&[&usage]);
        prop_assert_eq!(&a, &b);
        // Idempotent: canonicalising the canonical values is a no-op.
        let vals: Vec<u64> = a.values().iter().map(|&v| u64::from(v)).collect();
        prop_assert_eq!(space.canonicalize(&[&vals]), a);
    }

    /// Every graph edge increases total usage by a VM's exact demand.
    #[test]
    fn edges_add_exactly_one_vm((space, vms) in arb_setting()) {
        let demands: Vec<u64> = vms.iter().map(ProfileVm::total_units).collect();
        let Ok(graph) = ProfileGraph::build(space, vms, GraphLimits::default()) else {
            return Ok(()); // no usable VM type: nothing to check
        };
        for id in graph.node_ids() {
            let from: u64 = graph.profile(id).values().iter().map(|&v| u64::from(v)).sum();
            for &s in graph.successors(id) {
                let to: u64 = graph
                    .profile(s)
                    .values()
                    .iter()
                    .map(|&v| u64::from(v))
                    .sum();
                prop_assert!(
                    demands.contains(&(to - from)),
                    "edge delta {} matches no VM demand {:?}",
                    to - from,
                    demands
                );
            }
        }
    }

    /// PageRank scores form a positive distribution under both
    /// orientations; BPRU is in (0, 1] and bounded below by the node's own
    /// utilization.
    #[test]
    fn rank_and_bpru_invariants((space, vms) in arb_setting()) {
        let Ok(graph) = ProfileGraph::build(space, vms, GraphLimits::default()) else {
            return Ok(());
        };
        for orientation in [Orientation::TowardEmptier, Orientation::TowardFuller] {
            let r = pagerank(
                &graph,
                &PageRankConfig { orientation, ..PageRankConfig::default() },
            );
            let sum: f64 = r.scores.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
            prop_assert!(r.scores.iter().all(|&s| s > 0.0));
        }
        let b = compute_bpru(&graph);
        for id in graph.node_ids() {
            let v = b[id as usize];
            prop_assert!(v > 0.0 && v <= 1.0 + 1e-12);
            prop_assert!(v >= graph.utilization(id) - 1e-12);
        }
    }

    /// The best profile, when reachable, always carries BPRU exactly 1 and
    /// every node on a path to it does too.
    #[test]
    fn bpru_is_one_exactly_on_best_reaching_nodes((space, vms) in arb_setting()) {
        let Ok(graph) = ProfileGraph::build(space.clone(), vms, GraphLimits::default()) else {
            return Ok(());
        };
        let b = compute_bpru(&graph);
        if let Some(best) = graph.node(&space.best_profile()) {
            prop_assert!((b[best as usize] - 1.0).abs() < 1e-12);
            // Any predecessor of a bpru-1 node has bpru 1.
            for id in graph.node_ids() {
                if graph
                    .successors(id)
                    .iter()
                    .any(|&s| (b[s as usize] - 1.0).abs() < 1e-12)
                {
                    prop_assert!((b[id as usize] - 1.0).abs() < 1e-12);
                }
            }
        }
    }

    /// Full-space tables cover every canonical profile and scores are
    /// finite and positive.
    #[test]
    fn full_table_is_total(dims in 2usize..4, cap in 2u16..4) {
        let space = ProfileSpace::uniform(dims, cap);
        let vms = vec![ProfileVm::from_demands("u", vec![vec![1]])];
        let table = ScoreTable::build_full(
            space,
            vms,
            &PageRankConfig::default(),
            GraphLimits::default(),
        )
        .unwrap();
        // Count = multisets of size `dims` over {0..cap}: C(dims+cap, dims).
        let expect = {
            let n = dims as u64 + u64::from(cap);
            let k = dims as u64;
            let mut c = 1u64;
            for i in 0..k {
                c = c * (n - i) / (i + 1);
            }
            c as usize
        };
        prop_assert_eq!(table.len(), expect);
        for (_, s) in table.iter() {
            prop_assert!(s.is_finite() && s > 0.0);
        }
    }
}
