//! Integration test for `pagerankvm bench --trace`: a real (smoke
//! scale) sweep at 1 and 2 workers must emit a schema-valid Chrome
//! trace containing at least two distinct worker tracks — the
//! acceptance bar for the profiling layer (ISSUE 6).

use prvm_bench::perf::{main_with, PerfArgs};
use prvm_model::Quantizer;
use prvm_obs::validate_chrome_trace;
use serde::Value;

#[test]
fn bench_trace_has_two_worker_tracks_at_two_threads() {
    let dir = std::env::temp_dir().join("prvm-bench-trace-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("trace.json");
    let out = dir.join("bench.json");
    let args = PerfArgs {
        vms: vec![20],
        threads: vec![1, 2],
        repeats: 1,
        out: out.clone(),
        trace: Some(trace_path.clone()),
        quantizer: Quantizer {
            core_slots: 2,
            mem_levels: 4,
            disk_levels: 2,
        },
        ..PerfArgs::default()
    };
    main_with(&args).expect("traced smoke sweep");

    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let parsed: Value = serde_json::from_str(&text).expect("trace parses as JSON");
    let stats = validate_chrome_trace(&parsed).expect("trace passes schema validation");
    assert!(
        stats.worker_tracks >= 2,
        "2-thread sweep recorded {} worker track(s)",
        stats.worker_tracks
    );
    assert!(stats.intervals > 0);

    // The per-chunk intervals carry their chunk index and a span-path
    // label, and at least two distinct worker tids recorded chunks.
    let Ok(Value::Array(events)) = parsed.field("traceEvents") else {
        panic!("no traceEvents array");
    };
    let mut worker_tids = std::collections::BTreeSet::new();
    let mut chunk_events = 0usize;
    for event in events {
        let Ok(Value::Str(ph)) = event.field("ph") else {
            continue;
        };
        if ph != "X" {
            continue;
        }
        let tid = event.field("tid").and_then(Value::as_u64).expect("tid");
        if tid >= 1 {
            worker_tids.insert(tid);
        }
        if event
            .field("args")
            .and_then(|args| args.field("chunk"))
            .is_ok()
        {
            chunk_events += 1;
        }
    }
    assert!(
        worker_tids.len() >= 2,
        "distinct worker tids: {worker_tids:?}"
    );
    assert!(chunk_events > 0, "no per-chunk intervals recorded");

    // `--check-trace` accepts the file it just wrote.
    main_with(&PerfArgs {
        check_trace: Some(trace_path),
        ..PerfArgs::default()
    })
    .expect("--check-trace accepts a freshly written trace");
}
