//! Shared harness for the figure/table binaries (see DESIGN.md §3 for the
//! experiment index).
//!
//! Figures 3 and 5–7 are different projections of the *same* simulation
//! sweep, and Figures 4(a), 4(b) and 8 of the same testbed sweep, so the
//! harness computes each sweep once and caches it as JSON under `target/`;
//! every figure binary then prints its own table from the cache. Use
//! `--fresh` to recompute.

#![warn(missing_docs)]

pub mod loadgen;
pub mod perf;

use prvm_sim::{Algorithm, MetricSummary, SimConfig};
use prvm_testbed::{run_testbed, TestbedConfig, TestbedOutcome};
use prvm_traces::stats::Percentiles;
use prvm_traces::TraceKind;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Repeats per configuration (paper: 100; default kept small so the
    /// full harness finishes in minutes).
    pub repeats: usize,
    /// Base seed.
    pub seed: u64,
    /// VM counts for the simulation sweep (paper: 1000, 2000, 3000).
    pub vms: Vec<usize>,
    /// Job counts for the testbed sweep (paper: up to 300).
    pub jobs: Vec<usize>,
    /// Ignore caches and recompute.
    pub fresh: bool,
}

impl Default for CliArgs {
    fn default() -> Self {
        Self {
            repeats: 5,
            seed: 42,
            vms: vec![1000, 2000, 3000],
            jobs: vec![100, 200, 300],
            fresh: false,
        }
    }
}

impl CliArgs {
    /// Parse `std::env::args()`-style flags: `--repeats N`, `--seed N`,
    /// `--vms a,b,c`, `--jobs a,b,c`, `--fresh`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags, missing values or
    /// unparseable numbers.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        let usage = "usage: [--repeats N] [--seed N] [--vms a,b,c] [--jobs a,b,c] [--fresh]";
        let int_list = |text: String| -> Result<Vec<usize>, String> {
            text.split(',')
                .map(|s| {
                    s.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("{s:?} is not a count; {usage}"))
                })
                .collect()
        };
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value; {usage}"))
            };
            match flag.as_str() {
                "--repeats" => {
                    out.repeats = value("--repeats")?
                        .parse()
                        .map_err(|_| format!("--repeats wants an integer; {usage}"))?;
                }
                "--seed" => {
                    out.seed = value("--seed")?
                        .parse()
                        .map_err(|_| format!("--seed wants an integer; {usage}"))?;
                }
                "--vms" => out.vms = int_list(value("--vms")?)?,
                "--jobs" => out.jobs = int_list(value("--jobs")?)?,
                "--fresh" => out.fresh = true,
                other => return Err(format!("unknown flag {other}; {usage}")),
            }
        }
        Ok(out)
    }

    /// Parse the process arguments (skipping argv\[0\]), exiting with the
    /// usage message on malformed flags.
    #[must_use]
    pub fn from_env() -> Self {
        Self::try_parse(std::env::args().skip(1)).unwrap_or_else(|message| {
            eprintln!("{message}");
            std::process::exit(2);
        })
    }
}

fn cache_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/prvm-results")
}

fn load_cache<T: for<'de> Deserialize<'de>>(name: &str) -> Option<T> {
    let path = cache_dir().join(name);
    let bytes = std::fs::read(path).ok()?;
    serde_json::from_slice(&bytes).ok()
}

/// Best-effort: an unwritable cache only costs recomputation next run.
fn store_cache<T: Serialize>(name: &str, value: &T) {
    let dir = cache_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[cache] cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    let json = match serde_json::to_vec_pretty(value) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("[cache] cannot serialize {name}: {e}");
            return;
        }
    };
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("[cache] wrote {}", path.display()),
        Err(e) => eprintln!("[cache] cannot write {}: {e}", path.display()),
    }
}

/// The full simulation sweep behind Figs. 3, 5, 6 and 7: both traces, the
/// paper's four algorithms, all VM counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimSweep {
    /// One row per (trace, n_vms, algorithm).
    pub rows: Vec<MetricSummary>,
    /// Repeats the sweep was computed with.
    pub repeats: usize,
    /// Base seed.
    pub seed: u64,
    /// VM counts the sweep was computed with. Stored in the cache file so
    /// a stale cache from a different configuration is detected even if
    /// the file name lies (copied/renamed caches, older formats).
    pub vms: Vec<usize>,
}

/// Compute (or load) the simulation sweep.
#[must_use]
pub fn sim_sweep(args: &CliArgs) -> SimSweep {
    let key = format!(
        "sim-r{}-s{}-v{}.json",
        args.repeats,
        args.seed,
        args.vms
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("_")
    );
    if !args.fresh {
        match load_cache::<SimSweep>(&key) {
            Some(hit)
                if hit.repeats == args.repeats && hit.seed == args.seed && hit.vms == args.vms =>
            {
                eprintln!("[cache] loaded {key} (pass --fresh to recompute)");
                return hit;
            }
            Some(_) => eprintln!("[cache] {key} is from a different configuration; recomputing"),
            None => {}
        }
    }
    let t0 = Instant::now();
    eprintln!("[sweep] building Profile-PageRank score tables…");
    let book = prvm_sim::ec2_score_book()
        .unwrap_or_else(|e| panic!("EC2 catalog graph build failed: {e}"));
    let sim = SimConfig::default();
    let mut rows = Vec::new();
    for kind in [TraceKind::PlanetLab, TraceKind::GoogleCluster] {
        for &n in &args.vms {
            for algo in Algorithm::PAPER_SET {
                let t = Instant::now();
                let row = prvm_sim::run_repeats(
                    algo,
                    &book,
                    &sim,
                    &prvm_sim::WorkloadConfig::sized_for(n, kind),
                    args.repeats,
                    args.seed,
                );
                eprintln!(
                    "[sweep] {:12} {:>5} VMs {:14} pms={:6.1} init={:6.1} peak={:6.1} migr={:8.1} ({:.1?})",
                    kind.label(),
                    n,
                    row.algorithm,
                    row.pms_used.median,
                    row.pms_used_initial.median,
                    row.pms_used_max_active.median,
                    row.migrations.median,
                    t.elapsed()
                );
                rows.push(row);
            }
        }
    }
    eprintln!("[sweep] total {:.1?}", t0.elapsed());
    let sweep = SimSweep {
        rows,
        repeats: args.repeats,
        seed: args.seed,
        vms: args.vms.clone(),
    };
    store_cache(&key, &sweep);
    sweep
}

/// One testbed configuration's percentile summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestbedSummary {
    /// Algorithm display name.
    pub algorithm: String,
    /// Number of jobs.
    pub jobs: usize,
    /// Nodes used by the initial allocation (Fig. 4(a)).
    pub pms_used_initial: Percentiles,
    /// Distinct nodes ever used (initial + migration targets).
    pub pms_used: Percentiles,
    /// Kill-and-restart migrations (Fig. 4(b)).
    pub migrations: Percentiles,
    /// SLO violation percentage (Fig. 8).
    pub slo_pct: Percentiles,
    /// Mean rejected jobs.
    pub mean_rejected: f64,
}

/// The full testbed sweep behind Figs. 4 and 8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestbedSweep {
    /// One row per (jobs, algorithm).
    pub rows: Vec<TestbedSummary>,
    /// Repeats.
    pub repeats: usize,
    /// Base seed.
    pub seed: u64,
    /// Job counts the sweep was computed with (cache-staleness guard,
    /// mirroring [`SimSweep::vms`]).
    pub jobs: Vec<usize>,
}

/// Compute (or load) the testbed sweep.
#[must_use]
pub fn testbed_sweep(args: &CliArgs) -> TestbedSweep {
    let key = format!(
        "testbed-r{}-s{}-j{}.json",
        args.repeats,
        args.seed,
        args.jobs
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("_")
    );
    if !args.fresh {
        match load_cache::<TestbedSweep>(&key) {
            Some(hit)
                if hit.repeats == args.repeats
                    && hit.seed == args.seed
                    && hit.jobs == args.jobs =>
            {
                eprintln!("[cache] loaded {key} (pass --fresh to recompute)");
                return hit;
            }
            Some(_) => eprintln!("[cache] {key} is from a different configuration; recomputing"),
            None => {}
        }
    }
    let cfg = TestbedConfig::default();
    eprintln!("[testbed] building score table for the GENI node…");
    let book = Arc::new(
        cfg.score_book()
            .unwrap_or_else(|e| panic!("testbed graph build failed: {e}")),
    );
    let mut rows = Vec::new();
    for &jobs in &args.jobs {
        for algo in Algorithm::PAPER_SET {
            let t = Instant::now();
            // Repeats stay sequential on purpose: unlike the simulator's
            // virtual clock, testbed jobs race real-time deadlines
            // (`recv_timeout`), so parallel repeats would contend for CPU
            // and could flip SLO outcomes nondeterministically.
            let outcomes: Vec<TestbedOutcome> = (0..args.repeats)
                .map(|r| {
                    let seed = args.seed.wrapping_add(r as u64);
                    let (mut placer, mut evictor) = algo.build(&book, seed);
                    run_testbed(&cfg, jobs, placer.as_mut(), evictor.as_mut(), seed)
                })
                .collect();
            let p = |f: &dyn Fn(&TestbedOutcome) -> f64| {
                Percentiles::of(&outcomes.iter().map(f).collect::<Vec<_>>())
            };
            let row = TestbedSummary {
                algorithm: algo.name().to_string(),
                jobs,
                pms_used_initial: p(&|o| o.pms_used_initial as f64),
                pms_used: p(&|o| o.pms_used as f64),
                migrations: p(&|o| o.migrations as f64),
                slo_pct: p(&|o| o.slo_violation_pct),
                mean_rejected: outcomes.iter().map(|o| o.rejected_jobs as f64).sum::<f64>()
                    / args.repeats.max(1) as f64,
            };
            eprintln!(
                "[testbed] {:>4} jobs {:14} nodes={:4.1} migr={:7.1} slo={:5.2}% ({:.1?})",
                jobs,
                row.algorithm,
                row.pms_used.median,
                row.migrations.median,
                row.slo_pct.median,
                t.elapsed()
            );
            rows.push(row);
        }
    }
    let sweep = TestbedSweep {
        rows,
        repeats: args.repeats,
        seed: args.seed,
        jobs: args.jobs.clone(),
    };
    store_cache(&key, &sweep);
    sweep
}

/// Print one figure's table: rows = VM counts, columns = algorithms,
/// cells = `median (p1–p99)`.
pub fn print_metric_table(
    title: &str,
    rows: &[MetricSummary],
    trace: &str,
    metric: impl Fn(&MetricSummary) -> Percentiles,
) {
    println!("\n=== {title} — {trace} trace ===");
    let algos: Vec<String> = {
        let mut v: Vec<String> = rows.iter().map(|r| r.algorithm.clone()).collect();
        v.dedup();
        v.sort();
        v.dedup();
        // Keep the paper's plotting order where possible.
        let order = ["PageRankVM", "CompVM", "FFDSum", "FF"];
        let mut sorted: Vec<String> = order
            .iter()
            .filter(|o| v.iter().any(|a| a == *o))
            .map(ToString::to_string)
            .collect();
        for a in v {
            if !sorted.contains(&a) {
                sorted.push(a);
            }
        }
        sorted
    };
    print!("{:>8}", "#VMs");
    for a in &algos {
        print!(" | {a:>26}");
    }
    println!();
    let mut ns: Vec<usize> = rows
        .iter()
        .filter(|r| r.trace == trace)
        .map(|r| r.n_vms)
        .collect();
    ns.sort_unstable();
    ns.dedup();
    for n in ns {
        print!("{n:>8}");
        for a in &algos {
            let cell = rows
                .iter()
                .find(|r| r.trace == trace && r.n_vms == n && &r.algorithm == a)
                .map_or_else(
                    || format!("{:>26}", "-"),
                    |r| {
                        let p = metric(r);
                        if p.p99 < 10.0 {
                            format!("{:>10.2} ({:>5.2}–{:>6.2})", p.median, p.p1, p.p99)
                        } else {
                            format!("{:>10.1} ({:>5.1}–{:>6.1})", p.median, p.p1, p.p99)
                        }
                    },
                );
            print!(" | {cell}");
        }
        println!();
    }
}

/// Print a testbed figure's table.
pub fn print_testbed_table(
    title: &str,
    rows: &[TestbedSummary],
    metric: impl Fn(&TestbedSummary) -> Percentiles,
) {
    println!("\n=== {title} — GENI testbed emulation (Google trace) ===");
    let order = ["PageRankVM", "CompVM", "FFDSum", "FF"];
    print!("{:>8}", "#VMs");
    for a in order {
        print!(" | {a:>22}");
    }
    println!();
    let mut js: Vec<usize> = rows.iter().map(|r| r.jobs).collect();
    js.sort_unstable();
    js.dedup();
    for j in js {
        print!("{j:>8}");
        for a in order {
            let cell = rows
                .iter()
                .find(|r| r.jobs == j && r.algorithm == a)
                .map_or_else(
                    || format!("{:>22}", "-"),
                    |r| {
                        let p = metric(r);
                        format!("{:>8.1} ({:>4.1}–{:>5.1})", p.median, p.p1, p.p99)
                    },
                );
            print!(" | {cell}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_defaults() {
        let a = CliArgs::try_parse(std::iter::empty()).unwrap();
        assert_eq!(a, CliArgs::default());
    }

    #[test]
    fn cli_parses_flags() {
        let a = CliArgs::try_parse(
            ["--repeats", "9", "--seed", "7", "--vms", "10,20", "--fresh"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(a.repeats, 9);
        assert_eq!(a.seed, 7);
        assert_eq!(a.vms, vec![10, 20]);
        assert!(a.fresh);
    }

    #[test]
    fn cli_rejects_malformed_flags() {
        let err = CliArgs::try_parse(["--bogus".to_string()]).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        let err = CliArgs::try_parse(["--vms".to_string()]).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = CliArgs::try_parse(["--vms".to_string(), "1,x".to_string()]).unwrap_err();
        assert!(err.contains("not a count"), "{err}");
        let err = CliArgs::try_parse(["--seed".to_string(), "abc".to_string()]).unwrap_err();
        assert!(err.contains("integer"), "{err}");
    }

    #[test]
    fn cache_round_trip() {
        let sweep = TestbedSweep {
            rows: vec![],
            repeats: 1,
            seed: 2,
            jobs: vec![10, 20],
        };
        store_cache("test-roundtrip.json", &sweep);
        let back: TestbedSweep = load_cache("test-roundtrip.json").unwrap();
        assert_eq!(back.repeats, 1);
        assert_eq!(back.seed, 2);
        assert_eq!(back.jobs, vec![10, 20]);
    }

    /// A cache file whose *contents* disagree with the requested
    /// configuration must not be reused — the header fields are the
    /// guard, not the file name.
    #[test]
    fn stale_cache_header_is_detected() {
        let stale = SimSweep {
            rows: vec![],
            repeats: 3,
            seed: 9,
            vms: vec![10],
        };
        store_cache("test-stale-header.json", &stale);
        let back: SimSweep = load_cache("test-stale-header.json").unwrap();
        let want = CliArgs {
            repeats: 5,
            ..CliArgs::default()
        };
        assert!(
            back.repeats != want.repeats || back.seed != want.seed || back.vms != want.vms,
            "header mismatch must be observable so sim_sweep recomputes"
        );
    }
}
