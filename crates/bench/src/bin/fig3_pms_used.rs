//! Fig. 3(a)/(b): the number of PMs used in the simulation, PlanetLab and
//! Google traces, median with p1–p99 bars.
//!
//! Expected shape (paper): PageRankVM < CompVM < FFDSum < FF.

use prvm_bench::{print_metric_table, sim_sweep, CliArgs};

fn main() {
    let args = CliArgs::from_env();
    let sweep = sim_sweep(&args);
    print_metric_table(
        "Fig. 3(a): number of PMs used by the allocation",
        &sweep.rows,
        "PlanetLab",
        |r| r.pms_used_initial,
    );
    print_metric_table(
        "Fig. 3(b): number of PMs used by the allocation",
        &sweep.rows,
        "GoogleCluster",
        |r| r.pms_used_initial,
    );
    print_metric_table(
        "Fig. 3 supplement: distinct PMs ever used over 24 h (incl. migration targets)",
        &sweep.rows,
        "PlanetLab",
        |r| r.pms_used,
    );
    print_metric_table(
        "Fig. 3 supplement: distinct PMs ever used over 24 h (incl. migration targets)",
        &sweep.rows,
        "GoogleCluster",
        |r| r.pms_used,
    );
    println!(
        "\n(repeats = {}; paper uses 100 — pass --repeats 100 to match)",
        sweep.repeats
    );
}
