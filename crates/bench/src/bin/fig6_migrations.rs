//! Fig. 6(a)/(b): number of VM migrations over the 24 h simulation, both
//! traces.
//!
//! Expected shape (paper): PageRankVM < CompVM < FFDSum < FF.

use prvm_bench::{print_metric_table, sim_sweep, CliArgs};

fn main() {
    let args = CliArgs::from_env();
    let sweep = sim_sweep(&args);
    print_metric_table(
        "Fig. 6(a): number of VM migrations",
        &sweep.rows,
        "PlanetLab",
        |r| r.migrations,
    );
    print_metric_table(
        "Fig. 6(b): number of VM migrations",
        &sweep.rows,
        "GoogleCluster",
        |r| r.migrations,
    );
}
