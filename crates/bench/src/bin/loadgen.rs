//! `loadgen` binary: drive a running `prvm-serve` daemon with the
//! deterministic closed-loop workload and report throughput + latency
//! percentiles (optionally merged into `BENCH_PRVM.json`).

fn main() {
    let args = prvm_bench::loadgen::LoadGenArgs::from_env();
    if let Err(message) = prvm_bench::loadgen::main_with(&args) {
        eprintln!("loadgen: {message}");
        std::process::exit(1);
    }
}
