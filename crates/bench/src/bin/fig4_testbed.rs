//! Fig. 4(a)/(b): number of PMs used and number of migrations in the GENI
//! testbed emulation (Google trace).
//!
//! Expected shape (paper): PageRankVM uses the fewest nodes and migrates
//! least, with smaller margins than in simulation (fewer PMs, fewer
//! dimensions).

use prvm_bench::{print_testbed_table, testbed_sweep, CliArgs};

fn main() {
    let args = CliArgs::from_env();
    let sweep = testbed_sweep(&args);
    print_testbed_table(
        "Fig. 4(a): number of PMs used by the allocation",
        &sweep.rows,
        |r| r.pms_used_initial,
    );
    print_testbed_table("Fig. 4(b): number of VM migrations", &sweep.rows, |r| {
        r.migrations
    });
    println!("\n(repeats = {})", sweep.repeats);
}
