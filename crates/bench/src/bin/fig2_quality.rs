//! Fig. 2 and the §III-B motivation: profile "quality" under the
//! PageRank ranking versus utilization/variance ranking.
//!
//! Prints the two comparisons the paper argues from:
//! * §V-A / Fig. 2 — `[3,3,3,3]` vs `[4,4,2,2]` (two ways vs one way to
//!   the best profile);
//! * §III-B — `[3,3,2,2]` vs `[4,3,3,3]` (the variance metric prefers the
//!   dead-end profile);
//! * the VM-set change (`{[1],[1,1]}`) under which the paper says
//!   `[4,4,2,2]` and `[3,3,3,3]` become equal quality.

use pagerankvm::{GraphLimits, PageRankConfig, Profile, ProfileSpace, ProfileVm, ScoreTable};

fn table(vms: Vec<ProfileVm>) -> ScoreTable {
    ScoreTable::build_full(
        ProfileSpace::uniform(4, 4),
        vms,
        &PageRankConfig::default(),
        GraphLimits::default(),
    )
    .expect("70-node graph builds")
}

fn report(t: &ScoreTable, raw: &[u64]) -> (f64, f64, f64) {
    let space = t.space();
    let p: Profile = space.canonicalize(&[raw]);
    let score = t.score(&p).expect("full graph covers all profiles");
    (score * 1000.0, space.utilization(&p), space.variance(&p))
}

fn main() {
    println!("PM capacity [4,4,4,4]; VM set {{[1,1], [1,1,1,1]}}\n");
    let t = table(vec![
        ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
        ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
    ]);

    println!(
        "{:<12} {:>12} {:>8} {:>10}",
        "profile", "score(x1000)", "util", "variance"
    );
    for raw in [[3u64, 3, 3, 3], [4, 4, 2, 2], [3, 3, 2, 2], [4, 3, 3, 3]] {
        let (s, u, v) = report(&t, &raw);
        println!(
            "{:<12} {:>12.6} {:>7.0}% {:>10.5}",
            format!("{raw:?}"),
            s,
            u * 100.0,
            v
        );
    }

    let (a, _, _) = report(&t, &[3, 3, 3, 3]);
    let (b, _, _) = report(&t, &[4, 4, 2, 2]);
    println!(
        "\nFig. 2 claim  : quality([3,3,3,3]) > quality([4,4,2,2])  -> {}",
        if a > b { "HOLDS" } else { "VIOLATED" }
    );
    let (c, _, _) = report(&t, &[3, 3, 2, 2]);
    let (d, _, _) = report(&t, &[4, 3, 3, 3]);
    println!(
        "SIII-B claim : quality([3,3,2,2]) > quality([4,3,3,3])  -> {}",
        if c > d { "HOLDS" } else { "VIOLATED" }
    );
    println!(
        "               (utilization/variance metrics prefer [4,3,3,3]: util {:.0}% vs {:.0}%)",
        report(&t, &[4, 3, 3, 3]).1 * 100.0,
        report(&t, &[3, 3, 2, 2]).1 * 100.0,
    );

    println!("\nVM set changed to {{[1], [1,1]}}:");
    let t2 = table(vec![
        ProfileVm::from_demands("[1]", vec![vec![1]]),
        ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
    ]);
    let (a2, _, _) = report(&t2, &[3, 3, 3, 3]);
    let (b2, _, _) = report(&t2, &[4, 4, 2, 2]);
    println!(
        "quality([3,3,3,3]) = {a2:.6}, quality([4,4,2,2]) = {b2:.6} \
         (paper: both can reach the best profile; gap shrinks from {:.6} to {:.6})",
        (a - b).abs(),
        (a2 - b2).abs()
    );
}
