//! Standalone entry for the perf sweep — same engine as `pagerankvm
//! bench` (see `prvm_bench::perf`): writes `BENCH_PRVM.json`.

fn main() {
    let args = prvm_bench::perf::PerfArgs::from_env();
    if let Err(message) = prvm_bench::perf::main_with(&args) {
        eprintln!("perf: {message}");
        std::process::exit(1);
    }
}
