//! Fig. 7(a)/(b): SLO violations (% of time active hosts sat at 100 % CPU)
//! over the 24 h simulation, both traces.
//!
//! Expected shape (paper): PageRankVM < CompVM < FFDSum < FF.

use prvm_bench::{print_metric_table, sim_sweep, CliArgs};

fn main() {
    let args = CliArgs::from_env();
    let sweep = sim_sweep(&args);
    print_metric_table(
        "Fig. 7(a): SLO violations (%)",
        &sweep.rows,
        "PlanetLab",
        |r| r.slo_pct,
    );
    print_metric_table(
        "Fig. 7(b): SLO violations (%)",
        &sweep.rows,
        "GoogleCluster",
        |r| r.slo_pct,
    );
}
