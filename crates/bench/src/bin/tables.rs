//! Regenerates Tables I, II and III of the paper from the catalog and the
//! energy model.

use prvm_model::catalog;
use prvm_sim::PowerCurve;

fn main() {
    println!("=== Table I: Description of VM types ===");
    println!(
        "{:<12} {:>7} {:>11} {:>13} {:>7} {:>10}",
        "VM type", "#vCPU", "speed(GHz)", "memory(GiB)", "#disk", "size(GB)"
    );
    for vm in catalog::ec2_vm_types() {
        println!(
            "{:<12} {:>7} {:>11.1} {:>13.2} {:>7} {:>10}",
            vm.name,
            vm.vcpus,
            vm.vcpu_mhz.get() as f64 / 1000.0,
            vm.memory.get() as f64 / 1024.0,
            vm.disks().len(),
            vm.disks().first().map_or(0, |d| d.get()),
        );
    }

    println!("\n=== Table II: Description of PM types ===");
    println!(
        "{:<12} {:>7} {:>11} {:>13} {:>7} {:>10}",
        "PM type", "#cores", "speed(GHz)", "memory(GiB)", "#disk", "size(GB)"
    );
    for pm in catalog::ec2_pm_types() {
        println!(
            "{:<12} {:>7} {:>11.1} {:>13.2} {:>7} {:>10}",
            pm.name,
            pm.cores,
            pm.core_mhz.get() as f64 / 1000.0,
            pm.memory.get() as f64 / 1024.0,
            pm.disks().len(),
            pm.disks().first().map_or(0, |d| d.get()),
        );
    }

    println!("\n=== Table III: Power consumption vs. CPU utilization (W) ===");
    print!("{:<14}", "CPU util.");
    for u in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        print!(" {:>7.0}%", u * 100.0);
    }
    println!();
    for (name, curve) in [
        ("E5-2670", PowerCurve::E5_2670),
        ("E5-2680", PowerCurve::E5_2680),
    ] {
        print!("{name:<14}");
        for u in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            print!(" {:>8.1}", curve.watts_at(u));
        }
        println!();
    }
}
