//! Fig. 5(a)/(b): cumulative energy consumption (kWh) over the 24 h
//! simulation, both traces.
//!
//! Expected shape (paper): PageRankVM < CompVM < FFDSum < FF.

use prvm_bench::{print_metric_table, sim_sweep, CliArgs};

fn main() {
    let args = CliArgs::from_env();
    let sweep = sim_sweep(&args);
    print_metric_table(
        "Fig. 5(a): energy consumption (kWh)",
        &sweep.rows,
        "PlanetLab",
        |r| r.energy_kwh,
    );
    print_metric_table(
        "Fig. 5(b): energy consumption (kWh)",
        &sweep.rows,
        "GoogleCluster",
        |r| r.energy_kwh,
    );
}
