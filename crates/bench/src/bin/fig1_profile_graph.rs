//! Fig. 1: the PageRank graph showing rank values of different PM
//! profiles.
//!
//! Reproduces the paper's illustrative graph on a small space — a PM of
//! capacity `[4,4,4,4]` with the VM set `{[1,1], [1,1,1,1]}` (the shapes
//! of §V-A / Fig. 2) — and prints every node with its final score and
//! outgoing edges.

use pagerankvm::{GraphLimits, PageRankConfig, ProfileSpace, ProfileVm, ScoreTable};

fn main() {
    let space = ProfileSpace::uniform(4, 4);
    let vms = vec![
        ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
        ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
    ];
    let table = ScoreTable::build(
        space,
        vms,
        &PageRankConfig::default(),
        GraphLimits::default(),
    )
    .expect("tiny graph builds");

    let g = table.graph();
    println!(
        "Profile graph: PM capacity [4,4,4,4], VM set {{[1,1],[1,1,1,1]}}: \
         {} profiles, {} edges, PageRank converged in {} iterations\n",
        g.node_count(),
        g.edge_count(),
        table.pagerank().iterations
    );

    // Sort nodes by final score (descending) like the figure's shading.
    let mut nodes: Vec<(u32, f64)> = g
        .node_ids()
        .map(|id| (id, table.score(g.profile(id)).expect("own node")))
        .collect();
    nodes.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));

    println!(
        "{:<14} {:>10} {:>7} {:>9}  successors",
        "profile", "score", "util", "endpoint"
    );
    for (id, score) in nodes {
        let succ: Vec<String> = g
            .successors(id)
            .iter()
            .map(|&s| g.profile(s).to_string())
            .collect();
        println!(
            "{:<14} {:>10.6} {:>6.0}% {:>9} {}",
            g.profile(id).to_string(),
            score * 1000.0,
            g.utilization(id) * 100.0,
            if g.is_endpoint(id) { "yes" } else { "" },
            succ.join(" ")
        );
    }
    println!("\n(scores ×1000; higher = preferred placement outcome)");
}
