//! Ablation: the 2-choice sampled placer (§V-C) versus the exhaustive
//! Algorithm 2 scan — packing quality and placement latency.
//!
//! The paper cites the power-of-two-choices results to argue that polling
//! two random PMs captures most of the benefit at O(1) cost; this bench
//! quantifies the claim, including larger poll sizes.

use pagerankvm::{PageRankVmPlacer, TwoChoicePlacer};
use prvm_bench::CliArgs;
use prvm_model::{catalog, place_batch, Cluster, PlacementAlgorithm};
use prvm_sim::ec2_score_book;
use std::time::Instant;

fn main() {
    let args = CliArgs::from_env();
    let book = ec2_score_book().expect("EC2 catalog graph builds");
    let types = catalog::ec2_vm_types();

    println!(
        "{:<22} {:>6} {:>10} {:>14}",
        "placer", "#VMs", "PMs used", "time/placement"
    );
    for &n in &args.vms {
        let vms: Vec<_> = (0..n)
            .map(|i| types[(i * 7) % types.len()].clone())
            .collect();
        let run = |name: &str, placer: &mut dyn PlacementAlgorithm| {
            let mut cluster = Cluster::from_specs((0..n).map(|i| {
                if i % 3 == 2 {
                    catalog::pm_c3()
                } else {
                    catalog::pm_m3()
                }
            }));
            let t0 = Instant::now();
            place_batch(placer, &mut cluster, vms.clone()).expect("pool sized");
            let per = t0.elapsed() / n as u32;
            println!(
                "{:<22} {:>6} {:>10} {:>14.1?}",
                name,
                n,
                cluster.active_pm_count(),
                per
            );
        };
        run(
            "exhaustive (Alg. 2)",
            &mut PageRankVmPlacer::new(book.clone()),
        );
        for poll in [2usize, 4, 8] {
            run(
                &format!("{poll}-choice"),
                &mut TwoChoicePlacer::with_poll_size(book.clone(), args.seed, poll),
            );
        }
    }
    println!("\n(2-choice trades a few extra PMs for near-constant placement cost)");
}
