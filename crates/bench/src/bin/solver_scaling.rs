//! The paper's intractability claim (§IV): exact branch-and-bound on the
//! MIP model blows up quickly, while the heuristics stay fast — and on
//! instances the solver *can* finish, the heuristics' optimality gap is
//! measured.

use pagerankvm::PageRankVmPlacer;
use prvm_baselines::FirstFit;
use prvm_model::{catalog, place_batch, Cluster, PlacementAlgorithm};
use prvm_sim::ec2_score_book;
use prvm_solver::{solve_min_pms, SolverConfig};
use std::time::{Duration, Instant};

fn main() {
    let book = ec2_score_book().expect("EC2 catalog graph builds");
    let types = catalog::ec2_vm_types();

    for (family, pick) in [
        (
            // Memory-dominant: the aggregate bound is tight, B&B closes at
            // the root — easy even exactly.
            "memory-bound mix (Table I uniform)",
            Box::new(|i: usize| types[(i * 5) % types.len()].clone())
                as Box<dyn Fn(usize) -> prvm_model::VmSpec>,
        ),
        (
            // Anti-collocation-dominant: a 2600 MHz core holds only three
            // 700 MHz vCPUs, so 12 c3.large fill an M3's slots while the
            // aggregate CPU bound still says one PM — B&B must actually
            // search, and the space explodes (the paper's intractability
            // story).
            "cpu-slot-bound (all c3.large)",
            Box::new(|_| catalog::vm_c3_large()) as Box<dyn Fn(usize) -> prvm_model::VmSpec>,
        ),
    ] {
        println!("\n--- {family} ---");
        println!(
            "{:>5} {:>9} {:>9} {:>10} {:>12} {:>10} {:>8}",
            "#VMs", "optimum", "proven", "B&B nodes", "B&B time", "PageRank", "FF"
        );
        for n in [2usize, 4, 6, 8, 10, 12, 13, 14, 16] {
            let vms: Vec<_> = (0..n).map(&pick).collect();
            let pms = vec![catalog::pm_m3(); n];

            let t0 = Instant::now();
            let exact = solve_min_pms(
                &pms,
                &vms,
                &SolverConfig {
                    max_nodes: 2_000_000,
                    time_limit: Duration::from_secs(5),
                },
            )
            .expect("feasible");
            let elapsed = t0.elapsed();

            let heuristic = |mut algo: Box<dyn PlacementAlgorithm>| -> usize {
                let mut cluster = Cluster::from_specs(pms.clone());
                place_batch(algo.as_mut(), &mut cluster, vms.clone()).expect("fits");
                cluster.active_pm_count()
            };
            let pr = heuristic(Box::new(PageRankVmPlacer::new(book.clone())));
            let ff = heuristic(Box::new(FirstFit::new()));

            println!(
                "{:>5} {:>9} {:>9} {:>10} {:>12.1?} {:>10} {:>8}",
                n, exact.pm_count, exact.optimal, exact.nodes_explored, elapsed, pr, ff
            );
        }
    }
    println!(
        "\n(B&B node counts grow combinatorially — the paper's argument for a\n\
         low-complexity heuristic; the heuristics stay within the optimum shown)"
    );
}
