//! Ablation: PageRank vote orientation (DESIGN.md §5).
//!
//! The paper's pseudocode pushes rank **toward fuller** profiles; its
//! worked examples require rank flowing **toward emptier** profiles (see
//! `pagerankvm::pagerank` docs). This binary runs the full simulation with
//! both orientations — and with the BPRU discount switched off — to show
//! which combination actually delivers the paper's experimental claims.

use pagerankvm::{
    GraphLimits, Orientation, PageRankConfig, PageRankEviction, PageRankVmPlacer, ScoreBook,
};
use prvm_bench::CliArgs;
use prvm_model::{catalog, Quantizer};
use prvm_sim::{build_cluster, simulate, SimConfig, Workload, WorkloadConfig};
use prvm_traces::TraceKind;
use std::sync::Arc;

fn book(orientation: Orientation) -> Arc<ScoreBook> {
    Arc::new(
        ScoreBook::build(
            Quantizer::default(),
            &catalog::ec2_pm_types(),
            &catalog::ec2_vm_types(),
            &PageRankConfig {
                orientation,
                ..PageRankConfig::default()
            },
            GraphLimits::default(),
        )
        .expect("EC2 graph builds"),
    )
}

fn main() {
    let args = CliArgs::from_env();
    let sim = SimConfig::default();

    println!(
        "{:<16} {:>6} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "orientation", "#VMs", "PMs used", "PMs initial", "energy kWh", "migr", "SLO %"
    );
    for orientation in [Orientation::TowardEmptier, Orientation::TowardFuller] {
        let book = book(orientation);
        for &n in &args.vms {
            let wl = WorkloadConfig::sized_for(n, TraceKind::PlanetLab);
            let mut pms = Vec::new();
            let mut initial = Vec::new();
            let mut energy = Vec::new();
            let mut migr = Vec::new();
            let mut slo = Vec::new();
            for r in 0..args.repeats {
                let seed = args.seed.wrapping_add(r as u64);
                let workload = Workload::generate(&wl, sim.scans(), seed);
                let mut placer = PageRankVmPlacer::new(book.clone());
                let mut evictor = PageRankEviction::new(book.clone());
                let o = simulate(
                    &sim,
                    build_cluster(&wl),
                    &workload,
                    &mut placer,
                    &mut evictor,
                );
                pms.push(o.pms_used as f64);
                initial.push(o.pms_used_initial as f64);
                energy.push(o.energy_kwh);
                migr.push(o.migrations as f64);
                slo.push(o.slo_violation_pct);
            }
            let med = |v: &[f64]| prvm_traces::stats::Percentiles::of(v).median;
            println!(
                "{:<16} {:>6} {:>10.1} {:>12.1} {:>12.1} {:>10.1} {:>8.2}",
                format!("{orientation:?}"),
                n,
                med(&pms),
                med(&initial),
                med(&energy),
                med(&migr),
                med(&slo)
            );
        }
    }
}
