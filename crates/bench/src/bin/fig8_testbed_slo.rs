//! Fig. 8: SLO violations in the GENI testbed emulation (Google trace).
//!
//! Expected shape (paper): PageRankVM < CompVM < FFDSum < FF.

use prvm_bench::{print_testbed_table, testbed_sweep, CliArgs};

fn main() {
    let args = CliArgs::from_env();
    let sweep = testbed_sweep(&args);
    print_testbed_table("Fig. 8: SLO violations (%)", &sweep.rows, |r| r.slo_pct);
}
