//! The `pagerankvm bench` perf harness: times graph build, PageRank
//! convergence and end-to-end placement across VM counts and worker
//! counts, and writes the machine-readable `BENCH_PRVM.json` report
//! (schema [`PERF_SCHEMA`]).
//!
//! Thread counts change **wall-clock only**: the deterministic pool
//! contract (DESIGN.md §10) guarantees bit-identical results at every
//! worker count, and the harness re-checks that cheaply by comparing
//! placement outcomes across the thread list. Reported speedups are
//! relative to the first (smallest) thread count in `--threads`, which
//! defaults to 1.

use pagerankvm::{
    pagerank_with_pool, GraphLimits, PageRankConfig, PageRankVmPlacer, Pool, ProfileGraph,
    ProfileSpace, ProfileVm, ScoreBook,
};
use prvm_model::{catalog, place_batch, Cluster, Quantizer, VmSpec};
use prvm_obs::Span;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Schema tag stamped into every report; bump when the shape changes.
pub const PERF_SCHEMA: &str = "prvm-bench-perf/v1";

/// The stage names a valid report may contain, in pipeline order.
pub const STAGES: [&str; 4] = ["graph_build", "pagerank", "placement", "end_to_end"];

/// Command-line options of `pagerankvm bench` / the `perf` binary.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct PerfArgs {
    /// VM counts for the placement stages (paper scale: 1000–3000).
    pub vms: Vec<usize>,
    /// Worker counts to sweep; the first entry is the speedup baseline.
    pub threads: Vec<usize>,
    /// Timed repeats per configuration (median/p95 are over these).
    pub repeats: usize,
    /// Base seed recorded in the report (workloads are derived from it).
    pub seed: u64,
    /// Output path for the JSON report.
    pub out: PathBuf,
    /// When set, skip measuring: load this report, validate it, exit.
    pub check: Option<PathBuf>,
    /// When set, compare a fresh run against this baseline report and
    /// fail (non-zero exit) if any overlapping cell's median regresses
    /// more than [`PerfArgs::gate_threshold`]. Gate runs never write
    /// `--out`, so the committed baseline cannot be clobbered.
    pub gate: Option<PathBuf>,
    /// Allowed relative regression for `--gate` (0.15 = 15%).
    pub gate_threshold: f64,
    /// When set, record a per-worker span timeline for the whole sweep
    /// and write it to this path as Chrome trace-event JSON.
    pub trace: Option<PathBuf>,
    /// When set, skip measuring: parse this trace-event JSON file,
    /// schema-validate it, exit. (The CI trace-smoke job's checker.)
    pub check_trace: Option<PathBuf>,
    /// Profile-space resolution (not CLI-exposed; tests coarsen it to
    /// keep debug-build runs quick).
    pub quantizer: Quantizer,
}

impl Default for PerfArgs {
    fn default() -> Self {
        Self {
            vms: vec![1000, 2000, 3000],
            threads: vec![1, 2, 4],
            repeats: 3,
            seed: 42,
            out: PathBuf::from("BENCH_PRVM.json"),
            check: None,
            gate: None,
            gate_threshold: 0.15,
            trace: None,
            check_trace: None,
            quantizer: Quantizer::default(),
        }
    }
}

impl PerfArgs {
    /// Parse `--vms a,b,c`, `--threads a,b,c`, `--repeats N`, `--seed N`,
    /// `--out FILE`, `--check FILE`, `--gate FILE`,
    /// `--gate-threshold X`, `--trace FILE` and `--check-trace FILE`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags, missing values,
    /// unparseable numbers, or empty/zero lists.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let usage = "usage: bench [--vms a,b,c] [--threads a,b,c] [--repeats N] [--seed N] \
                     [--out FILE] [--check FILE] [--gate FILE] [--gate-threshold X] \
                     [--trace FILE] [--check-trace FILE]";
        let mut out = Self::default();
        let mut it = args.into_iter();
        let int_list = |text: String| -> Result<Vec<usize>, String> {
            let list: Vec<usize> = text
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("{s:?} is not a count; {usage}"))
                })
                .collect::<Result<_, _>>()?;
            if list.is_empty() || list.contains(&0) {
                return Err(format!("counts must be positive; {usage}"));
            }
            Ok(list)
        };
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value; {usage}"))
            };
            match flag.as_str() {
                "--vms" => out.vms = int_list(value("--vms")?)?,
                "--threads" => out.threads = int_list(value("--threads")?)?,
                "--repeats" => {
                    out.repeats = value("--repeats")?
                        .parse()
                        .map_err(|_| format!("--repeats wants an integer; {usage}"))?;
                    if out.repeats == 0 {
                        return Err(format!("--repeats must be positive; {usage}"));
                    }
                }
                "--seed" => {
                    out.seed = value("--seed")?
                        .parse()
                        .map_err(|_| format!("--seed wants an integer; {usage}"))?;
                }
                "--out" => out.out = PathBuf::from(value("--out")?),
                "--check" => out.check = Some(PathBuf::from(value("--check")?)),
                "--gate" => out.gate = Some(PathBuf::from(value("--gate")?)),
                "--gate-threshold" => {
                    out.gate_threshold = value("--gate-threshold")?
                        .parse()
                        .map_err(|_| format!("--gate-threshold wants a number; {usage}"))?;
                    if !(out.gate_threshold.is_finite() && out.gate_threshold > 0.0) {
                        return Err(format!("--gate-threshold must be positive; {usage}"));
                    }
                }
                "--trace" => out.trace = Some(PathBuf::from(value("--trace")?)),
                "--check-trace" => out.check_trace = Some(PathBuf::from(value("--check-trace")?)),
                other => return Err(format!("unknown flag {other}; {usage}")),
            }
        }
        Ok(out)
    }

    /// Parse the process arguments (skipping argv\[0\]), exiting with the
    /// usage message on malformed flags.
    pub fn from_env() -> Self {
        Self::try_parse(std::env::args().skip(1)).unwrap_or_else(|message| {
            eprintln!("{message}");
            std::process::exit(2);
        })
    }
}

/// One measured (stage, vms, threads) cell of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageRow {
    /// Stage name, one of [`STAGES`].
    pub stage: String,
    /// VM count, or 0 for stages independent of it (graph/PageRank).
    pub vms: usize,
    /// Worker count the stage ran with.
    pub threads: usize,
    /// Nearest-rank median wall-clock over the repeats, milliseconds.
    pub median_ms: f64,
    /// Nearest-rank 95th-percentile wall-clock, milliseconds.
    pub p95_ms: f64,
    /// `median(baseline threads) / median(this row)`; 1.0 on the
    /// baseline row itself. The baseline is the first `--threads` entry.
    pub speedup_vs_1t: f64,
    /// Profile-graph node count the stage operated on (0 if n/a).
    pub graph_nodes: usize,
    /// Profile-graph edge count the stage operated on (0 if n/a).
    pub graph_edges: usize,
}

/// The full `BENCH_PRVM.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Always [`PERF_SCHEMA`] for reports this crate writes.
    pub schema: String,
    /// Base seed the sweep ran with.
    pub seed: u64,
    /// Repeats per cell.
    pub repeats: usize,
    /// `std::thread::available_parallelism` on the measuring host —
    /// speedups above this are not expected.
    pub host_threads: usize,
    /// The `--threads` sweep list; the first entry is the baseline.
    pub thread_counts: Vec<usize>,
    /// One row per measured cell.
    pub rows: Vec<StageRow>,
}

impl PerfReport {
    /// Structural validation used by `--check` and the CI smoke job.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a message.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != PERF_SCHEMA {
            return Err(format!(
                "schema {:?} != expected {PERF_SCHEMA:?}",
                self.schema
            ));
        }
        if self.repeats == 0 {
            return Err("repeats must be positive".into());
        }
        if self.host_threads == 0 {
            return Err("host_threads must be positive".into());
        }
        if self.thread_counts.is_empty() || self.thread_counts.contains(&0) {
            return Err("thread_counts must be non-empty and positive".into());
        }
        if self.rows.is_empty() {
            return Err("report has no rows".into());
        }
        for (i, row) in self.rows.iter().enumerate() {
            let at = |msg: &str| format!("row {i} ({}/{}t): {msg}", row.stage, row.threads);
            if !STAGES.contains(&row.stage.as_str()) {
                return Err(at(&format!("unknown stage {:?}", row.stage)));
            }
            if !self.thread_counts.contains(&row.threads) {
                return Err(at("threads not in thread_counts"));
            }
            if !(row.median_ms.is_finite() && row.median_ms >= 0.0) {
                return Err(at("median_ms must be finite and non-negative"));
            }
            if !(row.p95_ms.is_finite() && row.p95_ms >= row.median_ms) {
                return Err(at("p95_ms must be finite and >= median_ms"));
            }
            if !(row.speedup_vs_1t.is_finite() && row.speedup_vs_1t > 0.0) {
                return Err(at("speedup_vs_1t must be finite and positive"));
            }
            let graph_stage = row.stage == "graph_build" || row.stage == "pagerank";
            if graph_stage && row.graph_nodes == 0 {
                return Err(at("graph stages must record node counts"));
            }
            if graph_stage != (row.vms == 0) {
                return Err(at("vms must be 0 exactly for graph/PageRank stages"));
            }
        }
        for stage in STAGES {
            if !self.rows.iter().any(|r| r.stage == stage) {
                return Err(format!("stage {stage:?} missing from report"));
            }
        }
        Ok(())
    }

    /// Serialize to pretty JSON and write to `path`.
    ///
    /// # Errors
    ///
    /// Reports serialization or filesystem failures as a message.
    pub fn write(&self, path: &std::path::Path) -> Result<(), String> {
        let json =
            serde_json::to_vec_pretty(self).map_err(|e| format!("cannot serialize report: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Load a report from `path` and [`Self::validate`] it.
    ///
    /// # Errors
    ///
    /// Reports filesystem, JSON or validation failures as a message.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let report: Self = serde_json::from_slice(&bytes)
            .map_err(|e| format!("{} is not a perf report: {e}", path.display()))?;
        report.validate()?;
        Ok(report)
    }
}

/// Medians below this floor are clamped before computing gate ratios:
/// at sub-tick durations the ratio is timer noise, not a regression.
pub const GATE_FLOOR_MS: f64 = 0.05;

/// One compared `(stage, vms, threads)` cell of a `--gate` run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GateRow {
    /// Stage name, one of [`STAGES`].
    pub stage: String,
    /// VM count of the cell (0 for graph/PageRank stages).
    pub vms: usize,
    /// Worker count of the cell.
    pub threads: usize,
    /// Baseline median, milliseconds.
    pub baseline_ms: f64,
    /// Fresh-run median, milliseconds.
    pub fresh_ms: f64,
    /// `fresh / baseline` after clamping both to [`GATE_FLOOR_MS`].
    pub ratio: f64,
    /// True when `ratio` exceeds `1 + threshold`.
    pub regressed: bool,
}

/// Compare a fresh report against a baseline, cell by cell. Cells are
/// matched on `(stage, vms, threads)`; cells present in only one of
/// the two reports are skipped (the grids may legitimately differ —
/// CI gates on a small grid against a small-grid baseline).
///
/// # Errors
///
/// Fails when `threshold` is not positive or when the two reports
/// share no cells at all (gating against an unrelated grid would
/// otherwise silently pass).
pub fn gate_compare(
    baseline: &PerfReport,
    fresh: &PerfReport,
    threshold: f64,
) -> Result<Vec<GateRow>, String> {
    if !(threshold.is_finite() && threshold > 0.0) {
        return Err(format!("gate threshold must be positive, got {threshold}"));
    }
    let mut rows = Vec::new();
    for row in &fresh.rows {
        let Some(base) = baseline
            .rows
            .iter()
            .find(|b| b.stage == row.stage && b.vms == row.vms && b.threads == row.threads)
        else {
            continue;
        };
        let ratio = row.median_ms.max(GATE_FLOOR_MS) / base.median_ms.max(GATE_FLOOR_MS);
        rows.push(GateRow {
            stage: row.stage.clone(),
            vms: row.vms,
            threads: row.threads,
            baseline_ms: base.median_ms,
            fresh_ms: row.median_ms,
            ratio,
            regressed: ratio > 1.0 + threshold,
        });
    }
    if rows.is_empty() {
        return Err(
            "no overlapping (stage, vms, threads) cells between baseline and fresh run".into(),
        );
    }
    Ok(rows)
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn summarize(mut samples_ms: Vec<f64>) -> (f64, f64) {
    samples_ms.sort_by(f64::total_cmp);
    (percentile(&samples_ms, 0.5), percentile(&samples_ms, 0.95))
}

/// The m3 profile space + quantized VM demands the graph stages measure
/// (the larger of the two EC2 PM types in Table I).
fn m3_inputs(quantizer: &Quantizer) -> (ProfileSpace, Vec<ProfileVm>) {
    let pm = catalog::pm_m3();
    let space = ProfileSpace::from_quantized_pm(&quantizer.quantize_pm(&pm));
    let vms = catalog::ec2_vm_types()
        .iter()
        .filter_map(|v| space.vm_demand(&quantizer.quantize_vm(v, &pm)))
        .collect();
    (space, vms)
}

fn build_book(quantizer: Quantizer, config: &PageRankConfig) -> Result<ScoreBook, String> {
    ScoreBook::build(
        quantizer,
        &catalog::ec2_pm_types(),
        &catalog::ec2_vm_types(),
        config,
        GraphLimits::default(),
    )
    .map_err(|e| format!("score book build failed: {e}"))
}

/// Deterministic placement batch: the EC2 catalog VM types cycled
/// round-robin, rotated by `seed` so different seeds start the cycle at
/// different types. No RNG: the batch depends only on `(n, seed)`.
fn request_batch(n: usize, seed: u64) -> Vec<VmSpec> {
    let types = catalog::ec2_vm_types();
    let offset = (seed % types.len() as u64) as usize;
    (0..n)
        .map(|i| types[(i + offset) % types.len()].clone())
        .collect()
}

fn measure<R>(repeats: usize, mut run: impl FnMut() -> (R, f64)) -> (R, f64, f64) {
    let mut samples = Vec::with_capacity(repeats);
    let (mut last, first_ms) = run();
    samples.push(first_ms);
    for _ in 1..repeats {
        let (value, ms) = run();
        samples.push(ms);
        last = value;
    }
    let (median, p95) = summarize(samples);
    (last, median, p95)
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Run the sweep described by `args` and assemble the report (without
/// writing it). Progress lines go to stderr.
///
/// # Errors
///
/// Fails if the EC2 catalog graphs cannot be built or a placement run
/// rejects a VM — both indicate a bug, not a tuning problem.
pub fn run(args: &PerfArgs) -> Result<PerfReport, String> {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let baseline_threads = *args.threads.first().ok_or("--threads must be non-empty")?;
    let mut rows: Vec<StageRow> = Vec::new();
    let mut push = |stage: &str,
                    vms: usize,
                    threads: usize,
                    median_ms: f64,
                    p95_ms: f64,
                    baseline_ms: f64,
                    nodes: usize,
                    edges: usize| {
        let speedup = if median_ms > 0.0 {
            baseline_ms / median_ms
        } else {
            1.0
        };
        eprintln!(
            "[bench] {stage:<11} vms={vms:<5} threads={threads} \
             median={median_ms:9.2}ms p95={p95_ms:9.2}ms speedup={speedup:5.2}x"
        );
        rows.push(StageRow {
            stage: stage.to_string(),
            vms,
            threads,
            median_ms,
            p95_ms,
            speedup_vs_1t: speedup,
            graph_nodes: nodes,
            graph_edges: edges,
        });
    };

    let (space, vm_types) = m3_inputs(&args.quantizer);

    // Stage 1: profile-graph construction (m3 space, EC2 VM set).
    let mut baseline_ms = 0.0;
    let mut reference_graph: Option<ProfileGraph> = None;
    for &threads in &args.threads {
        let pool = Pool::new(threads);
        let (graph, median, p95) = measure(args.repeats, || {
            let (built, t) = Span::timed("bench.graph_build", || {
                ProfileGraph::build_with_pool(
                    space.clone(),
                    vm_types.clone(),
                    GraphLimits::default(),
                    pool,
                )
            });
            (built, ms(t))
        });
        let graph = graph.map_err(|e| format!("graph build failed: {e}"))?;
        if threads == baseline_threads {
            baseline_ms = median;
        }
        push(
            "graph_build",
            0,
            threads,
            median,
            p95,
            baseline_ms,
            graph.node_count(),
            graph.edge_count(),
        );
        reference_graph.get_or_insert(graph);
    }
    let graph = reference_graph.ok_or("no thread counts to sweep")?;

    // Stage 2: PageRank convergence on that graph.
    let config = PageRankConfig::default();
    baseline_ms = 0.0;
    for &threads in &args.threads {
        let pool = Pool::new(threads);
        let (result, median, p95) = measure(args.repeats, || {
            let (pr, t) = Span::timed("bench.pagerank", || {
                pagerank_with_pool(&graph, &config, pool)
            });
            (pr, ms(t))
        });
        if !result.converged {
            return Err(format!(
                "PageRank did not converge in {} iterations",
                result.iterations
            ));
        }
        if threads == baseline_threads {
            baseline_ms = median;
        }
        push(
            "pagerank",
            0,
            threads,
            median,
            p95,
            baseline_ms,
            graph.node_count(),
            graph.edge_count(),
        );
    }

    // Shared score book for the placement-only stage (built once; the
    // determinism contract makes the building pool irrelevant to results).
    eprintln!("[bench] building shared score book…");
    let book = std::sync::Arc::new(build_book(args.quantizer, &config)?);
    let book_nodes: usize = book.tables().map(|(_, t)| t.graph().node_count()).sum();
    let book_edges: usize = book.tables().map(|(_, t)| t.graph().edge_count()).sum();

    for &n in &args.vms {
        let requests = request_batch(n, args.seed);

        // Stage 3: Algorithm 2 over a prebuilt book. Placement itself is
        // sequential, so this doubles as a determinism check: the PM count
        // must match across every thread count.
        baseline_ms = 0.0;
        let mut reference_pms: Option<usize> = None;
        for &threads in &args.threads {
            prvm_par::set_global_threads(threads);
            let (pms_used, median, p95) = measure(args.repeats, || {
                let mut cluster = Cluster::homogeneous(catalog::pm_m3(), n);
                let mut placer = PageRankVmPlacer::new(book.clone());
                let (result, t) = Span::timed("bench.placement", || {
                    place_batch(&mut placer, &mut cluster, requests.clone())
                });
                (result.map(|_| cluster.active_pm_count()), ms(t))
            });
            let pms_used = pms_used.map_err(|e| format!("placement of {n} VMs failed: {e:?}"))?;
            match reference_pms {
                None => reference_pms = Some(pms_used),
                Some(expected) if expected != pms_used => {
                    return Err(format!(
                        "determinism violation: {n} VMs used {pms_used} PMs at {threads} \
                         threads but {expected} at {baseline_threads}"
                    ));
                }
                Some(_) => {}
            }
            if threads == baseline_threads {
                baseline_ms = median;
            }
            push(
                "placement",
                n,
                threads,
                median,
                p95,
                baseline_ms,
                book_nodes,
                book_edges,
            );
        }

        // Stage 4: cold start — score book (graph + PageRank + BPRU, the
        // parallel part) plus the full placement batch.
        baseline_ms = 0.0;
        for &threads in &args.threads {
            prvm_par::set_global_threads(threads);
            let (outcome, median, p95) = measure(args.repeats, || {
                let (result, t) = Span::timed("bench.end_to_end", || -> Result<usize, String> {
                    let book = std::sync::Arc::new(build_book(args.quantizer, &config)?);
                    let mut cluster = Cluster::homogeneous(catalog::pm_m3(), n);
                    let mut placer = PageRankVmPlacer::new(book);
                    place_batch(&mut placer, &mut cluster, requests.clone())
                        .map_err(|e| format!("placement rejected a VM: {e:?}"))?;
                    Ok(cluster.active_pm_count())
                });
                (result, ms(t))
            });
            outcome.map_err(|e| format!("end-to-end run of {n} VMs failed: {e}"))?;
            if threads == baseline_threads {
                baseline_ms = median;
            }
            push(
                "end_to_end",
                n,
                threads,
                median,
                p95,
                baseline_ms,
                book_nodes,
                book_edges,
            );
        }
    }
    prvm_par::set_global_threads(0);

    Ok(PerfReport {
        schema: PERF_SCHEMA.to_string(),
        seed: args.seed,
        repeats: args.repeats,
        host_threads,
        thread_counts: args.threads.clone(),
        rows,
    })
}

/// [`run`], optionally bracketed by a [`prvm_obs::TraceSink`] when
/// `--trace` asked for a Chrome trace of the sweep.
fn run_traced(args: &PerfArgs) -> Result<PerfReport, String> {
    let Some(trace_path) = &args.trace else {
        return run(args);
    };
    let sink = prvm_obs::TraceSink::start(trace_path);
    let report = run(args);
    let stats = sink.finish()?;
    eprintln!(
        "[bench] trace: {} interval(s) across {} worker track(s) -> {}",
        stats.intervals,
        stats.worker_tracks,
        trace_path.display()
    );
    report
}

/// Full CLI entry: `--check` / `--check-trace` validation modes, the
/// `--gate` regression comparison, or measure + validate + write.
///
/// # Errors
///
/// Propagates measurement, validation, gate-regression and I/O
/// failures as messages (the CLI turns them into a non-zero exit).
pub fn main_with(args: &PerfArgs) -> Result<(), String> {
    if let Some(path) = &args.check {
        let report = PerfReport::load(path)?;
        println!(
            "{}: valid {} report ({} rows, seed {}, {} repeats)",
            path.display(),
            report.schema,
            report.rows.len(),
            report.seed,
            report.repeats
        );
        return Ok(());
    }
    if let Some(path) = &args.check_trace {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let value: serde::Value = serde_json::from_str(&text)
            .map_err(|e| format!("{} is not JSON: {e:?}", path.display()))?;
        let stats = prvm_obs::validate_chrome_trace(&value)
            .map_err(|e| format!("{}: invalid trace: {e}", path.display()))?;
        println!(
            "{}: valid trace ({} interval(s), {} worker track(s))",
            path.display(),
            stats.intervals,
            stats.worker_tracks
        );
        return Ok(());
    }
    if let Some(baseline_path) = &args.gate {
        let baseline = PerfReport::load(baseline_path)?;
        let fresh = run_traced(args)?;
        fresh.validate()?;
        let rows = gate_compare(&baseline, &fresh, args.gate_threshold)?;
        let mut regressed = 0usize;
        for row in &rows {
            let verdict = if row.regressed { "REGRESSED" } else { "ok" };
            println!(
                "[gate] {:<11} vms={:<5} threads={} baseline={:9.2}ms fresh={:9.2}ms \
                 ratio={:5.2} {verdict}",
                row.stage, row.vms, row.threads, row.baseline_ms, row.fresh_ms, row.ratio
            );
            regressed += usize::from(row.regressed);
        }
        if regressed > 0 {
            return Err(format!(
                "perf gate failed: {regressed}/{} cell(s) regressed more than {:.0}% vs {}",
                rows.len(),
                args.gate_threshold * 100.0,
                baseline_path.display()
            ));
        }
        println!(
            "perf gate passed: {} cell(s) within {:.0}% of {}",
            rows.len(),
            args.gate_threshold * 100.0,
            baseline_path.display()
        );
        // Gate runs never write --out: the default out path is the
        // committed baseline itself.
        return Ok(());
    }
    let report = run_traced(args)?;
    report.validate()?;
    report.write(&args.out)?;
    println!(
        "wrote {} ({} rows; host has {} hardware thread(s))",
        args.out.display(),
        report.rows.len(),
        report.host_threads
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PerfReport {
        let mk = |stage: &str, vms: usize, nodes: usize| StageRow {
            stage: stage.to_string(),
            vms,
            threads: 1,
            median_ms: 2.0,
            p95_ms: 3.0,
            speedup_vs_1t: 1.0,
            graph_nodes: nodes,
            graph_edges: nodes * 2,
        };
        PerfReport {
            schema: PERF_SCHEMA.to_string(),
            seed: 42,
            repeats: 1,
            host_threads: 1,
            thread_counts: vec![1],
            rows: vec![
                mk("graph_build", 0, 10),
                mk("pagerank", 0, 10),
                mk("placement", 5, 10),
                mk("end_to_end", 5, 10),
            ],
        }
    }

    #[test]
    fn args_defaults_and_flags() {
        let d = PerfArgs::try_parse(std::iter::empty()).unwrap();
        assert_eq!(d, PerfArgs::default());
        let a = PerfArgs::try_parse(
            [
                "--vms",
                "200",
                "--threads",
                "1,2",
                "--repeats",
                "2",
                "--seed",
                "7",
                "--out",
                "x.json",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(a.vms, vec![200]);
        assert_eq!(a.threads, vec![1, 2]);
        assert_eq!(a.repeats, 2);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out, PathBuf::from("x.json"));
    }

    #[test]
    fn args_reject_malformed() {
        assert!(PerfArgs::try_parse(["--bogus".to_string()]).is_err());
        assert!(PerfArgs::try_parse(["--vms".to_string()]).is_err());
        assert!(PerfArgs::try_parse(["--vms".to_string(), "0".to_string()]).is_err());
        assert!(PerfArgs::try_parse(["--threads".to_string(), "1,x".to_string()]).is_err());
        assert!(PerfArgs::try_parse(["--repeats".to_string(), "0".to_string()]).is_err());
        assert!(PerfArgs::try_parse(["--gate".to_string()]).is_err());
        assert!(PerfArgs::try_parse(["--gate-threshold".to_string(), "zero".to_string()]).is_err());
        assert!(PerfArgs::try_parse(["--gate-threshold".to_string(), "0".to_string()]).is_err());
        assert!(PerfArgs::try_parse(["--gate-threshold".to_string(), "-1".to_string()]).is_err());
        assert!(PerfArgs::try_parse(["--trace".to_string()]).is_err());
    }

    #[test]
    fn args_parse_gate_and_trace_flags() {
        let a = PerfArgs::try_parse(
            [
                "--gate",
                "BENCH_PRVM.json",
                "--gate-threshold",
                "0.25",
                "--trace",
                "trace.json",
                "--check-trace",
                "old.json",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(a.gate, Some(PathBuf::from("BENCH_PRVM.json")));
        assert!((a.gate_threshold - 0.25).abs() < 1e-12);
        assert_eq!(a.trace, Some(PathBuf::from("trace.json")));
        assert_eq!(a.check_trace, Some(PathBuf::from("old.json")));
    }

    /// The acceptance scenario, with synthetic baselines so no wall
    /// clock is compared across runs: an identical baseline passes, a
    /// baseline scaled 1000x *faster* makes every fresh cell a >15%
    /// regression, and a 1000x *slower* baseline passes trivially.
    #[test]
    fn gate_flags_synthetic_regressions() {
        let fresh = tiny_report();
        let identical = fresh.clone();
        let rows = gate_compare(&identical, &fresh, 0.15).unwrap();
        assert_eq!(rows.len(), fresh.rows.len());
        assert!(rows.iter().all(|r| !r.regressed), "identical must pass");
        assert!(rows.iter().all(|r| (r.ratio - 1.0).abs() < 1e-9));

        let mut fast_baseline = fresh.clone();
        for row in &mut fast_baseline.rows {
            row.median_ms /= 1000.0;
            row.p95_ms /= 1000.0;
        }
        let rows = gate_compare(&fast_baseline, &fresh, 0.15).unwrap();
        assert!(
            rows.iter().all(|r| r.regressed),
            "a 1000x slower fresh run must trip every cell"
        );

        let mut slow_baseline = fresh.clone();
        for row in &mut slow_baseline.rows {
            row.median_ms *= 1000.0;
            row.p95_ms *= 1000.0;
        }
        let rows = gate_compare(&slow_baseline, &fresh, 0.15).unwrap();
        assert!(rows.iter().all(|r| !r.regressed));
    }

    #[test]
    fn gate_needs_overlapping_cells_and_positive_threshold() {
        let fresh = tiny_report();
        let mut disjoint = fresh.clone();
        for row in &mut disjoint.rows {
            row.threads = 9;
        }
        assert!(gate_compare(&disjoint, &fresh, 0.15).is_err());
        assert!(gate_compare(&fresh, &fresh, 0.0).is_err());
        assert!(gate_compare(&fresh, &fresh, f64::NAN).is_err());
    }

    #[test]
    fn gate_floor_absorbs_sub_tick_noise() {
        // 0.001ms -> 0.004ms is 4x, but both are below the floor: not
        // a regression, just timer granularity.
        let mut fresh = tiny_report();
        let mut baseline = fresh.clone();
        for row in &mut baseline.rows {
            row.median_ms = 0.001;
        }
        for row in &mut fresh.rows {
            row.median_ms = 0.004;
        }
        let rows = gate_compare(&baseline, &fresh, 0.15).unwrap();
        assert!(rows.iter().all(|r| !r.regressed));
    }

    /// End-to-end `--gate` through `main_with`: a synthetic slow
    /// baseline written to disk makes the gate run exit non-zero, and
    /// a generous baseline passes — without ever comparing two real
    /// timings against each other.
    #[test]
    fn main_with_gate_exits_nonzero_on_synthetic_slow_baseline() {
        let dir = std::env::temp_dir().join("prvm-bench-gate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let coarse = Quantizer {
            core_slots: 2,
            mem_levels: 4,
            disk_levels: 2,
        };
        let smoke = PerfArgs {
            vms: vec![20],
            threads: vec![1],
            repeats: 1,
            quantizer: coarse,
            ..PerfArgs::default()
        };
        // One real smoke run to learn the grid's actual medians.
        let measured = run(&smoke).unwrap();

        // Baseline 1000x faster than reality: gating must fail.
        let mut fast = measured.clone();
        for row in &mut fast.rows {
            row.median_ms = (row.median_ms / 1000.0).max(1e-6);
            row.p95_ms = row.p95_ms.max(row.median_ms);
        }
        let fast_path = dir.join("baseline-fast.json");
        fast.write(&fast_path).unwrap();
        let err = main_with(&PerfArgs {
            gate: Some(fast_path),
            out: dir.join("should-not-exist.json"),
            ..smoke.clone()
        })
        .expect_err("gate must fail against a 1000x faster baseline");
        assert!(err.contains("perf gate failed"), "got: {err}");
        assert!(
            !dir.join("should-not-exist.json").exists(),
            "gate runs must not write --out"
        );

        // Baseline 1000x slower: gating must pass.
        let mut slow = measured;
        for row in &mut slow.rows {
            row.median_ms *= 1000.0;
            row.p95_ms *= 1000.0;
        }
        let slow_path = dir.join("baseline-slow.json");
        slow.write(&slow_path).unwrap();
        main_with(&PerfArgs {
            gate: Some(slow_path),
            ..smoke
        })
        .expect("gate must pass against a 1000x slower baseline");
    }

    #[test]
    fn validate_accepts_well_formed_and_rejects_corruption() {
        let good = tiny_report();
        good.validate().unwrap();
        let mut bad = good.clone();
        bad.schema = "other/v9".into();
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.rows[0].p95_ms = 1.0; // below median
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.rows[0].speedup_vs_1t = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.rows[2].vms = 0; // placement must carry a VM count
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.rows.remove(3); // a stage went missing
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.rows[0].threads = 8; // not in thread_counts
        assert!(bad.validate().is_err());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = tiny_report();
        let json = serde_json::to_vec_pretty(&report).unwrap();
        let back: PerfReport = serde_json::from_slice(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.rows.len(), report.rows.len());
        assert_eq!(back.thread_counts, report.thread_counts);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let (median, p95) = summarize(vec![3.0, 1.0, 2.0]);
        assert_eq!(median, 2.0);
        assert_eq!(p95, 3.0);
        let (median, p95) = summarize(vec![5.0]);
        assert_eq!(median, 5.0);
        assert_eq!(p95, 5.0);
    }

    #[test]
    fn request_batch_is_deterministic_and_seed_rotated() {
        let a = request_batch(10, 42);
        let b = request_batch(10, 42);
        assert_eq!(a, b);
        let c = request_batch(10, 43);
        assert_ne!(a, c, "different seeds rotate the type cycle");
        assert_eq!(a.len(), 10);
    }

    /// Smoke-scale end-to-end run: tiny VM count, 1 thread, 1 repeat.
    /// Keeps the full measurement path (including the determinism check
    /// between thread counts) exercised by `cargo test`.
    #[test]
    fn run_produces_valid_report_at_smoke_scale() {
        let dir = std::env::temp_dir().join("prvm-bench-perf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_PRVM.json");
        let args = PerfArgs {
            vms: vec![20],
            threads: vec![1, 2],
            repeats: 1,
            out: out.clone(),
            quantizer: Quantizer {
                core_slots: 2,
                mem_levels: 4,
                disk_levels: 2,
            },
            ..PerfArgs::default()
        };
        main_with(&args).unwrap();
        let report = PerfReport::load(&out).unwrap();
        assert_eq!(report.thread_counts, vec![1, 2]);
        // 2 graph rows + 2 pagerank rows + 2 placement + 2 end-to-end.
        assert_eq!(report.rows.len(), 8);
        main_with(&PerfArgs {
            check: Some(out),
            ..PerfArgs::default()
        })
        .unwrap();
    }
}
