//! The `pagerankvm loadgen` harness: a deterministic closed-loop load
//! generator for the `prvm-serve` daemon. Each connection thread runs a
//! seeded place/evict/migrate/stats mix through the framed-TCP
//! [`Client`], honours the daemon's typed shed/backoff guidance, and
//! records client-observed request latencies. The merged report
//! (throughput + nearest-rank latency percentiles, schema
//! [`LOADGEN_SCHEMA`]) lands under the `serve_loadgen` key of
//! `BENCH_PRVM.json` — alongside, not replacing, the perf sweep.

use prvm_serve::{Client, ClientError};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Schema tag stamped into every loadgen report.
pub const LOADGEN_SCHEMA: &str = "prvm-serve-loadgen/v1";

/// The key the report occupies inside `BENCH_PRVM.json`.
pub const LOADGEN_KEY: &str = "serve_loadgen";

/// Give up on a request after this many consecutive shed replies.
pub const MAX_SHED_RETRIES: u32 = 8;

/// Command-line options of the `loadgen` binary.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct LoadGenArgs {
    /// Daemon address to drive.
    pub addr: String,
    /// Total requests across all connections.
    pub requests: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Base seed; each connection derives its own stream from it.
    pub seed: u64,
    /// Per-request deadline forwarded to the daemon (0 = server default).
    pub deadline_ms: u64,
    /// When set, merge the report into this JSON file under
    /// [`LOADGEN_KEY`] (typically `BENCH_PRVM.json`).
    pub out: Option<PathBuf>,
}

impl Default for LoadGenArgs {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7791".to_string(),
            requests: 500,
            connections: 4,
            seed: 42,
            deadline_ms: 1000,
            out: None,
        }
    }
}

impl LoadGenArgs {
    /// Parse `--addr HOST:PORT`, `--requests N`, `--connections N`,
    /// `--seed N`, `--deadline-ms N`, `--out FILE`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags, missing values or
    /// non-positive counts.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let usage = "usage: loadgen [--addr HOST:PORT] [--requests N] [--connections N] \
                     [--seed N] [--deadline-ms N] [--out FILE]";
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value; {usage}"))
            };
            let count = |name: &str, text: String| -> Result<usize, String> {
                let n: usize = text
                    .parse()
                    .map_err(|_| format!("{name} wants an integer; {usage}"))?;
                if n == 0 {
                    return Err(format!("{name} must be positive; {usage}"));
                }
                Ok(n)
            };
            match flag.as_str() {
                "--addr" => out.addr = value("--addr")?,
                "--requests" => out.requests = count("--requests", value("--requests")?)?,
                "--connections" => {
                    out.connections = count("--connections", value("--connections")?)?;
                }
                "--seed" => {
                    out.seed = value("--seed")?
                        .parse()
                        .map_err(|_| format!("--seed wants an integer; {usage}"))?;
                }
                "--deadline-ms" => {
                    out.deadline_ms = value("--deadline-ms")?
                        .parse()
                        .map_err(|_| format!("--deadline-ms wants an integer; {usage}"))?;
                }
                "--out" => out.out = Some(PathBuf::from(value("--out")?)),
                other => return Err(format!("unknown flag {other}; {usage}")),
            }
        }
        Ok(out)
    }

    /// Parse the process arguments (skipping argv\[0\]), exiting with
    /// the usage message on malformed flags.
    pub fn from_env() -> Self {
        Self::try_parse(std::env::args().skip(1)).unwrap_or_else(|message| {
            eprintln!("{message}");
            std::process::exit(2);
        })
    }
}

/// Nearest-rank latency percentiles over the completed requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Worst observed, milliseconds.
    pub max_ms: f64,
}

/// The full loadgen report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadGenReport {
    /// Always [`LOADGEN_SCHEMA`] for reports this module writes.
    pub schema: String,
    /// Requests attempted (the `--requests` budget).
    pub requests: usize,
    /// Concurrent connections used.
    pub connections: usize,
    /// Base seed of the workload.
    pub seed: u64,
    /// Wall-clock for the whole run, milliseconds.
    pub elapsed_ms: f64,
    /// Completed requests per second over the whole run.
    pub throughput_rps: f64,
    /// Successful placements.
    pub placed: u64,
    /// Successful evictions.
    pub evicted: u64,
    /// Successful migrations.
    pub migrated: u64,
    /// Successful stats reads.
    pub stats_reads: u64,
    /// Shed replies observed (each is a typed retry-later, not a drop).
    pub shed: u64,
    /// Requests abandoned after [`MAX_SHED_RETRIES`] consecutive sheds.
    pub shed_giveups: u64,
    /// Typed deadline-timeout replies.
    pub timeouts: u64,
    /// Typed server rejections (no capacity, unknown VM, …).
    pub rejected: u64,
    /// Latency samples collected (one per completed round-trip).
    pub samples: usize,
    /// Client-observed round-trip latency percentiles.
    pub latency: LatencySummary,
}

impl LoadGenReport {
    /// Structural validation used by tests and the CI smoke job.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a message.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != LOADGEN_SCHEMA {
            return Err(format!(
                "schema {:?} != expected {LOADGEN_SCHEMA:?}",
                self.schema
            ));
        }
        if self.requests == 0 || self.connections == 0 {
            return Err("requests and connections must be positive".into());
        }
        if !(self.elapsed_ms.is_finite() && self.elapsed_ms >= 0.0) {
            return Err("elapsed_ms must be finite and non-negative".into());
        }
        if !(self.throughput_rps.is_finite() && self.throughput_rps >= 0.0) {
            return Err("throughput_rps must be finite and non-negative".into());
        }
        let completed = self.placed + self.evicted + self.migrated + self.stats_reads;
        if completed == 0 {
            return Err("no requests completed — the daemon served nothing".into());
        }
        let l = &self.latency;
        for (name, v) in [
            ("p50_ms", l.p50_ms),
            ("p90_ms", l.p90_ms),
            ("p99_ms", l.p99_ms),
            ("max_ms", l.max_ms),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("latency.{name} must be finite and non-negative"));
            }
        }
        if l.p50_ms > l.p90_ms || l.p90_ms > l.p99_ms || l.p99_ms > l.max_ms {
            return Err("latency percentiles must be non-decreasing".into());
        }
        Ok(())
    }

    /// Merge this report into the JSON document at `path` under
    /// [`LOADGEN_KEY`]: an existing perf report keeps all its fields (its
    /// loader ignores unknown keys), an absent file gets a fresh object.
    ///
    /// # Errors
    ///
    /// Reports filesystem or JSON failures as a message.
    pub fn merge_into(&self, path: &Path) -> Result<(), String> {
        let mut doc = match std::fs::read_to_string(path) {
            Ok(text) => serde_json::from_str::<serde::Value>(&text)
                .map_err(|e| format!("{} is not JSON: {e:?}", path.display()))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => serde::Value::Object(Vec::new()),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let serde::Value::Object(pairs) = &mut doc else {
            return Err(format!(
                "{} is not a JSON object; refusing to clobber it",
                path.display()
            ));
        };
        pairs.retain(|(k, _)| k != LOADGEN_KEY);
        pairs.push((LOADGEN_KEY.to_string(), serde::Serialize::to_value(self)));
        let json = serde_json::to_string_pretty(&doc)
            .map_err(|e| format!("cannot serialize report: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-connection tallies, merged into the report after the joins.
#[derive(Default)]
struct ConnTally {
    placed: u64,
    evicted: u64,
    migrated: u64,
    stats_reads: u64,
    shed: u64,
    shed_giveups: u64,
    timeouts: u64,
    rejected: u64,
    latencies_ms: Vec<f64>,
}

/// The VM types the scripted mix requests, cycled by the seed stream.
const VM_TYPES: [&str; 4] = ["m3.medium", "m3.large", "m3.xlarge", "c3.large"];

/// One request slot: run `call` with shed-retry handling, tally the
/// outcome. Returns the successful value when the daemon answered.
fn drive<T>(
    tally: &mut ConnTally,
    mut call: impl FnMut(&mut Client) -> Result<T, ClientError>,
    client: &mut Client,
) -> Result<Option<T>, String> {
    let mut shed_streak = 0u32;
    loop {
        let started = Instant::now();
        match call(client) {
            Ok(value) => {
                tally
                    .latencies_ms
                    .push(started.elapsed().as_secs_f64() * 1e3);
                return Ok(Some(value));
            }
            Err(ClientError::Shed { retry_after_ms, .. }) => {
                tally.shed += 1;
                shed_streak += 1;
                if shed_streak > MAX_SHED_RETRIES {
                    tally.shed_giveups += 1;
                    return Ok(None);
                }
                // Honour the daemon's capped deterministic guidance.
                std::thread::sleep(Duration::from_millis(retry_after_ms.min(3200)));
            }
            Err(ClientError::Timeout { .. }) => {
                tally.timeouts += 1;
                return Ok(None);
            }
            Err(ClientError::Server { .. }) => {
                tally.rejected += 1;
                return Ok(None);
            }
            Err(fatal) => return Err(format!("connection failed: {fatal:?}")),
        }
    }
}

fn run_connection(
    addr: &str,
    deadline_ms: u64,
    seed: u64,
    requests: usize,
) -> Result<ConnTally, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect {addr}: {e:?}"))?;
    client.deadline_ms = deadline_ms;
    let mut tally = ConnTally::default();
    // VMs this connection placed and still believes are resident: the
    // evict/migrate mix only touches its own, so connections never race
    // over a VM id.
    let mut mine: Vec<u64> = Vec::new();
    for i in 0..requests {
        let roll = splitmix(seed ^ splitmix(i as u64));
        match roll % 10 {
            6 | 7 if !mine.is_empty() => {
                let at = (roll >> 8) as usize % mine.len();
                let vm = mine[at];
                if drive(&mut tally, |c| c.evict(vm), &mut client)?.is_some() {
                    tally.evicted += 1;
                    mine.swap_remove(at);
                }
            }
            8 if !mine.is_empty() => {
                let vm = mine[(roll >> 8) as usize % mine.len()];
                if drive(&mut tally, |c| c.migrate(vm), &mut client)?.is_some() {
                    tally.migrated += 1;
                }
            }
            9 => {
                if drive(&mut tally, Client::stats, &mut client)?.is_some() {
                    tally.stats_reads += 1;
                }
            }
            _ => {
                let ty = VM_TYPES[(roll >> 16) as usize % VM_TYPES.len()];
                if let Some(placed) = drive(&mut tally, |c| c.place(ty), &mut client)? {
                    tally.placed += 1;
                    mine.push(placed.vm);
                }
            }
        }
    }
    Ok(tally)
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Run the load against a daemon at `args.addr` and assemble the report
/// (without writing it).
///
/// # Errors
///
/// Fails when a connection cannot be established or dies mid-run —
/// typed shed/timeout/rejection replies are tallied, not failures.
pub fn run(args: &LoadGenArgs) -> Result<LoadGenReport, String> {
    let per_conn = args.requests.div_ceil(args.connections);
    let started = Instant::now();
    let tallies: Vec<Result<ConnTally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.connections)
            .map(|c| {
                let addr = args.addr.as_str();
                let seed = splitmix(args.seed ^ (c as u64).wrapping_mul(0x9e37));
                let budget = per_conn.min(args.requests.saturating_sub(c * per_conn));
                scope.spawn(move || run_connection(addr, args.deadline_ms, seed, budget))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("connection thread panicked".to_string()))
            })
            .collect()
    });
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut merged = ConnTally::default();
    for tally in tallies {
        let t = tally?;
        merged.placed += t.placed;
        merged.evicted += t.evicted;
        merged.migrated += t.migrated;
        merged.stats_reads += t.stats_reads;
        merged.shed += t.shed;
        merged.shed_giveups += t.shed_giveups;
        merged.timeouts += t.timeouts;
        merged.rejected += t.rejected;
        merged.latencies_ms.extend(t.latencies_ms);
    }
    merged.latencies_ms.sort_by(f64::total_cmp);
    let completed = merged.placed + merged.evicted + merged.migrated + merged.stats_reads;

    Ok(LoadGenReport {
        schema: LOADGEN_SCHEMA.to_string(),
        requests: args.requests,
        connections: args.connections,
        seed: args.seed,
        elapsed_ms,
        throughput_rps: if elapsed_ms > 0.0 {
            completed as f64 / (elapsed_ms / 1e3)
        } else {
            0.0
        },
        placed: merged.placed,
        evicted: merged.evicted,
        migrated: merged.migrated,
        stats_reads: merged.stats_reads,
        shed: merged.shed,
        shed_giveups: merged.shed_giveups,
        timeouts: merged.timeouts,
        rejected: merged.rejected,
        samples: merged.latencies_ms.len(),
        latency: LatencySummary {
            p50_ms: percentile(&merged.latencies_ms, 0.5),
            p90_ms: percentile(&merged.latencies_ms, 0.9),
            p99_ms: percentile(&merged.latencies_ms, 0.99),
            max_ms: merged.latencies_ms.last().copied().unwrap_or(0.0),
        },
    })
}

/// Full CLI entry: run, validate, print a summary, and merge into
/// `--out` when asked.
///
/// # Errors
///
/// Propagates connection, validation and I/O failures as messages (the
/// CLI turns them into a non-zero exit).
pub fn main_with(args: &LoadGenArgs) -> Result<(), String> {
    let report = run(args)?;
    report.validate()?;
    println!(
        "[loadgen] {} request(s) over {} connection(s) in {:.0}ms: {:.0} req/s, \
         p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms \
         (placed={} evicted={} migrated={} stats={} shed={} timeouts={} rejected={})",
        report.requests,
        report.connections,
        report.elapsed_ms,
        report.throughput_rps,
        report.latency.p50_ms,
        report.latency.p90_ms,
        report.latency.p99_ms,
        report.latency.max_ms,
        report.placed,
        report.evicted,
        report.migrated,
        report.stats_reads,
        report.shed,
        report.timeouts,
        report.rejected,
    );
    if let Some(path) = &args.out {
        report.merge_into(path)?;
        println!(
            "[loadgen] merged under {:?} in {}",
            LOADGEN_KEY,
            path.display()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prvm_model::Quantizer;
    use prvm_serve::{CatalogSpec, Server, ServerConfig, Store};

    fn tiny_report() -> LoadGenReport {
        LoadGenReport {
            schema: LOADGEN_SCHEMA.to_string(),
            requests: 10,
            connections: 2,
            seed: 42,
            elapsed_ms: 12.5,
            throughput_rps: 800.0,
            placed: 6,
            evicted: 2,
            migrated: 1,
            stats_reads: 1,
            shed: 0,
            shed_giveups: 0,
            timeouts: 0,
            rejected: 0,
            samples: 10,
            latency: LatencySummary {
                p50_ms: 1.0,
                p90_ms: 2.0,
                p99_ms: 3.0,
                max_ms: 4.0,
            },
        }
    }

    #[test]
    fn args_defaults_and_flags() {
        let d = LoadGenArgs::try_parse(std::iter::empty()).unwrap();
        assert_eq!(d, LoadGenArgs::default());
        let a = LoadGenArgs::try_parse(
            [
                "--addr",
                "127.0.0.1:9000",
                "--requests",
                "100",
                "--connections",
                "2",
                "--seed",
                "7",
                "--deadline-ms",
                "250",
                "--out",
                "x.json",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(a.addr, "127.0.0.1:9000");
        assert_eq!(a.requests, 100);
        assert_eq!(a.connections, 2);
        assert_eq!(a.seed, 7);
        assert_eq!(a.deadline_ms, 250);
        assert_eq!(a.out, Some(PathBuf::from("x.json")));
    }

    #[test]
    fn args_reject_malformed() {
        assert!(LoadGenArgs::try_parse(["--bogus".to_string()]).is_err());
        assert!(LoadGenArgs::try_parse(["--requests".to_string()]).is_err());
        assert!(LoadGenArgs::try_parse(["--requests".to_string(), "0".to_string()]).is_err());
        assert!(LoadGenArgs::try_parse(["--connections".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn validate_accepts_well_formed_and_rejects_corruption() {
        tiny_report().validate().unwrap();
        let mut bad = tiny_report();
        bad.schema = "other/v9".into();
        assert!(bad.validate().is_err());
        let mut bad = tiny_report();
        bad.latency.p90_ms = 0.5; // below p50
        assert!(bad.validate().is_err());
        let mut bad = tiny_report();
        bad.placed = 0;
        bad.evicted = 0;
        bad.migrated = 0;
        bad.stats_reads = 0;
        assert!(bad.validate().is_err(), "all-failure runs are invalid");
        let mut bad = tiny_report();
        bad.throughput_rps = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn merge_preserves_an_existing_perf_report() {
        let dir = std::env::temp_dir().join("prvm-loadgen-merge-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_PRVM.json");

        // A minimal valid perf report occupies the file first.
        let perf = crate::perf::PerfReport {
            schema: crate::perf::PERF_SCHEMA.to_string(),
            seed: 42,
            repeats: 1,
            host_threads: 1,
            thread_counts: vec![1],
            rows: crate::perf::STAGES
                .iter()
                .map(|stage| crate::perf::StageRow {
                    stage: (*stage).to_string(),
                    vms: usize::from(*stage != "graph_build" && *stage != "pagerank") * 5,
                    threads: 1,
                    median_ms: 2.0,
                    p95_ms: 3.0,
                    speedup_vs_1t: 1.0,
                    graph_nodes: 10,
                    graph_edges: 20,
                })
                .collect(),
        };
        perf.write(&path).unwrap();

        tiny_report().merge_into(&path).unwrap();
        // The perf loader still validates the merged document (unknown
        // keys are ignored), and the loadgen section reads back intact.
        let reloaded = crate::perf::PerfReport::load(&path).unwrap();
        assert_eq!(reloaded.rows.len(), perf.rows.len());
        let doc: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let section = doc.field(LOADGEN_KEY).expect("loadgen key present");
        let back: LoadGenReport = serde::Deserialize::from_value(section).unwrap();
        assert_eq!(back, tiny_report());

        // Merging again replaces, not duplicates.
        tiny_report().merge_into(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches(LOADGEN_KEY).count(), 1);
    }

    #[test]
    fn merge_into_a_fresh_file_creates_it() {
        let dir = std::env::temp_dir().join("prvm-loadgen-fresh-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("new.json");
        tiny_report().merge_into(&path).unwrap();
        let doc: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(doc.field(LOADGEN_KEY).is_ok());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.5), 2.0);
        assert_eq!(percentile(&sorted, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    /// End-to-end smoke: a real daemon on a loopback port, driven by the
    /// full loadgen path, merged into a fresh report file.
    #[test]
    fn loadgen_drives_a_live_daemon() {
        let dir = std::env::temp_dir().join("prvm-loadgen-e2e-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let catalog = CatalogSpec::ec2(6).with_quantizer(Quantizer {
            core_slots: 2,
            mem_levels: 4,
            disk_levels: 2,
        });
        let store = Store::open(dir.join("store")).unwrap();
        let handle =
            Server::start(&catalog, store, ServerConfig::default(), "127.0.0.1:0").unwrap();

        let out = dir.join("BENCH_PRVM.json");
        let args = LoadGenArgs {
            addr: handle.addr().to_string(),
            requests: 40,
            connections: 2,
            seed: 7,
            deadline_ms: 5000,
            out: Some(out.clone()),
        };
        main_with(&args).unwrap();
        let _ = handle.shutdown();

        let doc: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let report: LoadGenReport =
            serde::Deserialize::from_value(doc.field(LOADGEN_KEY).unwrap()).unwrap();
        report.validate().unwrap();
        assert!(report.placed > 0, "the mix must place VMs");
        assert!(report.samples > 0, "latency samples recorded");
        assert!(report.latency.max_ms >= report.latency.p50_ms);
    }
}
