//! End-to-end benchmarks: one simulated hour of datacenter time, and one
//! emulated testbed run — the cost of regenerating a single figure point.

use criterion::{criterion_group, criterion_main, Criterion};
use prvm_sim::{
    build_cluster, ec2_score_book, simulate, Algorithm, SimConfig, Workload, WorkloadConfig,
};
use prvm_testbed::{run_testbed, TestbedConfig};
use prvm_traces::TraceKind;
use std::sync::Arc;

fn bench_simulation(c: &mut Criterion) {
    let book = ec2_score_book().expect("EC2 catalog graph builds");
    let sim = SimConfig {
        horizon_s: 3600,
        ..SimConfig::default()
    };
    let wl = WorkloadConfig::sized_for(200, TraceKind::PlanetLab);
    let workload = Workload::generate(&wl, sim.scans(), 3);

    let mut g = c.benchmark_group("simulate_1h_200vms");
    g.sample_size(10);
    for algo in Algorithm::PAPER_SET {
        g.bench_function(algo.name(), |b| {
            b.iter(|| {
                let (mut placer, mut evictor) = algo.build(&book, 3);
                simulate(
                    &sim,
                    build_cluster(&wl),
                    &workload,
                    placer.as_mut(),
                    evictor.as_mut(),
                )
            });
        });
    }
    g.finish();
}

fn bench_testbed(c: &mut Criterion) {
    let cfg = TestbedConfig {
        duration_s: 600,
        ..TestbedConfig::default()
    };
    let book = Arc::new(cfg.score_book().expect("testbed graph builds"));

    let mut g = c.benchmark_group("testbed_10min_100jobs");
    g.sample_size(10);
    for algo in [Algorithm::PageRankVm, Algorithm::FirstFit] {
        g.bench_function(algo.name(), |b| {
            b.iter(|| {
                let (mut placer, mut evictor) = algo.build(&book, 5);
                run_testbed(&cfg, 100, placer.as_mut(), evictor.as_mut(), 5)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulation, bench_testbed);
criterion_main!(benches);
