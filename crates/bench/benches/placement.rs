//! Placement-throughput benchmarks: `choose()` cost per algorithm on a
//! loaded cluster — the paper's "low computational complexity" claim
//! (§V-C), including the 2-choice variant's O(1) behaviour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prvm_model::{catalog, place_batch, Cluster};
use prvm_sim::{ec2_score_book, Algorithm};

/// A cluster pre-loaded with `n` VMs via first fit.
fn loaded_cluster(n: usize) -> Cluster {
    let mut cluster = Cluster::from_specs(
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    catalog::pm_c3()
                } else {
                    catalog::pm_m3()
                }
            })
            .collect::<Vec<_>>(),
    );
    let types = catalog::ec2_vm_types();
    let vms: Vec<_> = (0..n).map(|i| types[i % types.len()].clone()).collect();
    place_batch(&mut prvm_baselines::FirstFit::new(), &mut cluster, vms)
        .expect("pool sized for workload");
    cluster
}

fn bench_choose(c: &mut Criterion) {
    let book = ec2_score_book().expect("EC2 catalog graph builds");
    let mut g = c.benchmark_group("choose");
    g.sample_size(30);
    for n in [100usize, 400] {
        let cluster = loaded_cluster(n);
        let vm = catalog::vm_c3_xlarge();
        for algo in [
            Algorithm::PageRankVm,
            Algorithm::TwoChoice,
            Algorithm::FirstFit,
            Algorithm::FfdSum,
            Algorithm::CompVm,
        ] {
            g.bench_with_input(BenchmarkId::new(algo.name(), n), &cluster, |b, cluster| {
                let (mut placer, _) = algo.build(&book, 7);
                b.iter(|| {
                    placer
                        .choose(cluster, &vm, &|_| false)
                        .expect("cluster has room")
                });
            });
        }
    }
    g.finish();
}

fn bench_batch_placement(c: &mut Criterion) {
    let book = ec2_score_book().expect("EC2 catalog graph builds");
    let mut g = c.benchmark_group("place_batch_200vms");
    g.sample_size(10);
    let types = catalog::ec2_vm_types();
    let vms: Vec<_> = (0..200).map(|i| types[i % types.len()].clone()).collect();
    for algo in Algorithm::PAPER_SET {
        g.bench_function(algo.name(), |b| {
            b.iter(|| {
                let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 200);
                let (mut placer, _) = algo.build(&book, 1);
                place_batch(placer.as_mut(), &mut cluster, vms.clone()).expect("pool fits batch");
                cluster.active_pm_count()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_choose, bench_batch_placement);
criterion_main!(benches);
