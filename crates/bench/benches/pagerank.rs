//! Microbenchmarks of the core pipeline: profile-graph construction,
//! PageRank iteration, BPRU, and full score-table builds at several
//! quantizations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pagerankvm::{
    compute_bpru, pagerank, GraphLimits, PageRankConfig, ProfileGraph, ProfileSpace, ProfileVm,
    ScoreBook,
};
use prvm_model::{catalog, Quantizer};

fn paper_vm_set() -> Vec<ProfileVm> {
    vec![
        ProfileVm::from_demands("[1,1]", vec![vec![1, 1]]),
        ProfileVm::from_demands("[1,1,1,1]", vec![vec![1, 1, 1, 1]]),
    ]
}

fn bench_graph_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_build");
    for dims in [4usize, 6, 8] {
        g.bench_with_input(BenchmarkId::new("uniform_cap4", dims), &dims, |b, &dims| {
            b.iter(|| {
                ProfileGraph::build(
                    ProfileSpace::uniform(dims, 4),
                    paper_vm_set(),
                    GraphLimits::default(),
                )
                .expect("graph builds within limits")
            });
        });
    }
    g.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let graph = ProfileGraph::build(
        ProfileSpace::uniform(8, 4),
        paper_vm_set(),
        GraphLimits::default(),
    )
    .expect("graph builds within limits");
    let mut g = c.benchmark_group("pagerank");
    g.bench_function("iterate_8dim_cap4", |b| {
        b.iter(|| pagerank(&graph, &PageRankConfig::default()));
    });
    g.bench_function("bpru_8dim_cap4", |b| {
        b.iter(|| compute_bpru(&graph));
    });
    g.finish();
}

fn bench_score_book(c: &mut Criterion) {
    let mut g = c.benchmark_group("score_book");
    g.sample_size(10);
    for (label, q) in [
        (
            "coarse",
            Quantizer {
                core_slots: 2,
                mem_levels: 4,
                disk_levels: 2,
            },
        ),
        ("default", Quantizer::default()),
    ] {
        g.bench_function(BenchmarkId::new("ec2_catalog", label), |b| {
            b.iter(|| {
                ScoreBook::build(
                    q,
                    &catalog::ec2_pm_types(),
                    &catalog::ec2_vm_types(),
                    &PageRankConfig::default(),
                    GraphLimits::default(),
                )
                .expect("graph builds within limits")
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_graph_build, bench_pagerank, bench_score_book);
criterion_main!(benches);
