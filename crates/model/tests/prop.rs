//! Property-based tests of the model crate's invariants.

use proptest::prelude::*;
use prvm_model::{catalog, Cluster, DiskGb, MemMib, Mhz, Pm, PmId, PmSpec, VmId, VmSpec};

/// A random VM that structurally fits an M3 (shape only; capacity may
/// still reject it).
fn arb_vm() -> impl Strategy<Value = VmSpec> {
    (
        1u32..=8,
        100u64..=1500,
        0u64..=20_000,
        prop::collection::vec(1u64..=120, 0..4),
    )
        .prop_map(|(vcpus, mhz, mem, disks)| {
            VmSpec::new(
                "rand",
                vcpus,
                Mhz(mhz),
                MemMib(mem),
                disks.into_iter().map(DiskGb).collect(),
            )
        })
}

/// A random sequence of place/remove operations.
#[derive(Debug, Clone)]
enum Op {
    Place(VmSpec),
    RemoveNth(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            arb_vm().prop_map(Op::Place),
            (0usize..8).prop_map(Op::RemoveNth),
        ],
        1..40,
    )
}

proptest! {
    /// Place/remove sequences keep a PM's books exact: per-core, memory
    /// and per-disk reservations always equal the sum over resident VMs.
    #[test]
    fn pm_accounting_is_exact(ops in arb_ops()) {
        let mut pm = Pm::new(catalog::pm_m3());
        let mut next = 0u64;
        let mut resident: Vec<VmId> = Vec::new();
        for op in ops {
            match op {
                Op::Place(vm) => {
                    if let Some(a) = pm.first_feasible(&vm) {
                        let id = VmId(next);
                        next += 1;
                        pm.place(id, vm, a).expect("feasible placement");
                        resident.push(id);
                    }
                }
                Op::RemoveNth(n) => {
                    if !resident.is_empty() {
                        let id = resident.remove(n % resident.len());
                        pm.remove(id).expect("resident VM removes");
                    }
                }
            }
            // Invariant: books match the resident set.
            let mut cores = [Mhz::ZERO; 8];
            let mut mem = MemMib::ZERO;
            let mut disks = [DiskGb::ZERO; 4];
            for (_, vm, a) in pm.vms() {
                for &c in &a.cores {
                    cores[c] += vm.vcpu_mhz;
                }
                mem += vm.memory;
                for (k, &d) in a.disks.iter().enumerate() {
                    disks[d] += vm.disks()[k];
                }
            }
            prop_assert_eq!(pm.core_used(), &cores[..]);
            prop_assert_eq!(pm.mem_used(), mem);
            prop_assert_eq!(pm.disk_used(), &disks[..]);
            // Capacity invariants.
            prop_assert!(pm.core_used().iter().all(|&c| c <= pm.spec().core_mhz));
            prop_assert!(pm.mem_used() <= pm.spec().memory);
        }
    }

    /// `first_feasible` only returns assignments `validate` accepts, and
    /// never claims feasibility beyond `distinct_feasible`.
    #[test]
    fn feasibility_checks_agree(vm in arb_vm()) {
        let pm = Pm::new(catalog::pm_m3());
        let quick = pm.first_feasible(&vm);
        let all = pm.distinct_feasible(&vm);
        prop_assert_eq!(quick.is_some(), !all.is_empty());
        if let Some(a) = quick {
            pm.validate(&vm, &a).expect("first_feasible is valid");
        }
        for a in all {
            pm.validate(&vm, &a).expect("distinct_feasible is valid");
        }
    }

    /// Cluster used/unused lists always partition the PM set, and
    /// ever-used only grows.
    #[test]
    fn cluster_lists_partition(vms in prop::collection::vec(arb_vm(), 1..30)) {
        let mut cluster = Cluster::homogeneous(catalog::pm_m3(), 6);
        let mut placed: Vec<VmId> = Vec::new();
        let mut ever = 0usize;
        for (i, vm) in vms.into_iter().enumerate() {
            // Alternate placing and removing.
            if i % 3 == 2 && !placed.is_empty() {
                let id = placed.remove(i % placed.len());
                cluster.remove(id).expect("placed VM");
            } else {
                let target = PmId(i % cluster.len());
                if let Some(a) = cluster.pm(target).first_feasible(&vm) {
                    placed.push(cluster.place(target, vm, a).expect("feasible"));
                }
            }
            let used: std::collections::HashSet<_> = cluster.used_pms().collect();
            let unused: std::collections::HashSet<_> = cluster.unused_pms().collect();
            prop_assert!(used.is_disjoint(&unused));
            prop_assert_eq!(used.len() + unused.len(), cluster.len());
            for pm in &used {
                prop_assert!(!cluster.pm(*pm).is_empty());
            }
            for pm in &unused {
                prop_assert!(cluster.pm(*pm).is_empty());
            }
            let now = cluster.ever_used_count();
            prop_assert!(now >= ever);
            ever = now;
        }
    }

    /// Quantized feasibility in ceil dimensions (memory, disk) implies
    /// real feasibility; a quantized-memory-feasible placement never
    /// violates real memory.
    #[test]
    fn quantized_memory_is_conservative(vm in arb_vm()) {
        let q = prvm_model::Quantizer::default();
        let spec: PmSpec = catalog::pm_m3();
        let qpm = q.quantize_pm(&spec);
        let qvm = q.quantize_vm(&vm, &spec);
        if qvm.mem_units <= qpm.mem_cap {
            // ceil(mem * L / cap) <= L  implies  mem <= cap.
            prop_assert!(vm.memory <= spec.memory);
        }
    }
}
