//! Error types shared across the workspace.

use crate::cluster::{PmId, VmId};
use std::error::Error;
use std::fmt;

/// Reasons a placement attempt can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// No PM in the cluster can host the VM (the paper's "no solution" exit
    /// in Algorithm 2).
    NoFeasiblePm,
    /// The specific PM lacks resources or has no anti-collocation-respecting
    /// assignment for the VM.
    InfeasibleAssignment {
        /// The PM that was attempted.
        pm: PmId,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoFeasiblePm => write!(f, "no PM can host the VM"),
            Self::InfeasibleAssignment { pm } => {
                write!(f, "no feasible anti-collocated assignment on PM {}", pm.0)
            }
        }
    }
}

impl Error for PlaceError {}

/// Errors raised by model bookkeeping (lookups, double-frees, invalid
/// assignments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A VM id is not present in the cluster.
    UnknownVm(VmId),
    /// A PM id is out of range for the cluster.
    UnknownPm(PmId),
    /// An assignment violates shape, capacity or anti-collocation rules.
    InvalidAssignment {
        /// Human-readable reason.
        reason: String,
    },
    /// The PM is marked down (crashed); it cannot receive placements
    /// until it recovers.
    PmDown(PmId),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownVm(id) => write!(f, "unknown VM id {}", id.0),
            Self::UnknownPm(id) => write!(f, "unknown PM id {}", id.0),
            Self::InvalidAssignment { reason } => write!(f, "invalid assignment: {reason}"),
            Self::PmDown(id) => write!(f, "PM {} is down", id.0),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_meaningful() {
        let e = PlaceError::NoFeasiblePm;
        assert_eq!(e.to_string(), "no PM can host the VM");
        let e = ModelError::UnknownVm(VmId(7));
        assert!(e.to_string().contains('7'));
        let e = ModelError::InvalidAssignment {
            reason: "duplicate core".into(),
        };
        assert!(e.to_string().contains("duplicate core"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlaceError>();
        assert_send_sync::<ModelError>();
    }
}
