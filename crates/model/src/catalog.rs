//! The paper's experiment inputs: Table I (VM types), Table II (PM types)
//! and the GENI testbed shapes (§VI-A).
//!
//! Values are verbatim from the paper. Amazon does not publish PM details;
//! Table II is the authors' plausible sample, reproduced as-is.

use crate::pm::PmSpec;
use crate::units::{DiskGb, MemMib, Mhz};
use crate::vm::VmSpec;

/// Table I, row `m3.medium`: 1 vCPU @ 0.6 GHz, 3.75 GiB, 1 x 4 GB disk.
#[must_use]
pub fn vm_m3_medium() -> VmSpec {
    VmSpec::new(
        "m3.medium",
        1,
        Mhz::from_ghz(0.6),
        MemMib::from_gib(3.75),
        vec![DiskGb(4)],
    )
}

/// Table I, row `m3.large`: 2 vCPU @ 0.6 GHz, 7.5 GiB, 1 x 32 GB disk.
#[must_use]
pub fn vm_m3_large() -> VmSpec {
    VmSpec::new(
        "m3.large",
        2,
        Mhz::from_ghz(0.6),
        MemMib::from_gib(7.5),
        vec![DiskGb(32)],
    )
}

/// Table I, row `m3.xlarge`: 4 vCPU @ 0.6 GHz, 15 GiB, 2 x 40 GB disks.
#[must_use]
pub fn vm_m3_xlarge() -> VmSpec {
    VmSpec::new(
        "m3.xlarge",
        4,
        Mhz::from_ghz(0.6),
        MemMib::from_gib(15.0),
        vec![DiskGb(40), DiskGb(40)],
    )
}

/// Table I, row `m3.2xlarge`: 8 vCPU @ 0.6 GHz, 30 GiB, 2 x 80 GB disks.
#[must_use]
pub fn vm_m3_2xlarge() -> VmSpec {
    VmSpec::new(
        "m3.2xlarge",
        8,
        Mhz::from_ghz(0.6),
        MemMib::from_gib(30.0),
        vec![DiskGb(80), DiskGb(80)],
    )
}

/// Table I, row `c3.large`: 2 vCPU @ 0.7 GHz, 3.75 GiB, 2 x 16 GB disks.
#[must_use]
pub fn vm_c3_large() -> VmSpec {
    VmSpec::new(
        "c3.large",
        2,
        Mhz::from_ghz(0.7),
        MemMib::from_gib(3.75),
        vec![DiskGb(16), DiskGb(16)],
    )
}

/// Table I, row `c3.xlarge`: 4 vCPU @ 0.7 GHz, 7.5 GiB, 2 x 40 GB disks.
#[must_use]
pub fn vm_c3_xlarge() -> VmSpec {
    VmSpec::new(
        "c3.xlarge",
        4,
        Mhz::from_ghz(0.7),
        MemMib::from_gib(7.5),
        vec![DiskGb(40), DiskGb(40)],
    )
}

/// All six VM types of Table I, in table order.
#[must_use]
pub fn ec2_vm_types() -> Vec<VmSpec> {
    vec![
        vm_m3_medium(),
        vm_m3_large(),
        vm_m3_xlarge(),
        vm_m3_2xlarge(),
        vm_c3_large(),
        vm_c3_xlarge(),
    ]
}

/// Table II, row `M3`: 8 cores @ 2.6 GHz, 64 GiB, 4 x 250 GB disks.
#[must_use]
pub fn pm_m3() -> PmSpec {
    PmSpec::new(
        "M3",
        8,
        Mhz::from_ghz(2.6),
        MemMib::from_gib(64.0),
        vec![DiskGb(250); 4],
    )
}

/// Table II, row `C3`: 8 cores @ 2.8 GHz, 7.5 GiB, 4 x 250 GB disks.
#[must_use]
pub fn pm_c3() -> PmSpec {
    PmSpec::new(
        "C3",
        8,
        Mhz::from_ghz(2.8),
        MemMib::from_gib(7.5),
        vec![DiskGb(250); 4],
    )
}

/// Both PM types of Table II.
#[must_use]
pub fn ec2_pm_types() -> Vec<PmSpec> {
    vec![pm_m3(), pm_c3()]
}

/// GENI testbed PM (§VI-A): a 4-core instance where each physical core can
/// host 4 vCPUs. Modelled as 4 cores of 4 "slot" units; CPU-only.
#[must_use]
pub fn geni_pm() -> PmSpec {
    PmSpec::new("geni-node", 4, Mhz(4), MemMib::ZERO, Vec::new())
}

/// GENI VM type `[1,1]`: 2 vCPUs of one slot each on distinct cores.
#[must_use]
pub fn geni_vm_2() -> VmSpec {
    VmSpec::cpu_only("[1,1]", 2, Mhz(1))
}

/// GENI VM type `[1,1,1,1]`: 4 vCPUs of one slot each on distinct cores.
#[must_use]
pub fn geni_vm_4() -> VmSpec {
    VmSpec::cpu_only("[1,1,1,1]", 4, Mhz(1))
}

/// The GENI experiment's VM set `{[1,1], [1,1,1,1]}`.
#[must_use]
pub fn geni_vm_types() -> Vec<VmSpec> {
    vec![geni_vm_2(), geni_vm_4()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_matches_paper() {
        let vms = ec2_vm_types();
        assert_eq!(vms.len(), 6);
        assert_eq!(vms[0].vcpus, 1);
        assert_eq!(vms[0].vcpu_mhz, Mhz(600));
        assert_eq!(vms[0].memory, MemMib::from_gib(3.75));
        assert_eq!(vms[0].disks(), &[DiskGb(4)]);
        assert_eq!(vms[3].vcpus, 8);
        assert_eq!(vms[3].disks(), &[DiskGb(80), DiskGb(80)]);
        assert_eq!(vms[4].vcpu_mhz, Mhz(700));
    }

    #[test]
    fn table_ii_matches_paper() {
        let m3 = pm_m3();
        assert_eq!(m3.cores, 8);
        assert_eq!(m3.core_mhz, Mhz(2600));
        assert_eq!(m3.memory, MemMib::from_gib(64.0));
        assert_eq!(m3.disks().len(), 4);
        let c3 = pm_c3();
        assert_eq!(c3.core_mhz, Mhz(2800));
        assert_eq!(c3.memory, MemMib::from_gib(7.5));
    }

    #[test]
    fn every_ec2_vm_fits_an_empty_m3() {
        let pm = crate::Pm::new(pm_m3());
        for vm in ec2_vm_types() {
            assert!(pm.first_feasible(&vm).is_some(), "{} must fit M3", vm.name);
        }
    }

    #[test]
    fn memory_heavy_vms_do_not_fit_c3() {
        let pm = crate::Pm::new(pm_c3());
        assert!(pm.first_feasible(&vm_m3_xlarge()).is_none());
        assert!(pm.first_feasible(&vm_m3_2xlarge()).is_none());
        assert!(pm.first_feasible(&vm_c3_xlarge()).is_some());
    }

    #[test]
    fn geni_shapes() {
        let pm = crate::Pm::new(geni_pm());
        // 4 cores x 4 slots = 16 slots; [1,1,1,1] takes one slot on each core.
        assert!(pm.first_feasible(&geni_vm_4()).is_some());
        assert_eq!(geni_pm().total_cpu(), Mhz(16));
    }
}
