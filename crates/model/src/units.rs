//! Integer-exact resource units.
//!
//! The paper quotes CPU in GHz, memory in GiB and disk in GB. Capacity
//! arithmetic must be exact (a placement is either feasible or not), so the
//! model stores CPU as **MHz**, memory as **MiB** and disk as whole **GB**.
//! Newtypes keep the three axes from being mixed up (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

macro_rules! unit_newtype {
    ($(#[$doc:meta])* $name:ident, $suffix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0);

            /// Raw integer value.
            #[inline]
            pub const fn get(self) -> u64 {
                self.0
            }

            /// The quantity as an `f64` (for trace-driven scaling and
            /// reporting; capacity decisions must stay integer-exact).
            #[inline]
            #[must_use]
            pub fn as_f64(self) -> f64 {
                self.0 as f64
            }

            /// Build a quantity from a (possibly fractional) `f64`,
            /// rounding to the nearest whole unit. Negative, `NaN` and
            /// infinite inputs clamp to the representable range — this is
            /// the sanctioned entry point for float-world demand figures
            /// (trace multipliers, burst factors) back into exact units.
            #[inline]
            #[must_use]
            pub fn from_f64_rounded(value: f64) -> Self {
                if value.is_nan() {
                    return Self::ZERO;
                }
                // `as` saturates on floats, but clamp explicitly so the
                // intent survives any future cast-semantics change.
                Self(value.round().clamp(0.0, u64::MAX as f64) as u64)
            }

            /// Saturating subtraction; never underflows.
            #[inline]
            #[must_use]
            pub const fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Checked subtraction, `None` on underflow.
            #[inline]
            #[must_use]
            pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
                match self.0.checked_sub(rhs.0) {
                    Some(v) => Some(Self(v)),
                    None => None,
                }
            }

            /// This quantity as a fraction of `cap` (`0.0` when `cap` is zero).
            #[inline]
            pub fn fraction_of(self, cap: Self) -> f64 {
                if cap.0 == 0 {
                    0.0
                } else {
                    self.0 as f64 / cap.0 as f64
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            /// # Panics
            /// Panics on underflow in debug builds (same as integer `-`).
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }
    };
}

unit_newtype!(
    /// CPU capacity or demand in megahertz.
    Mhz,
    "MHz"
);
unit_newtype!(
    /// Memory capacity or demand in mebibytes.
    MemMib,
    "MiB"
);
unit_newtype!(
    /// Disk capacity or demand in gigabytes.
    DiskGb,
    "GB"
);

impl Mhz {
    /// Convert from the paper's GHz figures, exact to 1 MHz.
    ///
    /// ```
    /// use prvm_model::Mhz;
    /// assert_eq!(Mhz::from_ghz(0.6), Mhz(600));
    /// assert_eq!(Mhz::from_ghz(2.6), Mhz(2600));
    /// ```
    #[must_use]
    pub fn from_ghz(ghz: f64) -> Self {
        Self((ghz * 1000.0).round() as u64)
    }
}

impl MemMib {
    /// Convert from the paper's GiB figures, exact to 1 MiB.
    ///
    /// ```
    /// use prvm_model::MemMib;
    /// assert_eq!(MemMib::from_gib(3.75), MemMib(3840));
    /// assert_eq!(MemMib::from_gib(64.0), MemMib(65536));
    /// ```
    #[must_use]
    pub fn from_gib(gib: f64) -> Self {
        Self((gib * 1024.0).round() as u64)
    }
}

/// Lossless (or explicitly saturating) integer conversions.
///
/// This module and the unit newtypes above are the workspace's *sanctioned
/// conversion layer*: the `prvm-lint` rules L002/L003 forbid raw `as`
/// numeric casts elsewhere in `core`/`model`, so every widening or
/// saturating conversion is concentrated here where its (non-)lossiness is
/// documented and tested.
pub mod convert {
    /// Widen a `u32` count (vCPUs, cores) to a `usize` index. Lossless:
    /// every supported target has at least 32-bit pointers.
    #[inline]
    #[must_use]
    pub const fn u32_to_usize(n: u32) -> usize {
        n as usize
    }

    /// Widen a `usize` count to `u64`. Lossless: no supported target has
    /// pointers wider than 64 bits.
    #[inline]
    #[must_use]
    pub const fn usize_to_u64(n: usize) -> u64 {
        n as u64
    }

    /// A `usize` count as an `f64` (means, fractions, rates). Counts in
    /// this workspace are far below 2^53, so the conversion is exact.
    #[inline]
    #[must_use]
    pub fn usize_to_f64(n: usize) -> f64 {
        n as f64
    }

    /// A `u64` quantity as an `f64` (reporting only; may round above
    /// 2^53, which no resource figure in this model reaches).
    #[inline]
    #[must_use]
    pub fn u64_to_f64(n: u64) -> f64 {
        n as f64
    }

    /// Narrow a `u64` to `u16`, saturating at `u16::MAX`. Used for
    /// quantized profile caps, which the quantizer keeps tiny; saturation
    /// (rather than truncation) keeps an out-of-range cap visibly maxed
    /// instead of silently wrapped.
    #[inline]
    #[must_use]
    pub fn u64_to_u16_saturating(n: u64) -> u16 {
        u16::try_from(n).unwrap_or(u16::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_conversion_is_exact_for_table_values() {
        assert_eq!(Mhz::from_ghz(0.6).get(), 600);
        assert_eq!(Mhz::from_ghz(0.7).get(), 700);
        assert_eq!(Mhz::from_ghz(2.6).get(), 2600);
        assert_eq!(Mhz::from_ghz(2.8).get(), 2800);
    }

    #[test]
    fn gib_conversion_is_exact_for_table_values() {
        assert_eq!(MemMib::from_gib(3.75).get(), 3840);
        assert_eq!(MemMib::from_gib(7.5).get(), 7680);
        assert_eq!(MemMib::from_gib(15.0).get(), 15360);
        assert_eq!(MemMib::from_gib(30.0).get(), 30720);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Mhz(600);
        let b = Mhz(700);
        assert_eq!(a + b, Mhz(1300));
        assert_eq!(b - a, Mhz(100));
        assert!(a < b);
        let mut c = a;
        c += b;
        assert_eq!(c, Mhz(1300));
        c -= a;
        assert_eq!(c, b);
    }

    #[test]
    fn saturating_and_checked_sub() {
        assert_eq!(Mhz(100).saturating_sub(Mhz(200)), Mhz::ZERO);
        assert_eq!(Mhz(100).checked_sub(Mhz(200)), None);
        assert_eq!(Mhz(200).checked_sub(Mhz(100)), Some(Mhz(100)));
    }

    #[test]
    fn fraction_of_handles_zero_capacity() {
        assert_eq!(Mhz(100).fraction_of(Mhz::ZERO), 0.0);
        assert!((Mhz(50).fraction_of(Mhz(200)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let total: DiskGb = [DiskGb(4), DiskGb(32), DiskGb(40)].into_iter().sum();
        assert_eq!(total, DiskGb(76));
    }

    #[test]
    fn from_f64_rounded_handles_boundaries() {
        assert_eq!(Mhz::from_f64_rounded(2599.5), Mhz(2600));
        assert_eq!(Mhz::from_f64_rounded(0.4), Mhz::ZERO);
        assert_eq!(Mhz::from_f64_rounded(-17.0), Mhz::ZERO);
        assert_eq!(Mhz::from_f64_rounded(f64::NAN), Mhz::ZERO);
        assert_eq!(Mhz::from_f64_rounded(f64::NEG_INFINITY), Mhz::ZERO);
        assert_eq!(Mhz::from_f64_rounded(f64::INFINITY), Mhz(u64::MAX));
    }

    #[test]
    fn as_f64_round_trips_small_quantities() {
        assert_eq!(Mhz(2600).as_f64(), 2600.0);
        assert_eq!(MemMib::ZERO.as_f64(), 0.0);
    }

    #[test]
    fn convert_boundaries() {
        use super::convert::*;
        assert_eq!(u32_to_usize(u32::MAX), u32::MAX as usize);
        assert_eq!(usize_to_u64(0), 0);
        assert_eq!(usize_to_f64(4096), 4096.0);
        assert_eq!(u64_to_f64(1 << 52), (1u64 << 52) as f64);
        assert_eq!(u64_to_u16_saturating(65535), u16::MAX);
        assert_eq!(u64_to_u16_saturating(65536), u16::MAX);
        assert_eq!(u64_to_u16_saturating(7), 7);
    }

    #[test]
    fn display_includes_unit_suffix() {
        assert_eq!(Mhz(2600).to_string(), "2600 MHz");
        assert_eq!(MemMib(3840).to_string(), "3840 MiB");
        assert_eq!(DiskGb(250).to_string(), "250 GB");
    }
}
